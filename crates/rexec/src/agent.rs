//! Per-node agents: a thread with a small command interpreter and a
//! process table.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Signals forwardable to remote processes (the REXEC feature the paper
/// calls out).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signal {
    /// Interrupt (Ctrl-C in the rexec terminal).
    Int,
    /// Terminate.
    Term,
    /// Kill (not catchable).
    Kill,
}

/// What one command execution produced on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentCommandOutcome {
    /// Stdout lines in order.
    pub stdout: Vec<String>,
    /// Stderr lines in order.
    pub stderr: Vec<String>,
    /// Exit status (0 success; 130 signal-interrupted, like a shell).
    pub exit: i32,
}

/// A request sent to the agent thread.
pub(crate) struct ExecRequest {
    pub command: String,
    pub env: BTreeMap<String, String>,
    pub stdout: Sender<String>,
    pub stderr: Sender<String>,
    pub signals: Receiver<Signal>,
    pub done: Sender<i32>,
}

/// A simulated cluster node: hostname, environment, process table, and a
/// worker thread interpreting commands.
pub struct NodeAgent {
    name: String,
    tx: Sender<ExecRequest>,
    /// Long-lived "processes" on the node — what cluster-kill targets.
    procs: Arc<Mutex<BTreeMap<u32, String>>>,
    next_pid: Arc<Mutex<u32>>,
    worker: Option<JoinHandle<()>>,
}

impl NodeAgent {
    /// Start an agent named `name` (the node's hostname).
    pub fn start(name: &str) -> NodeAgent {
        let (tx, rx) = unbounded::<ExecRequest>();
        let procs: Arc<Mutex<BTreeMap<u32, String>>> = Arc::new(Mutex::new(BTreeMap::new()));
        let next_pid = Arc::new(Mutex::new(1000u32));
        let worker_name = name.to_string();
        let worker_procs = Arc::clone(&procs);
        let worker_next_pid = Arc::clone(&next_pid);
        let worker = std::thread::spawn(move || {
            while let Ok(request) = rx.recv() {
                let exit = interpret(&worker_name, &worker_procs, &worker_next_pid, &request);
                let _ = request.done.send(exit);
            }
        });
        NodeAgent { name: name.to_string(), tx, procs, next_pid, worker: Some(worker) }
    }

    /// The node's hostname.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Submit a command (used by [`crate::exec::Rexec`]).
    pub(crate) fn submit(&self, request: ExecRequest) {
        let _ = self.tx.send(request);
    }

    /// Directly spawn a background "process" (test setup for
    /// cluster-kill scenarios).
    pub fn spawn_process(&self, name: &str) -> u32 {
        let mut pid_slot = self.next_pid.lock();
        *pid_slot += 1;
        let pid = *pid_slot;
        self.procs.lock().insert(pid, name.to_string());
        pid
    }

    /// Names of processes currently on the node.
    pub fn process_names(&self) -> Vec<String> {
        self.procs.lock().values().cloned().collect()
    }
}

impl Drop for NodeAgent {
    fn drop(&mut self) {
        // Close the request channel, then join the worker.
        let (tx, _rx) = unbounded();
        self.tx = tx;
        if let Some(handle) = self.worker.take() {
            let _ = handle.join();
        }
    }
}

/// The command interpreter. Commands mirror the small utilities Rocks
/// administrators run across nodes:
///
/// * `hostname` — print the node name,
/// * `echo ...` — print arguments,
/// * `printenv [VAR]` — show the propagated environment,
/// * `ps` — list the process table,
/// * `start <name>` — register a long-running process,
/// * `pkill <name>` — kill matching processes, print the count,
/// * `sleep <ms>` — sleep, interruptible by a forwarded signal,
/// * `false` — exit 1,
/// * anything else — exit 127 with an error on stderr.
fn interpret(
    node: &str,
    procs: &Arc<Mutex<BTreeMap<u32, String>>>,
    next_pid: &Arc<Mutex<u32>>,
    request: &ExecRequest,
) -> i32 {
    let mut parts = request.command.split_whitespace();
    let program = parts.next().unwrap_or("");
    let args: Vec<&str> = parts.collect();
    match program {
        "hostname" => {
            let _ = request.stdout.send(node.to_string());
            0
        }
        "echo" => {
            let _ = request.stdout.send(args.join(" "));
            0
        }
        "printenv" => match args.first() {
            Some(var) => match request.env.get(*var) {
                Some(value) => {
                    let _ = request.stdout.send(value.clone());
                    0
                }
                None => 1,
            },
            None => {
                for (k, v) in &request.env {
                    let _ = request.stdout.send(format!("{k}={v}"));
                }
                0
            }
        },
        "ps" => {
            for (pid, name) in procs.lock().iter() {
                let _ = request.stdout.send(format!("{pid} {name}"));
            }
            0
        }
        "start" => match args.first() {
            Some(name) => {
                let mut pid_slot = next_pid.lock();
                *pid_slot += 1;
                let pid = *pid_slot;
                procs.lock().insert(pid, name.to_string());
                let _ = request.stdout.send(format!("{pid}"));
                0
            }
            None => {
                let _ = request.stderr.send("start: missing process name".into());
                2
            }
        },
        "pkill" => match args.first() {
            Some(name) => {
                let mut table = procs.lock();
                let victims: Vec<u32> =
                    table.iter().filter(|(_, n)| n == name).map(|(pid, _)| *pid).collect();
                for pid in &victims {
                    table.remove(pid);
                }
                let _ = request.stdout.send(format!("killed {}", victims.len()));
                if victims.is_empty() {
                    1
                } else {
                    0
                }
            }
            None => {
                let _ = request.stderr.send("pkill: missing pattern".into());
                2
            }
        },
        "sleep" => {
            let ms: u64 = args.first().and_then(|a| a.parse().ok()).unwrap_or(0);
            let deadline = std::time::Instant::now() + Duration::from_millis(ms);
            while std::time::Instant::now() < deadline {
                match request.signals.try_recv() {
                    Ok(_signal) => {
                        let _ = request.stderr.send(format!("{node}: interrupted"));
                        return 130;
                    }
                    Err(TryRecvError::Empty) => std::thread::sleep(Duration::from_millis(1)),
                    Err(TryRecvError::Disconnected) => break,
                }
            }
            0
        }
        "false" => 1,
        "" => 0,
        other => {
            let _ = request.stderr.send(format!("{node}: {other}: command not found"));
            127
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agent: &NodeAgent, command: &str) -> AgentCommandOutcome {
        run_env(agent, command, BTreeMap::new())
    }

    fn run_env(
        agent: &NodeAgent,
        command: &str,
        env: BTreeMap<String, String>,
    ) -> AgentCommandOutcome {
        let (out_tx, out_rx) = unbounded();
        let (err_tx, err_rx) = unbounded();
        let (_sig_tx, sig_rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        agent.submit(ExecRequest {
            command: command.to_string(),
            env,
            stdout: out_tx,
            stderr: err_tx,
            signals: sig_rx,
            done: done_tx,
        });
        let exit = done_rx.recv_timeout(Duration::from_secs(5)).expect("command finishes");
        AgentCommandOutcome {
            stdout: out_rx.try_iter().collect(),
            stderr: err_rx.try_iter().collect(),
            exit,
        }
    }

    #[test]
    fn hostname_and_echo() {
        let agent = NodeAgent::start("compute-0-3");
        assert_eq!(run(&agent, "hostname").stdout, vec!["compute-0-3"]);
        assert_eq!(run(&agent, "echo a b  c").stdout, vec!["a b c"]);
    }

    #[test]
    fn env_propagation() {
        let agent = NodeAgent::start("n");
        let mut env = BTreeMap::new();
        env.insert("USER".to_string(), "bruno".to_string());
        env.insert("PWD".to_string(), "/home/bruno".to_string());
        let outcome = run_env(&agent, "printenv USER", env.clone());
        assert_eq!(outcome.stdout, vec!["bruno"]);
        let outcome = run_env(&agent, "printenv", env);
        assert_eq!(outcome.stdout, vec!["PWD=/home/bruno", "USER=bruno"]);
        assert_eq!(run(&agent, "printenv MISSING").exit, 1);
    }

    #[test]
    fn process_table_start_ps_pkill() {
        let agent = NodeAgent::start("n");
        run(&agent, "start bad-job");
        run(&agent, "start bad-job");
        run(&agent, "start good-job");
        assert_eq!(agent.process_names(), vec!["bad-job", "bad-job", "good-job"]);
        let outcome = run(&agent, "pkill bad-job");
        assert_eq!(outcome.stdout, vec!["killed 2"]);
        assert_eq!(outcome.exit, 0);
        assert_eq!(agent.process_names(), vec!["good-job"]);
        assert_eq!(run(&agent, "pkill bad-job").exit, 1); // nothing left
    }

    #[test]
    fn unknown_command_exits_127() {
        let agent = NodeAgent::start("n");
        let outcome = run(&agent, "frobnicate --now");
        assert_eq!(outcome.exit, 127);
        assert!(outcome.stderr[0].contains("command not found"));
    }

    #[test]
    fn sleep_completes_without_signal() {
        let agent = NodeAgent::start("n");
        assert_eq!(run(&agent, "sleep 5").exit, 0);
    }

    #[test]
    fn sleep_interrupted_by_signal() {
        let agent = NodeAgent::start("n");
        let (out_tx, _out_rx) = unbounded();
        let (err_tx, err_rx) = unbounded();
        let (sig_tx, sig_rx) = unbounded();
        let (done_tx, done_rx) = unbounded();
        agent.submit(ExecRequest {
            command: "sleep 10000".into(),
            env: BTreeMap::new(),
            stdout: out_tx,
            stderr: err_tx,
            signals: sig_rx,
            done: done_tx,
        });
        std::thread::sleep(Duration::from_millis(20));
        sig_tx.send(Signal::Int).unwrap();
        let exit = done_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(exit, 130);
        let errs: Vec<String> = err_rx.try_iter().collect();
        assert!(errs[0].contains("interrupted"));
    }
}
