#![warn(missing_docs)]

//! REXEC-like parallel remote execution (paper §4.1).
//!
//! "REXEC provides transparent, secure remote execution of parallel and
//! sequential jobs. It has a sophisticated signal handling system which
//! provides remote forwarding of signals. REXEC also redirects stdin,
//! stdout and stderr from each parallel process and it propagates a local
//! environment including environment variables, user ID, group ID and
//! current working directory."
//!
//! Since the reproduction's "nodes" are in-process, each node runs a
//! [`agent::NodeAgent`] — a real thread with a command interpreter and a
//! per-node process table — and [`exec::Rexec`] provides the client:
//! parallel fan-out, per-node-labelled stdout/stderr multiplexing,
//! environment propagation, and live signal forwarding. This is also the
//! substrate `cluster-fork` and `cluster-kill` (§6.4) run on.

pub mod agent;
pub mod exec;

pub use agent::{AgentCommandOutcome, NodeAgent, Signal};
pub use exec::{ExecEnv, NodeOutput, ParallelResult, Rexec, RunningJob, Stream};
