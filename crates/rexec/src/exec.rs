//! The rexec client: parallel fan-out with multiplexed I/O and signal
//! forwarding.

use crate::agent::{ExecRequest, NodeAgent, Signal};
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::time::Duration;

/// Which stream a line came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stream {
    /// Standard output.
    Stdout,
    /// Standard error.
    Stderr,
}

/// One multiplexed output line, labelled with its origin node — the way
/// rexec prefixes parallel output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeOutput {
    /// Node hostname.
    pub node: String,
    /// stdout or stderr.
    pub stream: Stream,
    /// Line text.
    pub line: String,
}

/// The local environment rexec propagates (paper §4.1: "environment
/// variables, user ID, group ID and current working directory").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecEnv {
    /// Environment variables.
    pub vars: BTreeMap<String, String>,
    /// Numeric user id.
    pub uid: u32,
    /// Numeric group id.
    pub gid: u32,
    /// Working directory.
    pub cwd: String,
}

impl Default for ExecEnv {
    fn default() -> Self {
        ExecEnv { vars: BTreeMap::new(), uid: 500, gid: 500, cwd: "/home/user".to_string() }
    }
}

impl ExecEnv {
    /// Flatten to the variable map handed to agents (uid/gid/cwd become
    /// the conventional variables).
    fn to_agent_env(&self) -> BTreeMap<String, String> {
        let mut env = self.vars.clone();
        env.insert("UID".to_string(), self.uid.to_string());
        env.insert("GID".to_string(), self.gid.to_string());
        env.insert("PWD".to_string(), self.cwd.clone());
        env
    }
}

/// Per-node exit status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelResult {
    /// Multiplexed output in arrival order (per-node order preserved).
    pub output: Vec<NodeOutput>,
    /// Exit status per node, in the order the nodes were given.
    pub exits: Vec<(String, i32)>,
}

impl ParallelResult {
    /// True when every node exited 0.
    pub fn all_ok(&self) -> bool {
        self.exits.iter().all(|(_, code)| *code == 0)
    }

    /// Stdout lines from one node, in order.
    pub fn stdout_of(&self, node: &str) -> Vec<&str> {
        self.output
            .iter()
            .filter(|o| o.node == node && o.stream == Stream::Stdout)
            .map(|o| o.line.as_str())
            .collect()
    }
}

/// A dispatched parallel job: signal it, then collect.
pub struct RunningJob {
    signal_txs: Vec<Sender<Signal>>,
    done_rxs: Vec<(String, Receiver<i32>)>,
    output_rx: Receiver<NodeOutput>,
}

impl RunningJob {
    /// Forward a signal to every node's process (paper: "remote
    /// forwarding of signals").
    pub fn signal(&self, signal: Signal) {
        for tx in &self.signal_txs {
            let _ = tx.send(signal);
        }
    }

    /// Wait for every node to finish and collect multiplexed output.
    pub fn wait(self, timeout: Duration) -> ParallelResult {
        let mut exits = Vec::new();
        for (node, rx) in &self.done_rxs {
            let code = rx.recv_timeout(timeout).unwrap_or(-1);
            exits.push((node.clone(), code));
        }
        // All nodes are done, but the multiplexer threads may still be
        // forwarding; read until every one has closed (the channel
        // disconnects) or the stream goes quiet.
        drop(self.signal_txs);
        let mut output = Vec::new();
        // Read until disconnected or quiet: everything flushed by then.
        while let Ok(line) = self.output_rx.recv_timeout(Duration::from_millis(500)) {
            output.push(line);
        }
        ParallelResult { output, exits }
    }
}

/// The rexec client over a set of node agents.
pub struct Rexec<'a> {
    nodes: Vec<&'a NodeAgent>,
}

impl<'a> Rexec<'a> {
    /// Target a node set (usually selected via the cluster database).
    pub fn new(nodes: Vec<&'a NodeAgent>) -> Rexec<'a> {
        Rexec { nodes }
    }

    /// Dispatch `command` on every node, propagating `env`. Returns a
    /// handle for signalling and collection.
    pub fn dispatch(&self, command: &str, env: &ExecEnv) -> RunningJob {
        let (output_tx, output_rx) = unbounded::<NodeOutput>();
        let mut signal_txs = Vec::new();
        let mut done_rxs = Vec::new();
        for agent in &self.nodes {
            let (sig_tx, sig_rx) = unbounded();
            let (done_tx, done_rx) = unbounded();
            // Adapter channels that label lines with the node name.
            let (out_tx, out_rx) = unbounded::<String>();
            let (err_tx, err_rx) = unbounded::<String>();
            let node = agent.name().to_string();
            // One forwarder thread per stream; each drains its channel
            // until the agent closes it. Per-stream line order is
            // preserved, which is all the multiplexer guarantees anyway.
            for (rx, stream) in [(out_rx, Stream::Stdout), (err_rx, Stream::Stderr)] {
                let mux = output_tx.clone();
                let mux_node = node.clone();
                std::thread::spawn(move || {
                    for line in rx.iter() {
                        let _ = mux.send(NodeOutput { node: mux_node.clone(), stream, line });
                    }
                });
            }
            agent.submit(ExecRequest {
                command: command.to_string(),
                env: env.to_agent_env(),
                stdout: out_tx,
                stderr: err_tx,
                signals: sig_rx,
                done: done_tx,
            });
            signal_txs.push(sig_tx);
            done_rxs.push((node, done_rx));
        }
        drop(output_tx);
        RunningJob { signal_txs, done_rxs, output_rx }
    }

    /// Run to completion with a default timeout.
    pub fn run(&self, command: &str, env: &ExecEnv) -> ParallelResult {
        self.dispatch(command, env).wait(Duration::from_secs(10))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn agents(n: usize) -> Vec<NodeAgent> {
        (0..n).map(|i| NodeAgent::start(&format!("compute-0-{i}"))).collect()
    }

    #[test]
    fn parallel_hostname_reaches_all_nodes() {
        let agents = agents(4);
        let rexec = Rexec::new(agents.iter().collect());
        let result = rexec.run("hostname", &ExecEnv::default());
        assert!(result.all_ok());
        assert_eq!(result.exits.len(), 4);
        for agent in &agents {
            assert_eq!(result.stdout_of(agent.name()), vec![agent.name()]);
        }
    }

    #[test]
    fn environment_is_propagated_to_every_node() {
        let agents = agents(2);
        let rexec = Rexec::new(agents.iter().collect());
        let mut env = ExecEnv { uid: 1234, ..Default::default() };
        env.vars.insert("JOB".to_string(), "namd".to_string());
        env.cwd = "/export/home/science".to_string();
        let result = rexec.run("printenv JOB", &env);
        assert!(result.all_ok());
        assert_eq!(result.stdout_of("compute-0-0"), vec!["namd"]);
        let result = rexec.run("printenv PWD", &env);
        assert_eq!(result.stdout_of("compute-0-1"), vec!["/export/home/science"]);
        let result = rexec.run("printenv UID", &env);
        assert_eq!(result.stdout_of("compute-0-0"), vec!["1234"]);
    }

    #[test]
    fn exit_codes_are_per_node() {
        let agents = agents(2);
        agents[0].spawn_process("bad-job"); // only node 0 has the job
        let rexec = Rexec::new(agents.iter().collect());
        let result = rexec.run("pkill bad-job", &ExecEnv::default());
        assert!(!result.all_ok());
        let codes: BTreeMap<&str, i32> =
            result.exits.iter().map(|(n, c)| (n.as_str(), *c)).collect();
        assert_eq!(codes["compute-0-0"], 0);
        assert_eq!(codes["compute-0-1"], 1);
    }

    #[test]
    fn signal_forwarding_interrupts_all_nodes() {
        let agents = agents(3);
        let rexec = Rexec::new(agents.iter().collect());
        let job = rexec.dispatch("sleep 30000", &ExecEnv::default());
        std::thread::sleep(Duration::from_millis(30));
        job.signal(Signal::Int);
        let result = job.wait(Duration::from_secs(5));
        assert_eq!(result.exits.len(), 3);
        assert!(result.exits.iter().all(|(_, code)| *code == 130), "{:?}", result.exits);
        // Each node reported the interruption on stderr.
        let interrupted = result
            .output
            .iter()
            .filter(|o| o.stream == Stream::Stderr && o.line.contains("interrupted"))
            .count();
        assert_eq!(interrupted, 3);
    }

    #[test]
    fn per_node_output_order_is_preserved() {
        let agents = agents(1);
        let rexec = Rexec::new(agents.iter().collect());
        let result = rexec.run("printenv", &ExecEnv::default());
        let lines = result.stdout_of("compute-0-0");
        // BTreeMap order: GID, PWD, UID.
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("GID="));
        assert!(lines[1].starts_with("PWD="));
        assert!(lines[2].starts_with("UID="));
    }

    #[test]
    fn empty_node_set_is_a_noop() {
        let rexec = Rexec::new(vec![]);
        let result = rexec.run("hostname", &ExecEnv::default());
        assert!(result.all_ok());
        assert!(result.output.is_empty());
    }
}
