//! Property tests on rocks-dist's resolution semantics: newest-wins must
//! behave like a join over versions (order-independent, idempotent), or
//! the §6.2.1 "only include the most recent software" promise breaks.

use proptest::prelude::*;
use rocks_dist::{builder, BuildConfig, Distribution};
use rocks_rpm::{Package, Repository};

/// A small universe of package names so collisions actually happen.
fn pkg_strategy() -> impl Strategy<Value = Package> {
    (
        prop_oneof![Just("alpha"), Just("beta"), Just("gamma"), Just("delta"), Just("epsilon")],
        1u32..6,
        1u32..9,
        1u64..1_000_000,
    )
        .prop_map(|(name, major, release, size)| {
            Package::builder(name, &format!("{major}.0-{release}")).size(size).build()
        })
}

fn repo_strategy() -> impl Strategy<Value = Repository> {
    proptest::collection::vec(pkg_strategy(), 0..12).prop_map(|pkgs| {
        let mut repo = Repository::new("gen");
        for p in pkgs {
            repo.insert(p);
        }
        repo
    })
}

/// The resolved (name, evr) view of a repository.
fn resolved(repo: &Repository) -> Vec<String> {
    repo.iter().map(|p| p.ident()).collect()
}

proptest! {
    /// Merging repositories is order-independent.
    #[test]
    fn merge_is_commutative(a in repo_strategy(), b in repo_strategy()) {
        let mut ab = Repository::new("ab");
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = Repository::new("ba");
        ba.merge(&b);
        ba.merge(&a);
        prop_assert_eq!(resolved(&ab), resolved(&ba));
    }

    /// Merging a repository into itself changes nothing.
    #[test]
    fn merge_is_idempotent(a in repo_strategy()) {
        let mut once = Repository::new("x");
        once.merge(&a);
        let before = resolved(&once);
        let changed = once.merge(&a);
        prop_assert_eq!(changed, 0);
        prop_assert_eq!(resolved(&once), before);
    }

    /// Every resolved slot holds the maximum EVR seen across sources.
    #[test]
    fn resolution_picks_maximum(a in repo_strategy(), b in repo_strategy()) {
        let mut merged = Repository::new("m");
        merged.merge(&a);
        merged.merge(&b);
        for pkg in merged.iter() {
            for source in [&a, &b] {
                if let Some(candidate) = source.get(&pkg.name, pkg.arch) {
                    prop_assert!(pkg.evr >= candidate.evr,
                        "{} resolved below a source version", pkg.name);
                }
            }
        }
    }

    /// A built distribution's tree has exactly one entry per resolved
    /// package, and child builds never materialize parent bytes.
    #[test]
    fn build_tree_matches_repo(contrib in repo_strategy()) {
        let stock = Distribution::stock("base", {
            let mut r = Repository::new("base");
            r.insert(Package::builder("alpha", "0.1-1").size(10).build());
            r.insert(Package::builder("zeta", "9.9-9").size(10).build());
            r
        });
        let (dist, report) = builder::build(BuildConfig {
            name: "child".into(),
            parent: Some(&stock),
            contrib: vec![&contrib],
            ..Default::default()
        }).unwrap();
        for pkg in dist.repo().iter() {
            prop_assert!(dist.has_package_entry(pkg), "missing tree entry for {}", pkg.ident());
        }
        // Materialized bytes = exactly the contrib versions that won.
        let expected: u64 = dist
            .repo()
            .iter()
            .filter(|p| {
                contrib.get(&p.name, p.arch).map(|c| c.evr == p.evr).unwrap_or(false)
                    && stock.repo().get(&p.name, p.arch).map(|s| s.evr < p.evr).unwrap_or(true)
            })
            .map(|p| p.size_bytes)
            .sum();
        prop_assert_eq!(report.materialized_bytes, expected);
    }

    /// Chained builds are associative in effect: (stock → a → b) resolves
    /// the same package set as a single merged build.
    #[test]
    fn hierarchy_equals_flat_merge(a in repo_strategy(), b in repo_strategy()) {
        let stock = Distribution::stock("base", {
            let mut r = Repository::new("base");
            r.insert(Package::builder("alpha", "0.1-1").size(10).build());
            r
        });
        let (level1, _) = builder::build(BuildConfig {
            name: "l1".into(),
            parent: Some(&stock),
            contrib: vec![&a],
            ..Default::default()
        }).unwrap();
        let (level2, _) = builder::build(BuildConfig {
            name: "l2".into(),
            parent: Some(&level1),
            contrib: vec![&b],
            ..Default::default()
        }).unwrap();

        let mut flat = Repository::new("flat");
        flat.merge(stock.repo());
        flat.merge(&a);
        flat.merge(&b);
        prop_assert_eq!(resolved(level2.repo()), resolved(&flat));
    }
}
