//! The `rocks-dist build` pipeline (paper Figure 5).
//!
//! Phases:
//! 1. **mirror** — replicate the parent distribution's package list
//!    ("using wget over HTTP"); parent packages become symbolic links,
//! 2. **updates** — fold in vendor update repositories,
//! 3. **contrib / local** — third-party and locally-built RPMs
//!    (materialized as real files: they exist nowhere else),
//! 4. **resolve** — newest-version-wins across all sources,
//! 5. **profiles** — graft the XML `build/` configuration directory,
//! 6. **report** — what changed, how many links vs files, bytes.

use crate::distribution::Distribution;
use rocks_rpm::Repository;
use rocks_trace::Tracer;
use std::collections::BTreeMap;

/// Configuration for one build.
#[derive(Debug, Default)]
pub struct BuildConfig<'a> {
    /// Name of the distribution being built.
    pub name: String,
    /// The parent distribution to mirror (None for a stock build).
    pub parent: Option<&'a Distribution>,
    /// Vendor update repositories (newest-wins against the parent).
    pub updates: Vec<&'a Repository>,
    /// Third-party software (§6.2.1 "Third party software").
    pub contrib: Vec<&'a Repository>,
    /// Locally-built RPMs (§6.2.1 "Local software").
    pub local: Vec<&'a Repository>,
    /// Profile XML files to graft into `build/` (filename → content).
    /// When empty, the parent's build files are inherited.
    pub profile_overlay: BTreeMap<String, String>,
}

/// What a build did — the log Figure 5 sketches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BuildReport {
    /// Packages linked from the parent mirror.
    pub mirrored: usize,
    /// Parent packages displaced by newer versions from updates.
    pub updated: usize,
    /// New packages added by update repos (not present in parent).
    pub added_by_updates: usize,
    /// Packages added from contrib sources.
    pub contrib_added: usize,
    /// Packages added from local sources.
    pub local_added: usize,
    /// Symlink count in the final tree.
    pub links: usize,
    /// Real-file count in the final tree.
    pub files: usize,
    /// Bytes materialized (files only).
    pub materialized_bytes: u64,
    /// Logical bytes (links chased into the parent).
    pub logical_bytes: u64,
}

impl BuildReport {
    /// Human-readable phase log (the `reproduce fig5` output).
    pub fn render(&self, name: &str) -> String {
        format!(
            "rocks-dist build {name}\n\
               mirror:   {} packages linked from parent\n\
               updates:  {} replaced, {} new\n\
               contrib:  {} packages\n\
               local:    {} packages\n\
               tree:     {} links, {} files\n\
               size:     {:.1} MB materialized of {:.1} MB logical\n",
            self.mirrored,
            self.updated,
            self.added_by_updates,
            self.contrib_added,
            self.local_added,
            self.links,
            self.files,
            self.materialized_bytes as f64 / (1024.0 * 1024.0),
            self.logical_bytes as f64 / (1024.0 * 1024.0),
        )
    }
}

/// Errors from building.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistError {
    /// A build without a parent needs at least one package source.
    NoSources,
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::NoSources => write!(f, "rocks-dist build requires a parent or sources"),
        }
    }
}

impl std::error::Error for DistError {}

/// Run the build pipeline.
pub fn build(config: BuildConfig<'_>) -> Result<(Distribution, BuildReport), DistError> {
    build_traced(config, &Tracer::disabled())
}

/// Run the build pipeline with telemetry: each phase gets a span, and the
/// report's numbers land as `dist.*` counters in the tracer's registry
/// (symlinks vs real files, newest-version resolutions, bytes). With a
/// disabled tracer this is exactly [`build`].
pub fn build_traced(
    config: BuildConfig<'_>,
    tracer: &Tracer,
) -> Result<(Distribution, BuildReport), DistError> {
    let _span = tracer.span("dist.build");
    if config.parent.is_none()
        && config.updates.is_empty()
        && config.contrib.is_empty()
        && config.local.is_empty()
    {
        return Err(DistError::NoSources);
    }

    let mut report = BuildReport::default();
    let mut repo = Repository::new(config.name.clone());
    let mut dist = Distribution {
        name: config.name.clone(),
        tree: Default::default(),
        build_files: BTreeMap::new(),
        repo: Repository::new(config.name.clone()),
    };

    // Phase 1: mirror the parent. Every parent package enters the working
    // set; provenance is tracked so the tree phase knows what to link.
    let mut version_resolutions = 0u64;
    let mut from_parent: std::collections::BTreeSet<(String, rocks_rpm::Arch)> = Default::default();
    {
        let _phase = tracer.span("dist.mirror");
        if let Some(parent) = config.parent {
            for pkg in parent.repo().iter() {
                repo.insert(pkg.clone());
                from_parent.insert(pkg.key());
            }
            report.mirrored = repo.len();
        }
    }

    // Phase 2: vendor updates (newest-wins; §6.2.1 "Rocks-dist resolves
    // version numbers of RPMs and only includes the most recent").
    {
        let _phase = tracer.span("dist.updates");
        for updates in &config.updates {
            for pkg in updates.iter() {
                let existed = from_parent.contains(&pkg.key());
                if repo.get(&pkg.name, pkg.arch).is_some() {
                    // A same-name package is already present: rpmvercmp
                    // decides the winner — a newest-version resolution.
                    version_resolutions += 1;
                }
                if repo.insert(pkg.clone()) {
                    // This update's version won: it will be a real file.
                    from_parent.remove(&pkg.key());
                    if existed {
                        report.updated += 1;
                    } else {
                        report.added_by_updates += 1;
                    }
                }
            }
        }
    }

    // Phase 3: contrib and local.
    {
        let _phase = tracer.span("dist.contrib_local");
        for contrib in &config.contrib {
            for pkg in contrib.iter() {
                let existed_in_parent = from_parent.contains(&pkg.key());
                if repo.get(&pkg.name, pkg.arch).is_some() {
                    version_resolutions += 1;
                }
                if repo.insert(pkg.clone()) {
                    from_parent.remove(&pkg.key());
                    if !existed_in_parent {
                        report.contrib_added += 1;
                    } else {
                        report.updated += 1;
                    }
                }
            }
        }
        for local in &config.local {
            for pkg in local.iter() {
                let existed_in_parent = from_parent.contains(&pkg.key());
                if repo.get(&pkg.name, pkg.arch).is_some() {
                    version_resolutions += 1;
                }
                if repo.insert(pkg.clone()) {
                    from_parent.remove(&pkg.key());
                    if !existed_in_parent {
                        report.local_added += 1;
                    } else {
                        report.updated += 1;
                    }
                }
            }
        }
    }

    // Phase 4: lay out the tree. Parent-sourced packages become links
    // into the parent's tree; everything else is a real file.
    {
        let _phase = tracer.span("dist.tree");
        for pkg in repo.iter() {
            let path = Distribution::rpm_path(&config.name, pkg);
            if from_parent.contains(&pkg.key()) {
                let parent = config.parent.expect("provenance implies a parent");
                let target = Distribution::rpm_path(&parent.name, pkg);
                // Link only if the parent actually has the file; a parent
                // built from links is itself resolvable one level up, so
                // chase it to keep links one hop deep.
                let resolved = parent.tree.resolve(&target).unwrap_or(&target).to_string();
                dist.tree.add_link(&path, &resolved);
            } else {
                dist.tree.add_file(&path, pkg.size_bytes);
            }
        }
    }

    // Phase 5: profiles. Inherit the parent's build/ files, then overlay.
    let _phase = tracer.span("dist.profiles");
    let mut build_files = config.parent.map(|p| p.build_files.clone()).unwrap_or_default();
    for (name, content) in config.profile_overlay {
        build_files.insert(name, content);
    }
    for (name, content) in &build_files {
        dist.add_build_file(name, content);
    }
    drop(_phase);

    // Phase 6: report. Logical size is the resolved package set plus the
    // profile files — computing it from the repository (rather than by
    // chasing links) stays exact across multi-level hierarchies, where a
    // link may point into a grandparent's tree.
    let build_bytes: u64 = build_files.values().map(|c| c.len() as u64).sum();
    *dist.repo_mut() = repo;
    let (_, files, links) = dist.tree.counts();
    report.files = files;
    report.links = links;
    report.materialized_bytes = dist.tree.materialized_bytes();
    report.logical_bytes = dist.repo().total_size_bytes() + build_bytes;

    // Surface the report through the registry too — one build adds its
    // numbers once, so registry values and reports can never disagree.
    if let Some(registry) = tracer.registry() {
        registry.counter("dist.builds").incr();
        registry.counter("dist.mirrored").add(report.mirrored as u64);
        registry.counter("dist.updated").add(report.updated as u64);
        registry.counter("dist.added_by_updates").add(report.added_by_updates as u64);
        registry.counter("dist.contrib_added").add(report.contrib_added as u64);
        registry.counter("dist.local_added").add(report.local_added as u64);
        registry.counter("dist.tree.links").add(report.links as u64);
        registry.counter("dist.tree.files").add(report.files as u64);
        registry.counter("dist.version_resolutions").add(version_resolutions);
        registry.counter("dist.bytes.materialized").add(report.materialized_bytes);
        registry.counter("dist.bytes.logical").add(report.logical_bytes);
    }
    Ok((dist, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Entry;
    use rocks_rpm::{synth, Package, UpdateStream};

    fn stock() -> Distribution {
        Distribution::stock("redhat-7.2", synth::redhat72(3))
    }

    #[test]
    fn child_is_mostly_links() {
        let parent = stock();
        let community = synth::community();
        let local = synth::rocks_local();
        let (dist, report) = build(BuildConfig {
            name: "rocks-2.2.1".into(),
            parent: Some(&parent),
            updates: vec![],
            contrib: vec![&community],
            local: vec![&local],
            ..Default::default()
        })
        .unwrap();
        assert!(report.links > 10 * report.files, "{report:?}");
        assert_eq!(report.contrib_added, community.len());
        assert_eq!(report.local_added, local.len());
        // The child materializes only contrib+local bytes — "lightweight".
        assert_eq!(
            report.materialized_bytes,
            community.total_size_bytes() + local.total_size_bytes()
        );
        assert!(dist.repo().get("mpich", rocks_rpm::Arch::I386).is_some());
    }

    #[test]
    fn updates_replace_parent_packages() {
        let parent = stock();
        let stream = UpdateStream::paper_stream(parent.repo(), 5);
        let mut updates = Repository::new("updates");
        for u in stream.updates() {
            updates.insert(u.package.clone());
        }
        let update_slots = updates.len();
        let (dist, report) = build(BuildConfig {
            name: "rocks-updated".into(),
            parent: Some(&parent),
            updates: vec![&updates],
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.updated, update_slots);
        assert_eq!(report.added_by_updates, 0);
        // Every updated package is newer in the child than the parent.
        for pkg in updates.iter() {
            let child_evr = dist.repo().get(&pkg.name, pkg.arch).unwrap().evr.clone();
            assert!(child_evr >= pkg.evr);
        }
        // Updated packages are real files (the mirror pulled them down).
        for pkg in dist.repo().iter() {
            if updates.get(&pkg.name, pkg.arch).map(|u| u.evr == pkg.evr).unwrap_or(false) {
                let path = Distribution::rpm_path(&dist.name, pkg);
                assert!(matches!(dist.tree.get(&path), Some(Entry::File { .. })));
            }
        }
    }

    #[test]
    fn stale_update_loses_to_parent() {
        let parent = stock();
        let mut stale = Repository::new("stale");
        stale.insert(Package::builder("glibc", "2.2.4-1").build()); // older than parent's 2.2.4-19.3
        let (dist, report) = build(BuildConfig {
            name: "d".into(),
            parent: Some(&parent),
            updates: vec![&stale],
            ..Default::default()
        })
        .unwrap();
        assert_eq!(report.updated, 0);
        assert_eq!(
            dist.repo().get("glibc", rocks_rpm::Arch::I686).unwrap().evr.to_string(),
            "2.2.4-19.3"
        );
    }

    #[test]
    fn update_with_obsoletes_drops_renamed_package() {
        // Red Hat renames a package: the update obsoletes the old name
        // and the rebuilt distribution carries only the new one.
        let parent = stock();
        let mut updates = Repository::new("updates");
        updates.insert(
            Package::builder("dhcp-server", "3.0-1")
                .kind(rocks_rpm::PackageKind::Service)
                .obsoletes("dhcp")
                .build(),
        );
        let (dist, _) = build(BuildConfig {
            name: "renamed".into(),
            parent: Some(&parent),
            updates: vec![&updates],
            ..Default::default()
        })
        .unwrap();
        assert!(dist.repo().get("dhcp", rocks_rpm::Arch::I386).is_none());
        assert!(dist.repo().get("dhcp-server", rocks_rpm::Arch::I386).is_some());
    }

    #[test]
    fn no_sources_is_an_error() {
        assert_eq!(
            build(BuildConfig { name: "x".into(), ..Default::default() }).unwrap_err(),
            DistError::NoSources
        );
    }

    #[test]
    fn profiles_are_inherited_and_overlayable() {
        let mut parent = stock();
        parent.add_build_file("graph.xml", "<graph/>");
        parent.add_build_file("nodes/compute.xml", "<kickstart/>");
        let mut overlay = BTreeMap::new();
        overlay.insert(
            "nodes/site.xml".to_string(),
            "<kickstart><package>x</package></kickstart>".to_string(),
        );
        let (dist, _) = build(BuildConfig {
            name: "child".into(),
            parent: Some(&parent),
            profile_overlay: overlay,
            ..Default::default()
        })
        .unwrap();
        assert!(dist.tree.contains("child/build/graph.xml"));
        assert!(dist.tree.contains("child/build/nodes/compute.xml"));
        assert!(dist.tree.contains("child/build/nodes/site.xml"));
        assert_eq!(dist.build_files.len(), 3);
    }

    #[test]
    fn traced_build_matches_untraced_and_fills_registry() {
        let parent = stock();
        let community = synth::community();
        let mut stale = Repository::new("stale");
        stale.insert(Package::builder("glibc", "2.2.4-1").arch(rocks_rpm::Arch::I686).build());
        let config = || BuildConfig {
            name: "traced".into(),
            parent: Some(&parent),
            updates: vec![&stale],
            contrib: vec![&community],
            ..Default::default()
        };
        let (plain_dist, plain_report) = build(config()).unwrap();
        let tracer = Tracer::ring(256);
        let (traced_dist, traced_report) = build_traced(config(), &tracer).unwrap();
        assert_eq!(plain_report, traced_report, "telemetry must not change the build");
        assert_eq!(plain_dist.repo().len(), traced_dist.repo().len());

        let snap = tracer.registry().unwrap().snapshot();
        assert_eq!(snap.counter("dist.builds"), 1);
        assert_eq!(snap.counter("dist.mirrored"), traced_report.mirrored as u64);
        assert_eq!(snap.counter("dist.tree.links"), traced_report.links as u64);
        assert_eq!(snap.counter("dist.tree.files"), traced_report.files as u64);
        assert_eq!(snap.counter("dist.contrib_added"), traced_report.contrib_added as u64);
        // The stale glibc triggered exactly one version resolution.
        assert_eq!(snap.counter("dist.version_resolutions"), 1);

        // Phase spans nest under dist.build and balance.
        let dump = tracer.dump();
        let enters = dump
            .events
            .iter()
            .filter(|e| matches!(e.kind, rocks_trace::EventKind::Enter { .. }))
            .count();
        let exits = dump
            .events
            .iter()
            .filter(|e| matches!(e.kind, rocks_trace::EventKind::Exit { .. }))
            .count();
        assert_eq!(enters, 6, "dist.build + five phase spans");
        assert_eq!(enters, exits);
    }

    #[test]
    fn report_render_mentions_key_numbers() {
        let parent = stock();
        let community = synth::community();
        let (_, report) = build(BuildConfig {
            name: "r".into(),
            parent: Some(&parent),
            contrib: vec![&community],
            ..Default::default()
        })
        .unwrap();
        let text = report.render("r");
        assert!(text.contains("packages linked from parent"));
        assert!(text.contains("MB materialized"));
    }
}
