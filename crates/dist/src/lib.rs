#![warn(missing_docs)]

//! `rocks-dist`: building cluster-enhanced Linux distributions (paper §6.2).
//!
//! "Rocks-dist gathers software components from the following sources and
//! constructs a single new distribution: Red Hat software [stock + updates
//! mirrored locally], third party software, local software. ... The
//! resulting Rocks distribution looks just like a Red Hat distribution,
//! only with more software. A consequence of this is repeatability — a
//! Rocks distribution can be run through the identical process to produce
//! an enhanced Rocks distribution" (Figures 5 and 6).
//!
//! * [`tree::DistTree`] — the distribution's file tree, virtualized so
//!   tests are hermetic and the §6.2.3 "mostly symbolic links, ~25 MB,
//!   built in under a minute" claims are measurable,
//! * [`distribution::Distribution`] — a named tree + package repository +
//!   the XML `build/` profile directory,
//! * [`builder`] — the `rocks-dist build` pipeline: mirror → resolve
//!   versions → link tree → graft profiles → report,
//! * [`hierarchy`] — chained parent/child distributions (Figure 6's
//!   object-oriented model).

pub mod builder;
pub mod distribution;
pub mod hierarchy;
pub mod tree;

pub use builder::{BuildConfig, BuildReport, DistError};
pub use distribution::Distribution;
pub use tree::{DistTree, Entry};
