//! Distribution hierarchies (paper Figure 6 and §6.2.2).
//!
//! "We envision a hierarchy of Rocks distribution hosts, each adding
//! software packages for child distributions": Red Hat → NPACI Rocks →
//! university → department. Because the build process is repeatable, any
//! distribution can serve as a parent.

use crate::builder::{build, BuildConfig, BuildReport, DistError};
use crate::distribution::Distribution;
use rocks_rpm::Repository;

/// One level in a hierarchy: a name plus the software this level adds.
#[derive(Debug, Default)]
pub struct Level {
    /// Distribution name at this level.
    pub name: String,
    /// Vendor-update repositories applied at this level.
    pub updates: Vec<Repository>,
    /// Contributed software added at this level.
    pub contrib: Vec<Repository>,
    /// Locally-built software added at this level.
    pub local: Vec<Repository>,
}

impl Level {
    /// A level that only adds contrib packages.
    pub fn with_contrib(name: &str, contrib: Repository) -> Level {
        Level { name: name.to_string(), contrib: vec![contrib], ..Default::default() }
    }
}

/// Build a chain of distributions starting from `root`. Returns every
/// level's distribution and build report, ordered root-child → leaf.
pub fn build_chain(
    root: &Distribution,
    levels: &[Level],
) -> Result<Vec<(Distribution, BuildReport)>, DistError> {
    let mut out: Vec<(Distribution, BuildReport)> = Vec::new();
    for (i, level) in levels.iter().enumerate() {
        let parent: &Distribution = if i == 0 { root } else { &out[i - 1].0 };
        let (dist, report) = build(BuildConfig {
            name: level.name.clone(),
            parent: Some(parent),
            updates: level.updates.iter().collect(),
            contrib: level.contrib.iter().collect(),
            local: level.local.iter().collect(),
            ..Default::default()
        })?;
        out.push((dist, report));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocks_rpm::{synth, Package};

    fn one_pkg_repo(name: &str, pkg_name: &str, size: u64) -> Repository {
        let mut repo = Repository::new(name);
        repo.insert(Package::builder(pkg_name, "1.0-1").size(size).build());
        repo
    }

    #[test]
    fn figure6_four_level_chain() {
        // Red Hat → Rocks → campus → department, as drawn in Figure 6.
        let redhat = Distribution::stock("redhat-7.2", synth::redhat72(11));
        let levels = vec![
            Level {
                name: "rocks-2.2.1".into(),
                contrib: vec![synth::community()],
                local: vec![synth::rocks_local()],
                ..Default::default()
            },
            Level::with_contrib(
                "ucsd-campus",
                one_pkg_repo("campus", "campus-license-tools", 1 << 20),
            ),
            Level::with_contrib("chem-dept", one_pkg_repo("dept", "gamess", 40 << 20)),
        ];
        let chain = build_chain(&redhat, &levels).unwrap();
        assert_eq!(chain.len(), 3);

        // The leaf sees software from every ancestor.
        let leaf = &chain[2].0;
        for pkg in ["glibc", "mpich", "rocks-dist", "campus-license-tools", "gamess"] {
            assert!(
                leaf.repo().best_for(pkg, rocks_rpm::Arch::I686).is_some(),
                "leaf missing {pkg}"
            );
        }

        // Each level materializes only what it adds; everything inherited
        // stays a link (§6.2.3 "lightweight").
        let campus_report = &chain[1].1;
        assert_eq!(campus_report.materialized_bytes, 1 << 20);
        let dept_report = &chain[2].1;
        assert_eq!(dept_report.materialized_bytes, 40 << 20);
        assert!(dept_report.links > 600);
    }

    #[test]
    fn repeatability_child_of_child_resolves_links_one_hop() {
        let redhat = Distribution::stock("redhat-7.2", synth::redhat72(11));
        let chain = build_chain(
            &redhat,
            &[
                Level::with_contrib("a", one_pkg_repo("ra", "pkg-a", 10)),
                Level::with_contrib("b", one_pkg_repo("rb", "pkg-b", 10)),
            ],
        )
        .unwrap();
        let b = &chain[1].0;
        // A glibc link in `b` must point directly at the stock tree (one
        // hop), not at `a`'s link.
        let glibc = b.repo().get("glibc", rocks_rpm::Arch::I686).unwrap();
        let path = Distribution::rpm_path("b", glibc);
        let target = b.tree.resolve(&path).unwrap();
        assert!(target.starts_with("redhat-7.2/"), "target = {target}");
    }

    #[test]
    fn level_update_propagates_to_leaf() {
        let redhat = Distribution::stock("redhat-7.2", synth::redhat72(11));
        let mut newer_glibc = Repository::new("sec");
        newer_glibc.insert(
            Package::builder("glibc", "2.2.4-24")
                .arch(rocks_rpm::Arch::I686)
                .size(14 << 20)
                .build(),
        );
        let chain = build_chain(
            &redhat,
            &[
                Level { name: "rocks".into(), updates: vec![newer_glibc], ..Default::default() },
                Level::with_contrib("campus", one_pkg_repo("c", "x", 10)),
            ],
        )
        .unwrap();
        let leaf = &chain[1].0;
        assert_eq!(
            leaf.repo().get("glibc", rocks_rpm::Arch::I686).unwrap().evr.to_string(),
            "2.2.4-24"
        );
    }
}
