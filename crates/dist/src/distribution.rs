//! A built distribution: package repository + file tree + profile sources.

use crate::tree::{DistTree, Entry};
use rocks_rpm::{Arch, Package, Repository};
use std::collections::BTreeMap;

/// A complete distribution, "just like a Red Hat distribution, only with
/// more software" (§6.2). It can be installed from (the repository), it
/// can be mirrored by a child (Figure 6), and it carries the XML profile
/// `build/` directory users customize (§6.2.3).
#[derive(Debug, Clone)]
pub struct Distribution {
    /// Distribution name, e.g. `redhat-7.2`, `rocks-2.2.1`, `campus-1.0`.
    pub name: String,
    /// Resolved package set (newest versions only).
    pub(crate) repo: Repository,
    /// The file tree (RPMS dirs per arch, build/ profiles).
    pub tree: DistTree,
    /// Profile XML files carried in `build/`: filename → content.
    pub build_files: BTreeMap<String, String>,
}

impl Distribution {
    /// Wrap a bare repository as a "stock vendor" distribution whose tree
    /// materializes every RPM (the primary mirror — nothing to link to).
    pub fn stock(name: &str, repo: Repository) -> Distribution {
        let mut tree = DistTree::new();
        for pkg in repo.iter() {
            tree.add_file(&Self::rpm_path(name, pkg), pkg.size_bytes);
        }
        Distribution { name: name.to_string(), repo, tree, build_files: BTreeMap::new() }
    }

    /// The canonical path of a package inside a distribution tree.
    /// Everything IA-32 lands under `i386/` next to `noarch` and `src`
    /// packages, mirroring Red Hat's layout; IA-64 has its own tree.
    pub fn rpm_path(dist_name: &str, pkg: &Package) -> String {
        let arch_dir = match pkg.arch {
            Arch::Ia64 => "ia64",
            _ => "i386",
        };
        format!("{dist_name}/{arch_dir}/RedHat/RPMS/{}", pkg.filename())
    }

    /// The resolved package repository.
    pub fn repo(&self) -> &Repository {
        &self.repo
    }

    /// Mutable repository access (the builder uses this).
    pub(crate) fn repo_mut(&mut self) -> &mut Repository {
        &mut self.repo
    }

    /// Whether the tree has an entry (link or file) for a package.
    pub fn has_package_entry(&self, pkg: &Package) -> bool {
        self.tree.contains(&Self::rpm_path(&self.name, pkg))
    }

    /// Byte size of the package set a node of `arch` can draw from.
    pub fn bytes_for_arch(&self, arch: Arch) -> u64 {
        self.repo.iter_for_arch(arch).map(|p| p.size_bytes).sum()
    }

    /// Sizes of every real file, used by children to compute logical size.
    pub fn file_sizes(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (path, entry) in self.tree.under("") {
            if let Entry::File { bytes } = entry {
                out.insert(path.to_string(), *bytes);
            }
        }
        out
    }

    /// Store a profile XML file under `build/`.
    pub fn add_build_file(&mut self, filename: &str, content: &str) {
        self.build_files.insert(filename.to_string(), content.to_string());
        let path = format!("{}/build/{filename}", self.name);
        self.tree.add_file(&path, content.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocks_rpm::synth;

    #[test]
    fn stock_distribution_materializes_everything() {
        let repo = synth::redhat72(1);
        let package_count = repo.len();
        let total = repo.total_size_bytes();
        let dist = Distribution::stock("redhat-7.2", repo);
        let (_, files, links) = dist.tree.counts();
        assert_eq!(files, package_count);
        assert_eq!(links, 0);
        assert_eq!(dist.tree.materialized_bytes(), total);
    }

    #[test]
    fn rpm_paths_follow_redhat_layout() {
        let pkg = Package::builder("dev", "3.0.6-5").arch(Arch::I386).build();
        assert_eq!(
            Distribution::rpm_path("rocks-dist", &pkg),
            "rocks-dist/i386/RedHat/RPMS/dev-3.0.6-5.i386.rpm"
        );
        let ia64 = Package::builder("kernel", "2.4.9-31").arch(Arch::Ia64).build();
        assert!(Distribution::rpm_path("d", &ia64).starts_with("d/ia64/"));
        let noarch = Package::builder("rocks-dist", "2.2.1-1").arch(Arch::Noarch).build();
        assert!(Distribution::rpm_path("d", &noarch).contains("/i386/"));
    }

    #[test]
    fn build_files_land_in_tree() {
        let mut dist = Distribution::stock("d", Repository::new("x"));
        dist.add_build_file("graph.xml", "<graph/>");
        assert!(dist.tree.contains("d/build/graph.xml"));
        assert_eq!(dist.tree.materialized_bytes(), "<graph/>".len() as u64);
    }
}
