//! The distribution file tree, virtualized.
//!
//! rocks-dist "creates a new tree comprised mostly of symbolic links to
//! the mirrored software" (§6.2.3). We model the tree in memory so the
//! reproduction can count exactly how many bytes a child distribution
//! materializes versus links — the paper's "each distribution is
//! lightweight (on the order of 25MB)".

use std::collections::BTreeMap;

/// One tree entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A directory (implicit parents are created automatically).
    Dir,
    /// A real file with a byte size (metadata, profile XML, local RPMs).
    File {
        /// File size in bytes.
        bytes: u64,
    },
    /// A symbolic link to a path in another distribution's tree.
    Link {
        /// Link target (a path in an ancestor's tree).
        target: String,
    },
}

/// A distribution tree: sorted path → entry map. Paths use `/` and are
/// relative to the distribution root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DistTree {
    entries: BTreeMap<String, Entry>,
}

impl DistTree {
    /// Empty tree.
    pub fn new() -> Self {
        DistTree::default()
    }

    /// Insert an entry, creating implicit parent directories.
    pub fn insert(&mut self, path: &str, entry: Entry) {
        let mut parent = String::new();
        for component in path.split('/').take(path.split('/').count() - 1) {
            if !parent.is_empty() {
                parent.push('/');
            }
            parent.push_str(component);
            self.entries.entry(parent.clone()).or_insert(Entry::Dir);
        }
        self.entries.insert(path.to_string(), entry);
    }

    /// Add a real file.
    pub fn add_file(&mut self, path: &str, bytes: u64) {
        self.insert(path, Entry::File { bytes });
    }

    /// Add a symlink.
    pub fn add_link(&mut self, path: &str, target: &str) {
        self.insert(path, Entry::Link { target: target.to_string() });
    }

    /// Look up an entry.
    pub fn get(&self, path: &str) -> Option<&Entry> {
        self.entries.get(path)
    }

    /// Whether the path exists (as any entry type).
    pub fn contains(&self, path: &str) -> bool {
        self.entries.contains_key(path)
    }

    /// Resolve a path through at most one level of symlink, returning the
    /// target path (rocks-dist links always point at real files in the
    /// parent mirror).
    pub fn resolve<'a>(&'a self, path: &'a str) -> Option<&'a str> {
        match self.entries.get(path)? {
            Entry::Link { target } => Some(target.as_str()),
            _ => Some(path),
        }
    }

    /// All paths under a prefix, in sorted order.
    pub fn under<'a>(&'a self, prefix: &'a str) -> impl Iterator<Item = (&'a str, &'a Entry)> {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(p, _)| p.starts_with(prefix))
            .map(|(p, e)| (p.as_str(), e))
    }

    /// Count of entries by kind: `(dirs, files, links)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut dirs = 0;
        let mut files = 0;
        let mut links = 0;
        for entry in self.entries.values() {
            match entry {
                Entry::Dir => dirs += 1,
                Entry::File { .. } => files += 1,
                Entry::Link { .. } => links += 1,
            }
        }
        (dirs, files, links)
    }

    /// Bytes actually materialized in this tree (files only — links are
    /// free, which is the entire point of §6.2.3).
    pub fn materialized_bytes(&self) -> u64 {
        self.entries
            .values()
            .map(|e| match e {
                Entry::File { bytes } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total logical bytes when links are chased into `parent_sizes`
    /// (a map from parent path → size).
    pub fn logical_bytes(&self, parent_sizes: &BTreeMap<String, u64>) -> u64 {
        self.entries
            .values()
            .map(|e| match e {
                Entry::File { bytes } => *bytes,
                Entry::Link { target } => parent_sizes.get(target).copied().unwrap_or(0),
                Entry::Dir => 0,
            })
            .sum()
    }

    /// Render an `ls -R`-style listing (used by `reproduce fig5`).
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for (path, entry) in &self.entries {
            match entry {
                Entry::Dir => out.push_str(&format!("{path}/\n")),
                Entry::File { bytes } => out.push_str(&format!("{path} ({bytes} bytes)\n")),
                Entry::Link { target } => out.push_str(&format!("{path} -> {target}\n")),
            }
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_parent_directories() {
        let mut tree = DistTree::new();
        tree.add_file("rocks-dist/i386/RedHat/RPMS/glibc-2.2.4-19.i386.rpm", 100);
        assert_eq!(tree.get("rocks-dist"), Some(&Entry::Dir));
        assert_eq!(tree.get("rocks-dist/i386/RedHat"), Some(&Entry::Dir));
        assert_eq!(tree.counts(), (4, 1, 0));
    }

    #[test]
    fn materialized_vs_linked_bytes() {
        let mut tree = DistTree::new();
        tree.add_file("d/build/graph.xml", 1000);
        tree.add_link("d/RPMS/big.rpm", "parent/RPMS/big.rpm");
        assert_eq!(tree.materialized_bytes(), 1000);
        let mut parent_sizes = BTreeMap::new();
        parent_sizes.insert("parent/RPMS/big.rpm".to_string(), 50_000u64);
        assert_eq!(tree.logical_bytes(&parent_sizes), 51_000);
    }

    #[test]
    fn resolve_chases_one_link() {
        let mut tree = DistTree::new();
        tree.add_link("a/x.rpm", "parent/x.rpm");
        tree.add_file("a/y.rpm", 5);
        assert_eq!(tree.resolve("a/x.rpm"), Some("parent/x.rpm"));
        assert_eq!(tree.resolve("a/y.rpm"), Some("a/y.rpm"));
        assert_eq!(tree.resolve("a/missing.rpm"), None);
    }

    #[test]
    fn under_prefix_iteration() {
        let mut tree = DistTree::new();
        tree.add_file("d/i386/a.rpm", 1);
        tree.add_file("d/i386/b.rpm", 2);
        tree.add_file("d/ia64/c.rpm", 3);
        let i386: Vec<&str> = tree.under("d/i386/").map(|(p, _)| p).collect();
        assert_eq!(i386, vec!["d/i386/a.rpm", "d/i386/b.rpm"]);
    }

    #[test]
    fn listing_is_sorted_and_complete() {
        let mut tree = DistTree::new();
        tree.add_file("z/file", 9);
        tree.add_link("a/link", "elsewhere");
        let listing = tree.render_listing();
        let a_pos = listing.find("a/link -> elsewhere").unwrap();
        let z_pos = listing.find("z/file (9 bytes)").unwrap();
        assert!(a_pos < z_pos);
    }
}
