//! The reinstall-versus-verify ablation (paper §1 and §3).
//!
//! Rocks' thesis: "With attention to complete automation of this process,
//! it becomes faster to reinstall all nodes to a known configuration than
//! it is to determine if nodes were out of synchronization in the first
//! place. ... This is clearly diametrically opposed to the philosophy of
//! configuration management tools like Cfengine that perform exhaustive
//! examination and parity checking of an installed OS."
//!
//! This module provides the cost model behind the `reproduce ablation`
//! experiment: for a node in an *unknown* state with some amount of
//! drift, compare the time (and residual inconsistency) of
//!
//! * **Reinstall** — flat cost (the Table I per-node time), always ends
//!   in a known-good state, and
//! * **VerifyRepair** — a cfengine-style scan of the configuration
//!   surface plus per-item repairs, whose cost grows with the drift and
//!   whose completeness is bounded by the policy's coverage; drift in
//!   core components (kernel, glibc, shared services) cannot be repaired
//!   online at all (§1: "changes to any shared object or service require
//!   that all processes ... terminate") and forces a reinstall anyway.

/// What kind of item drifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftKind {
    /// An editable configuration file (cfengine's sweet spot).
    ConfigFile,
    /// A package at the wrong version (repairable by re-running RPM).
    PackageVersion,
    /// Kernel / glibc / a shared service: online repair is impossible.
    CoreComponent,
}

/// One drifted item on one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Drift {
    /// Node name.
    pub node: String,
    /// Item (file path or package name).
    pub item: String,
    /// Severity class.
    pub kind: DriftKind,
}

/// Strategy under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Rocks: reinstall the node.
    Reinstall,
    /// Cfengine-style: scan against policy, repair what the policy
    /// covers.
    VerifyRepair,
}

/// Cost model parameters. Defaults are deliberately *favourable to the
/// verifier* so the ablation's crossover is conservative.
#[derive(Debug, Clone)]
pub struct VerifyModel {
    /// Seconds to check one policy item (stat + checksum + compare).
    pub per_item_check_s: f64,
    /// Policy items per node (files and packages under management).
    pub policy_items: usize,
    /// Seconds to repair one drifted config file.
    pub config_repair_s: f64,
    /// Seconds to re-install one drifted package.
    pub package_repair_s: f64,
    /// Fraction of the real configuration surface the policy covers —
    /// cfengine only checks what an administrator thought to describe.
    pub coverage: f64,
    /// Seconds a full node reinstall takes (Table I single-node time).
    pub reinstall_s: f64,
}

impl Default for VerifyModel {
    fn default() -> Self {
        VerifyModel {
            per_item_check_s: 0.05,
            policy_items: 2000,
            config_repair_s: 2.0,
            package_repair_s: 25.0,
            coverage: 0.85,
            reinstall_s: 618.0, // 10.3 minutes
        }
    }
}

/// Outcome of bringing one node to a (claimed) known state.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// Strategy used.
    pub strategy: Strategy,
    /// Seconds spent.
    pub seconds: f64,
    /// Drifted items actually fixed.
    pub repaired: usize,
    /// Drifted items the policy never saw — still wrong afterwards.
    pub missed: usize,
    /// Whether the node ended in a *provably* known state.
    pub known_good: bool,
}

/// Evaluate one strategy against a node's drift set.
pub fn bring_to_known_state(
    strategy: Strategy,
    drifts: &[Drift],
    model: &VerifyModel,
) -> RepairOutcome {
    match strategy {
        Strategy::Reinstall => RepairOutcome {
            strategy,
            seconds: model.reinstall_s,
            repaired: drifts.len(),
            missed: 0,
            known_good: true,
        },
        Strategy::VerifyRepair => {
            // Scan the whole policy regardless of how much drifted —
            // that is the point: determining whether nodes are out of
            // sync costs a full examination.
            let scan = model.policy_items as f64 * model.per_item_check_s;

            // Of the drifted items, only the covered fraction is seen.
            // Deterministic split: the first ⌈coverage·n⌉ of each kind.
            let mut seconds = scan;
            let mut repaired = 0usize;
            let mut missed = 0usize;
            let mut needs_reinstall = false;
            let covered_count = (drifts.len() as f64 * model.coverage).round() as usize;
            for (i, drift) in drifts.iter().enumerate() {
                let covered = i < covered_count;
                if !covered {
                    missed += 1;
                    continue;
                }
                match drift.kind {
                    DriftKind::ConfigFile => {
                        seconds += model.config_repair_s;
                        repaired += 1;
                    }
                    DriftKind::PackageVersion => {
                        seconds += model.package_repair_s;
                        repaired += 1;
                    }
                    DriftKind::CoreComponent => {
                        // Detected but not online-repairable: the node
                        // must reinstall anyway.
                        needs_reinstall = true;
                    }
                }
            }
            if needs_reinstall {
                seconds += model.reinstall_s;
                // The reinstall wipes everything, including missed drift.
                repaired = drifts.len();
                missed = 0;
            }
            RepairOutcome {
                strategy,
                seconds,
                repaired,
                missed,
                known_good: needs_reinstall || missed == 0,
            }
        }
    }
}

/// A synthetic drift workload: `n` items cycling through the severity
/// classes with the given proportions (out of 100).
pub fn synth_drift(node: &str, n: usize, pct_config: usize, pct_package: usize) -> Vec<Drift> {
    assert!(pct_config + pct_package <= 100);
    (0..n)
        .map(|i| {
            let roll = (i * 37) % 100; // deterministic spread
            let kind = if roll < pct_config {
                DriftKind::ConfigFile
            } else if roll < pct_config + pct_package {
                DriftKind::PackageVersion
            } else {
                DriftKind::CoreComponent
            };
            Drift { node: node.to_string(), item: format!("item-{i}"), kind }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reinstall_is_flat_and_always_known_good() {
        let model = VerifyModel::default();
        for n in [0, 5, 500] {
            let drifts = synth_drift("n", n, 70, 25);
            let outcome = bring_to_known_state(Strategy::Reinstall, &drifts, &model);
            assert_eq!(outcome.seconds, model.reinstall_s);
            assert!(outcome.known_good);
            assert_eq!(outcome.missed, 0);
        }
    }

    #[test]
    fn verify_wins_on_small_shallow_drift() {
        let model = VerifyModel::default();
        // Two config-file edits: a quick scan plus two repairs.
        let drifts = synth_drift("n", 2, 100, 0);
        let verify = bring_to_known_state(Strategy::VerifyRepair, &drifts, &model);
        let reinstall = bring_to_known_state(Strategy::Reinstall, &drifts, &model);
        assert!(verify.seconds < reinstall.seconds);
    }

    #[test]
    fn verify_loses_on_deep_drift() {
        let model = VerifyModel::default();
        // Core-component drift (a bad glibc) forces scan + reinstall:
        // strictly worse than reinstalling straight away.
        let drifts =
            vec![Drift { node: "n".into(), item: "glibc".into(), kind: DriftKind::CoreComponent }];
        let verify = bring_to_known_state(Strategy::VerifyRepair, &drifts, &model);
        let reinstall = bring_to_known_state(Strategy::Reinstall, &drifts, &model);
        assert!(verify.seconds > reinstall.seconds);
        assert!(verify.known_good); // it did reinstall, eventually
    }

    #[test]
    fn verify_misses_uncovered_drift() {
        let model = VerifyModel { coverage: 0.5, ..Default::default() };
        let drifts = synth_drift("n", 10, 100, 0);
        let outcome = bring_to_known_state(Strategy::VerifyRepair, &drifts, &model);
        assert_eq!(outcome.repaired, 5);
        assert_eq!(outcome.missed, 5);
        assert!(!outcome.known_good);
    }

    #[test]
    fn package_drift_crossover_exists() {
        // With enough drifted packages, repairs alone exceed the flat
        // reinstall cost — the paper's scaling argument.
        let model = VerifyModel::default();
        let cost = |n: usize| {
            let drifts = synth_drift("n", n, 0, 100);
            bring_to_known_state(Strategy::VerifyRepair, &drifts, &model).seconds
        };
        assert!(cost(2) < model.reinstall_s + 100.0);
        assert!(cost(40) > model.reinstall_s);
        // Monotone growth.
        assert!(cost(40) > cost(10));
    }

    #[test]
    fn synth_drift_proportions_roughly_hold() {
        let drifts = synth_drift("n", 100, 70, 25);
        let config = drifts.iter().filter(|d| d.kind == DriftKind::ConfigFile).count();
        let pkg = drifts.iter().filter(|d| d.kind == DriftKind::PackageVersion).count();
        let core = drifts.iter().filter(|d| d.kind == DriftKind::CoreComponent).count();
        assert!((60..=80).contains(&config), "config {config}");
        assert!((15..=35).contains(&pkg), "pkg {pkg}");
        assert!((1..=15).contains(&core), "core {core}");
    }
}
