//! The continuous-upgrade workflow (paper §5).
//!
//! "Software on production machines can be systematically and continually
//! upgraded. ... This tool can be used to apply the latest security
//! advisories and bug fixes. After the updates are validated on a small
//! test cluster, the production system can be upgraded by submitting a
//! 'reinstall cluster' job to Maui, as not to disturb any running
//! applications. Once the reinstallation is complete, the next job will
//! have a known, consistent software base."

use crate::cluster::Cluster;
use crate::{Result, RocksError};
use rocks_pbs::reinstall::roll_cluster;
use rocks_pbs::PbsServer;
use rocks_rpm::Repository;

/// What an upgrade did.
#[derive(Debug, Clone)]
pub struct UpgradeReport {
    /// Package slots whose version advanced in the distribution.
    pub packages_updated: usize,
    /// The node used for validation.
    pub test_node: String,
    /// Minutes the validation reinstall took.
    pub validation_minutes: f64,
    /// Virtual seconds until the whole production cluster was rolled
    /// (includes waiting for running jobs to drain).
    pub roll_seconds: f64,
    /// Nodes reinstalled during the roll.
    pub nodes_rolled: usize,
}

/// Run the full §5 workflow against `cluster`:
///
/// 1. fold `updates` into the distribution (rocks-dist rebuild,
///    newest-wins),
/// 2. reinstall one *test node* and verify it comes up consistent,
/// 3. submit the reinstall-cluster job to the batch system and roll every
///    remaining node as it drains, never interrupting `running_jobs`
///    (name, nodes, walltime) already in the queue.
pub fn upgrade_cluster(
    cluster: &mut Cluster,
    updates: &Repository,
    running_jobs: &[(&str, usize, f64)],
) -> Result<UpgradeReport> {
    // Phase 1: rebuild the distribution.
    let before: Vec<String> = cluster.distribution.repo().iter().map(|p| p.ident()).collect();
    cluster.rebuild_distribution(&[updates])?;
    let after: Vec<String> = cluster.distribution.repo().iter().map(|p| p.ident()).collect();
    let packages_updated = after.iter().filter(|ident| !before.contains(ident)).count();

    // Phase 2: validate on a test node (the first compute node).
    let names = cluster.compute_node_names()?;
    let test_node = names
        .first()
        .cloned()
        .ok_or_else(|| RocksError::ValidationFailed("cluster has no compute nodes".into()))?;
    let validation = cluster.shoot_nodes(std::slice::from_ref(&test_node))?;
    if !cluster.inconsistent_nodes()?.is_empty()
        && cluster.inconsistent_nodes()?.contains(&test_node)
    {
        return Err(RocksError::ValidationFailed(format!(
            "{test_node} still inconsistent after reinstall"
        )));
    }

    // Phase 3: roll the production nodes through PBS. The test node is
    // already done; everything else drains and reinstalls.
    let remaining: Vec<String> = names.iter().filter(|n| **n != test_node).cloned().collect();
    let mut pbs = PbsServer::new();
    for name in &remaining {
        pbs.add_node(name);
    }
    for (job_name, nodes, walltime) in running_jobs {
        let id = pbs.qsub(job_name, *nodes, *walltime)?;
        rocks_pbs::scheduler::schedule(&mut pbs);
        // Jobs that could not start right away stay queued and are
        // simply cancelled by the roll model — the paper's scenario is
        // about *running* applications.
        let _ = id;
    }
    // Reinstall duration per node from the validation measurement.
    let reinstall_seconds = validation.total_minutes * 60.0;
    let roll_seconds = roll_cluster(&mut pbs, reinstall_seconds)?;

    // Reflect the roll in the cluster's images.
    cluster.shoot_nodes(&remaining)?;

    Ok(UpgradeReport {
        packages_updated,
        test_node,
        validation_minutes: validation.total_minutes,
        roll_seconds,
        nodes_rolled: remaining.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocks_rpm::{Arch, Package};

    fn cluster_with_nodes(n: usize) -> Cluster {
        let mut cluster = Cluster::install_frontend("00:30:c1:d8:ac:80", 1).unwrap();
        let macs: Vec<String> = (0..n).map(|i| format!("aa:00:00:00:00:{i:02x}")).collect();
        cluster.integrate_rack("Compute", 0, &macs).unwrap();
        cluster
    }

    fn security_update() -> Repository {
        let mut updates = Repository::new("rhsa");
        updates
            .insert(Package::builder("glibc", "2.2.4-24").arch(Arch::I686).size(14 << 20).build());
        updates.insert(Package::builder("openssh-server", "2.9p2-14").size(320 << 10).build());
        updates
    }

    #[test]
    fn upgrade_ends_with_consistent_cluster() {
        let mut cluster = cluster_with_nodes(4);
        let report = upgrade_cluster(&mut cluster, &security_update(), &[]).unwrap();
        assert_eq!(report.packages_updated, 2);
        assert_eq!(report.nodes_rolled, 3);
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
        // Every node now carries the patched glibc.
        for name in cluster.compute_node_names().unwrap() {
            let image = cluster.image(&name).unwrap();
            assert!(
                image.packages.iter().any(|p| p.contains("glibc-2.2.4-24")),
                "{name} missing update"
            );
        }
    }

    #[test]
    fn running_jobs_delay_the_roll_but_finish() {
        let mut cluster = cluster_with_nodes(4);
        // A 2-node job with 1 hour of walltime is running in production.
        let report =
            upgrade_cluster(&mut cluster, &security_update(), &[("science", 2, 3600.0)]).unwrap();
        // The roll cannot finish before the job does.
        assert!(
            report.roll_seconds >= 3600.0,
            "roll finished at {} despite a 3600 s job",
            report.roll_seconds
        );
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
    }

    #[test]
    fn idle_cluster_rolls_in_one_reinstall_window() {
        let mut cluster = cluster_with_nodes(3);
        let report = upgrade_cluster(&mut cluster, &security_update(), &[]).unwrap();
        // All remaining nodes reinstall concurrently: the roll is one
        // reinstall duration, not nodes × duration.
        let one = report.validation_minutes * 60.0;
        assert!(
            report.roll_seconds < one * 1.5,
            "roll {} vs single install {}",
            report.roll_seconds,
            one
        );
    }

    #[test]
    fn empty_cluster_fails_validation() {
        let mut cluster = Cluster::install_frontend("00:30:c1:d8:ac:80", 1).unwrap();
        assert!(matches!(
            upgrade_cluster(&mut cluster, &security_update(), &[]),
            Err(RocksError::ValidationFailed(_))
        ));
    }
}
