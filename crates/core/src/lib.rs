#![warn(missing_docs)]

//! `rocks-core` — the NPACI Rocks cluster facade.
//!
//! This crate is the downstream-user API of the reproduction: one
//! [`Cluster`] value owns the cluster database (§6.4), the XML-driven
//! Kickstart generator (§6.1), the rocks-dist distribution (§6.2), the
//! frontend services (DHCP/NIS/NFS, §4–5), per-node execution agents, and
//! the simulated hardware — and exposes the workflows the paper is about:
//!
//! * **bring-up**: install a frontend, then integrate compute nodes with
//!   the insert-ethers flow ([`Cluster::integrate_rack`]),
//! * **reinstallation as the management primitive** (§6.3):
//!   [`Cluster::shoot_nodes`] / [`Cluster::reinstall_all`],
//! * **SQL-directed administration** (§6.4): [`tools::cluster_fork`] /
//!   [`tools::cluster_kill`] with raw `--query` strings,
//! * **continuous upgrades** (§5): [`upgrade::upgrade_cluster`] — mirror
//!   vendor updates, rebuild the distribution, validate on a test node,
//!   then roll the production cluster through PBS without disturbing
//!   running jobs,
//! * **the consistency ablation** ([`consistency`]): reinstall versus
//!   cfengine-style verify-and-repair.

pub mod cluster;
pub mod consistency;
pub mod tools;
pub mod upgrade;

pub use cluster::{Cluster, NodeImage, ReinstallReport};
pub use consistency::{Drift, DriftKind, RepairOutcome, Strategy, VerifyModel};
pub use tools::{cluster_fork, cluster_kill, cluster_status};
pub use upgrade::{upgrade_cluster, UpgradeReport};

/// Errors surfaced by cluster workflows.
#[derive(Debug)]
pub enum RocksError {
    /// Cluster database failure.
    Db(rocks_db::DbError),
    /// Raw SQL failure from a status or --query call.
    Sql(rocks_sql::SqlError),
    /// Kickstart generation failure.
    Kickstart(rocks_kickstart::KsError),
    /// Distribution build failure.
    Dist(rocks_dist::DistError),
    /// Batch-system failure.
    Pbs(rocks_pbs::PbsError),
    /// A named node does not exist.
    NoSuchNode(String),
    /// Upgrade validation failed on the test node.
    ValidationFailed(String),
    /// The reinstall simulation could not finish (e.g. it stalled with
    /// flows active and no bandwidth).
    Simulation(String),
}

impl std::fmt::Display for RocksError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RocksError::Db(e) => write!(f, "database: {e}"),
            RocksError::Sql(e) => write!(f, "sql: {e}"),
            RocksError::Kickstart(e) => write!(f, "kickstart: {e}"),
            RocksError::Dist(e) => write!(f, "distribution: {e}"),
            RocksError::Pbs(e) => write!(f, "batch system: {e}"),
            RocksError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            RocksError::ValidationFailed(m) => write!(f, "upgrade validation failed: {m}"),
            RocksError::Simulation(m) => write!(f, "simulation: {m}"),
        }
    }
}

impl std::error::Error for RocksError {}

impl From<rocks_netsim::SimError> for RocksError {
    fn from(e: rocks_netsim::SimError) -> Self {
        RocksError::Simulation(e.to_string())
    }
}

impl From<rocks_netsim::ReinstallError> for RocksError {
    fn from(e: rocks_netsim::ReinstallError) -> Self {
        match e {
            rocks_netsim::ReinstallError::Generation(k) => RocksError::Kickstart(k),
            other => RocksError::Simulation(other.to_string()),
        }
    }
}

impl From<rocks_db::DbError> for RocksError {
    fn from(e: rocks_db::DbError) -> Self {
        RocksError::Db(e)
    }
}

impl From<rocks_sql::SqlError> for RocksError {
    fn from(e: rocks_sql::SqlError) -> Self {
        RocksError::Sql(e)
    }
}

impl From<rocks_kickstart::KsError> for RocksError {
    fn from(e: rocks_kickstart::KsError) -> Self {
        RocksError::Kickstart(e)
    }
}

impl From<rocks_dist::DistError> for RocksError {
    fn from(e: rocks_dist::DistError) -> Self {
        RocksError::Dist(e)
    }
}

impl From<rocks_pbs::PbsError> for RocksError {
    fn from(e: rocks_pbs::PbsError) -> Self {
        RocksError::Pbs(e)
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, RocksError>;
