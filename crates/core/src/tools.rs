//! SQL-directed cluster administration: `cluster-fork` and `cluster-kill`
//! (paper §6.4).
//!
//! "By simply adding an SQL interface to the script makes it more
//! powerful as the user can intelligently direct the script to a subset
//! of the nodes. ... Any SQL query, including joins, can be fed to
//! cluster-kill."

use crate::cluster::Cluster;
use crate::Result;
use rocks_rexec::{ExecEnv, ParallelResult, Rexec};

/// Run `command` on the nodes a SQL query selects (first column = node
/// names). With `query = None`, all compute nodes are targeted — the
/// brute-force behaviour the paper's first script had.
pub fn cluster_fork(
    cluster: &mut Cluster,
    query: Option<&str>,
    command: &str,
) -> Result<ParallelResult> {
    let names = match query {
        Some(q) => cluster.db.query_names(q)?,
        None => cluster.compute_node_names()?,
    };
    let agents = cluster.agents_for(&names)?;
    let rexec = Rexec::new(agents);
    Ok(rexec.run(command, &ExecEnv::default()))
}

/// A cluster status summary straight from the database: node counts per
/// membership, per rack — the at-a-glance view administrators keep in a
/// terminal. Rendered the way the `mysql` client would.
pub fn cluster_status(cluster: &mut Cluster) -> Result<String> {
    let by_membership = cluster.db.sql_ref().query_ref(
        "select memberships.name, count(*) from nodes, memberships \
         where nodes.membership = memberships.id \
         group by memberships.name order by memberships.name",
    )?;
    let by_rack = cluster
        .db
        .sql_ref()
        .query_ref("select rack, count(*) from nodes group by rack order by rack")?;
    Ok(format!(
        "nodes by membership:\n{}\nnodes by rack:\n{}",
        by_membership.render_ascii(),
        by_rack.render_ascii()
    ))
}

/// Kill a runaway process on the selected nodes — literally
/// `cluster-kill --query="..." bad-job`.
pub fn cluster_kill(
    cluster: &mut Cluster,
    query: Option<&str>,
    process: &str,
) -> Result<ParallelResult> {
    cluster_fork(cluster, query, &format!("pkill {process}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    fn cluster_with_nodes() -> Cluster {
        let mut cluster = Cluster::install_frontend("00:30:c1:d8:ac:80", 1).unwrap();
        let macs: Vec<String> = (0..2).map(|i| format!("aa:00:00:00:00:{i:02x}")).collect();
        cluster.integrate_rack("Compute", 0, &macs).unwrap();
        let macs: Vec<String> = (0..2).map(|i| format!("aa:00:00:00:01:{i:02x}")).collect();
        cluster.integrate_rack("Compute", 1, &macs).unwrap();
        cluster
    }

    #[test]
    fn status_summarizes_memberships_and_racks() {
        let mut cluster = cluster_with_nodes();
        let status = cluster_status(&mut cluster).unwrap();
        assert!(status.contains("Compute"));
        assert!(status.contains("Frontend"));
        // 2 compute nodes in each of racks 0 and 1, frontend in rack 0.
        assert!(status.contains("| 0    | 3"), "{status}");
        assert!(status.contains("| 1    | 2"), "{status}");
    }

    #[test]
    fn fork_hostname_across_all_compute_nodes() {
        let mut cluster = cluster_with_nodes();
        let result = cluster_fork(&mut cluster, None, "hostname").unwrap();
        assert!(result.all_ok());
        assert_eq!(result.exits.len(), 4);
    }

    #[test]
    fn paper_example_kill_by_rack() {
        // §6.4: "cluster-kill --query=\"select name from nodes where
        // rack=1\" bad-job"
        let mut cluster = cluster_with_nodes();
        for name in cluster.compute_node_names().unwrap() {
            cluster.agent(&name).unwrap().spawn_process("bad-job");
        }
        let result =
            cluster_kill(&mut cluster, Some("select name from nodes where rack=1"), "bad-job")
                .unwrap();
        assert_eq!(result.exits.len(), 2);
        assert!(result.all_ok());
        // Rack 1's processes are dead; rack 0's survive.
        assert!(cluster.agent("compute-1-0").unwrap().process_names().is_empty());
        assert_eq!(cluster.agent("compute-0-0").unwrap().process_names(), vec!["bad-job"]);
    }

    #[test]
    fn paper_example_kill_by_membership_join() {
        // §6.4's multi-table join, verbatim.
        let mut cluster = cluster_with_nodes();
        for name in cluster.compute_node_names().unwrap() {
            cluster.agent(&name).unwrap().spawn_process("bad-job");
        }
        let result = cluster_kill(
            &mut cluster,
            Some(
                "select nodes.name from nodes,memberships where \
                 nodes.membership = memberships.id and \
                 memberships.name = 'Compute'",
            ),
            "bad-job",
        )
        .unwrap();
        assert_eq!(result.exits.len(), 4);
        assert!(result.all_ok());
        for name in cluster.compute_node_names().unwrap() {
            assert!(cluster.agent(&name).unwrap().process_names().is_empty());
        }
    }

    #[test]
    fn query_selecting_frontend_fails_cleanly() {
        // The frontend has no compute agent: the tool reports the
        // unknown node rather than panicking.
        let mut cluster = cluster_with_nodes();
        let err = cluster_fork(
            &mut cluster,
            Some("select name from nodes where name = 'frontend-0'"),
            "hostname",
        );
        assert!(err.is_err());
    }

    #[test]
    fn bad_sql_propagates_error() {
        let mut cluster = cluster_with_nodes();
        assert!(cluster_fork(&mut cluster, Some("selec oops"), "hostname").is_err());
    }
}
