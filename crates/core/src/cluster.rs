//! The [`Cluster`] type: frontend + database + distribution + nodes.

use crate::{Result, RocksError};
use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::{reports, ClusterDb, NodeRecord};
use rocks_dist::{builder, BuildConfig, Distribution};
use rocks_kickstart::{profiles, GeneratedProfile, GenerationService, KickstartGenerator};
use rocks_netsim::{ClusterSim, SimConfig};
use rocks_rexec::NodeAgent;
use rocks_rpm::{synth, Arch, Repository};
use rocks_services::{DhcpService, NfsServer, NisDomain};
use rocks_trace::{Snapshot, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// What one node currently has on disk, from the management system's
/// point of view. Rocks treats this as *soft state*: reinstallation
/// rewrites it wholesale (§1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeImage {
    /// Which distribution installed it.
    pub dist_name: String,
    /// Installed package identities (`name-evr.arch`).
    pub packages: BTreeSet<String>,
    /// Items an experiment or operator drifted away from the known-good
    /// state (file paths or package names).
    pub drifted: BTreeSet<String>,
    /// How many times this node has been (re)installed.
    pub install_count: usize,
}

/// Result of a reinstallation wave.
#[derive(Debug, Clone)]
pub struct ReinstallReport {
    /// Node names reinstalled.
    pub nodes: Vec<String>,
    /// Per-node minutes.
    pub per_node_minutes: Vec<f64>,
    /// Wall-clock minutes for the whole wave (Table I's metric).
    pub total_minutes: f64,
}

/// A complete Rocks cluster.
pub struct Cluster {
    /// The cluster database (§6.4).
    pub db: ClusterDb,
    /// The Kickstart generation service (§6.1): the CGI generator behind
    /// a thread-safe skeleton cache invalidated by database writes and
    /// [`Self::rebuild_distribution`].
    pub kickstart: GenerationService,
    /// The current distribution (§6.2).
    pub distribution: Distribution,
    /// Frontend DHCP service.
    pub dhcp: DhcpService,
    /// NIS account domain.
    pub nis: NisDomain,
    /// NFS home-directory server.
    pub nfs: NfsServer,
    agents: BTreeMap<String, NodeAgent>,
    images: BTreeMap<String, NodeImage>,
    /// Seed for simulated installs (deterministic experiments).
    pub sim_seed: u64,
}

impl Cluster {
    /// Install a frontend: build the Rocks distribution from the stock
    /// vendor release plus community and local software, create the
    /// database, register the frontend, and start services — everything
    /// the Rocks CD does (§7).
    pub fn install_frontend(frontend_mac: &str, sim_seed: u64) -> Result<Cluster> {
        Cluster::install_frontend_traced(frontend_mac, sim_seed, Tracer::disabled())
    }

    /// [`install_frontend`](Self::install_frontend) with telemetry: every
    /// subsystem — distribution builds, Kickstart generation, SQL query
    /// planning, and the install simulator — reports spans and counters
    /// through `tracer`, whose registry becomes the cluster's single
    /// metrics ledger (see [`Self::telemetry`]).
    pub fn install_frontend_traced(
        frontend_mac: &str,
        sim_seed: u64,
        tracer: Tracer,
    ) -> Result<Cluster> {
        let stock = Distribution::stock("redhat-7.2", synth::redhat72(sim_seed));
        let community = synth::community();
        let local = synth::rocks_local();
        let (distribution, _report) = builder::build_traced(
            BuildConfig {
                name: "rocks-2.2.1".into(),
                parent: Some(&stock),
                contrib: vec![&community],
                local: vec![&local],
                ..Default::default()
            },
            &tracer,
        )?;

        let mut db = ClusterDb::new();
        register_frontend(&mut db, frontend_mac, "frontend-0")?;

        let kickstart = GenerationService::with_tracer(
            KickstartGenerator::new(profiles::default_profiles(), "10.1.1.1", "install/rocks-dist"),
            tracer,
        );
        // SQL planner counters land in the same registry as everything
        // else (one ledger per cluster).
        db.bind_stats_registry(kickstart.registry());

        let mut nfs = NfsServer::new();
        nfs.export("/export/home", "10.");

        Ok(Cluster {
            db,
            kickstart,
            distribution,
            dhcp: DhcpService::new(),
            nis: NisDomain::new(),
            nfs,
            agents: BTreeMap::new(),
            images: BTreeMap::new(),
            sim_seed,
        })
    }

    /// Integrate a rack of new nodes: boot each (simulated) machine,
    /// watch the DHCP syslog, and run insert-ethers over the unknown
    /// MACs. Installs each integrated node immediately, as booting a
    /// Rocks CD does. Returns the new database records.
    pub fn integrate_rack(
        &mut self,
        membership: &str,
        rack: i64,
        macs: &[String],
    ) -> Result<Vec<NodeRecord>> {
        // Boot order is integration order (§6.4's sequential procedure).
        for mac in macs {
            self.dhcp.discover(&mut self.db, mac);
        }
        let unknown = self.dhcp.unknown_macs();
        let mut session = InsertEthers::start(&mut self.db, membership, rack)?;
        let mut records = Vec::new();
        for mac in unknown {
            if !macs.contains(&mac) {
                continue; // an earlier rack's leftovers
            }
            if let Some(record) = session.observe(&DhcpRequest { mac })? {
                records.push(record);
            }
        }
        // Bring the new nodes up. Integration boots machines one at a
        // time (the §6.4 sequential cabinet walk), so the installs start
        // staggered rather than as a simultaneous storm.
        let names: Vec<String> = records.iter().map(|r| r.name.clone()).collect();
        if !names.is_empty() {
            let cfg = self.sim_config();
            let mut sim = ClusterSim::new(cfg, names.len());
            sim.set_tracer(self.kickstart.tracer().clone());
            let outcome = sim.try_run_reinstall_staggered(20.0)?;
            self.apply_install_outcome(&names, &outcome)?;
        }
        Ok(records)
    }

    /// The tracer every subsystem reports through (disabled unless the
    /// cluster was built with
    /// [`install_frontend_traced`](Self::install_frontend_traced)).
    pub fn tracer(&self) -> &Tracer {
        self.kickstart.tracer()
    }

    /// One consistent snapshot of every metric the cluster has recorded:
    /// Kickstart cache traffic, SQL planner decisions, distribution
    /// builds, and simulated-install counters all share one registry.
    pub fn telemetry(&self) -> Snapshot {
        self.kickstart.registry().snapshot()
    }

    /// The Kickstart generator inside the service (read-only).
    pub fn generator(&self) -> &KickstartGenerator {
        self.kickstart.generator()
    }

    /// Mutable generator access for site customization (§6.2.3). Editing
    /// the profiles drops every cached skeleton.
    pub fn generator_mut(&mut self) -> &mut KickstartGenerator {
        self.kickstart.generator_mut()
    }

    /// Generate every registered node's Kickstart profile through the
    /// shared service, fanning out over `threads` workers — the mass
    /// pre-generation a frontend performs ahead of a reinstall wave.
    pub fn generate_kickstarts(&self, threads: usize) -> Result<Vec<GeneratedProfile>> {
        Ok(self.kickstart.generate_all(&self.db, Arch::I686, threads)?)
    }

    /// Drive a serving workload against this cluster's *live* kickstart
    /// service and database through the rocks-serve frontend: every
    /// dispatched request produces a real response (a rendered Kickstart
    /// file or SQL report), the skeleton and plan caches see the churn,
    /// and latency/shed metrics land in the cluster's tracer registry.
    pub fn serve_load(
        &self,
        cfg: &rocks_serve::ServeConfig,
        workload: &rocks_serve::Workload,
    ) -> Result<rocks_serve::ServeReport> {
        let mut backend = rocks_serve::RealBackend::new(&self.kickstart, &self.db, Arch::I686)
            .map_err(RocksError::Db)?;
        let (report, _log) = rocks_serve::run_serve(cfg, workload, &mut backend, self.tracer());
        Ok(report)
    }

    /// The package identities a compute node of `arch` installs from the
    /// current distribution.
    pub fn compute_image(&self, arch: Arch) -> BTreeSet<String> {
        let ks = self
            .kickstart
            .appliance_profile(&self.db, "compute", arch)
            .expect("default profiles are closed");
        ks.packages
            .iter()
            .filter_map(|name| self.distribution.repo().best_for(name, arch))
            .map(|p| p.ident())
            .collect()
    }

    /// Names of all compute nodes.
    pub fn compute_node_names(&mut self) -> Result<Vec<String>> {
        Ok(self.db.compute_nodes()?.into_iter().map(|n| n.name).collect())
    }

    /// The installed image of a node, if it has ever installed.
    pub fn image(&self, node: &str) -> Option<&NodeImage> {
        self.images.get(node)
    }

    /// The node's execution agent (tests and tools use this).
    pub fn agent(&self, node: &str) -> Option<&NodeAgent> {
        self.agents.get(node)
    }

    /// All agents for a set of node names, failing on unknowns.
    pub(crate) fn agents_for(&self, names: &[String]) -> Result<Vec<&NodeAgent>> {
        names
            .iter()
            .map(|n| self.agents.get(n).ok_or_else(|| RocksError::NoSuchNode(n.clone())))
            .collect()
    }

    /// Simulation configuration for installs from the *current*
    /// distribution (package set tracks upgrades).
    pub fn sim_config(&self) -> SimConfig {
        let mut cfg = SimConfig::paper_testbed(self.sim_seed);
        cfg.packages = self
            .compute_package_list(Arch::I686)
            .iter()
            .map(rocks_netsim::PackageWork::from_package)
            .collect();
        cfg
    }

    fn compute_package_list(&self, arch: Arch) -> Vec<rocks_rpm::Package> {
        let ks = self
            .kickstart
            .appliance_profile(&self.db, "compute", arch)
            .expect("default profiles are closed");
        ks.packages
            .iter()
            .filter_map(|name| self.distribution.repo().best_for(name, arch))
            .cloned()
            .collect()
    }

    /// `shoot-node`: reinstall the named nodes concurrently (§6.3). The
    /// simulated install produces Table-I-calibrated times; on completion
    /// each node's image is reset to the current distribution, its NIS
    /// binding re-pulled, and its NFS mounts re-established.
    pub fn shoot_nodes(&mut self, names: &[String]) -> Result<ReinstallReport> {
        for name in names {
            // Validate all names before touching anything.
            self.db.node_by_name(name)?;
        }
        let cfg = self.sim_config();
        let mut sim = ClusterSim::new(cfg, names.len());
        sim.set_tracer(self.kickstart.tracer().clone());
        let outcome = sim.try_run_reinstall()?;
        self.apply_install_outcome(names, &outcome)
    }

    /// Fold a simulated install wave into cluster state: fresh images,
    /// fresh agents, rebound services. Shared by [`Self::shoot_nodes`]
    /// and [`Self::shoot_nodes_monitored`].
    fn apply_install_outcome(
        &mut self,
        names: &[String],
        outcome: &rocks_netsim::ReinstallResult,
    ) -> Result<ReinstallReport> {
        let image_packages = self.compute_image(Arch::I686);
        let mut per_node_minutes = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let record = self.db.node_by_name(name)?;
            per_node_minutes.push(outcome.per_node_seconds[i].unwrap_or(f64::NAN) / 60.0);

            let install_count = self.images.get(name).map(|im| im.install_count).unwrap_or(0) + 1;
            self.images.insert(
                name.clone(),
                NodeImage {
                    dist_name: self.distribution.name.clone(),
                    packages: image_packages.clone(),
                    drifted: BTreeSet::new(),
                    install_count,
                },
            );
            // Fresh OS: new agent (old processes die with the old OS).
            self.agents.insert(name.clone(), NodeAgent::start(name));
            // Rebind services.
            self.nis.bind_client(name);
            self.nis.sync_client(name);
            self.nfs.unmount_client(&record.ip.to_string());
            let _ = self.nfs.mount(&record.ip.to_string(), "/export/home");
        }

        Ok(ReinstallReport {
            nodes: names.to_vec(),
            per_node_minutes,
            total_minutes: outcome.total_minutes(),
        })
    }

    /// Reinstall every compute node ("we simply reinstall by sending a
    /// message over the network", §5).
    pub fn reinstall_all(&mut self) -> Result<ReinstallReport> {
        let names = self.compute_node_names()?;
        self.shoot_nodes(&names)
    }

    /// `shoot-node` with eKV monitoring (§6.3): reinstall the named nodes
    /// and stream each node's installer transcript into a per-node
    /// [`rocks_ekv::LocalFeed`] — what the xterm `shoot-node` pops open
    /// would tail. Returns the report plus the feeds, whose backlogs hold
    /// the complete transcripts (timestamped in virtual seconds).
    pub fn shoot_nodes_monitored(
        &mut self,
        names: &[String],
    ) -> Result<(ReinstallReport, Vec<(String, rocks_ekv::LocalFeed)>)> {
        for name in names {
            self.db.node_by_name(name)?;
        }
        let cfg = self.sim_config();
        let mut sim = ClusterSim::new(cfg, names.len());
        sim.set_tracer(self.kickstart.tracer().clone());
        let outcome = sim.try_run_reinstall()?;

        let mut feeds = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let feed = rocks_ekv::LocalFeed::new();
            for line in &sim.node(i).log {
                feed.publish(&format!(
                    "[{:>7.1}s] {}",
                    line.at as f64 / 1e6,
                    // The simulator names nodes positionally; present the
                    // real hostname in the transcript.
                    line.text.replacen(&format!("compute-0-{i}"), name, 1)
                ));
            }
            feeds.push((name.clone(), feed));
        }

        // Apply the same state updates as shoot_nodes.
        let report = self.apply_install_outcome(names, &outcome)?;
        Ok((report, feeds))
    }

    /// Define a new appliance class end-to-end (§6.1's extensibility):
    /// register a membership that kickstarts from `graph_root`, add the
    /// root's node file and edges to the profile set if the caller has
    /// not already, and return the membership id. Nodes integrated under
    /// `membership_name` then install the new appliance.
    pub fn add_appliance(
        &mut self,
        membership_name: &str,
        basename: &str,
        graph_root: &str,
        compute: bool,
    ) -> Result<i64> {
        // Appliance row: next free id in the appliances table.
        let next_appliance = self.db.sql_ref().query_ref("select max(id) from appliances")?.rows[0]
            [0]
        .as_int()
        .unwrap_or(0)
            + 1;
        self.db.execute_raw(&format!(
            "insert into appliances values ({next_appliance}, '{}', '{}')",
            rocks_db::sql_escape(membership_name),
            rocks_db::sql_escape(graph_root),
        ))?;
        let next_membership = self.db.sql_ref().query_ref("select max(id) from memberships")?.rows
            [0][0]
            .as_int()
            .unwrap_or(0)
            + 1;
        self.db.add_membership(&rocks_db::Membership {
            id: next_membership,
            name: membership_name.to_string(),
            appliance: next_appliance,
            compute,
            basename: basename.to_string(),
        })?;
        Ok(next_membership)
    }

    /// Replace a node's failed hardware: rebind the database row to the
    /// new MAC (identity, address, rack and rank survive) and reinstall
    /// the machine — §3.1's component-replacement flow.
    pub fn replace_node(&mut self, name: &str, new_mac: &str) -> Result<ReinstallReport> {
        rocks_db::insert_ethers::replace_node(&mut self.db, name, new_mac)?;
        self.shoot_nodes(std::slice::from_ref(&name.to_string()))
    }

    /// Drift a node away from its installed state (an experiment gone
    /// wrong, a manual edit). `item` is a file path or package name.
    pub fn inject_drift(&mut self, node: &str, item: &str) -> Result<()> {
        match self.images.get_mut(node) {
            Some(image) => {
                image.drifted.insert(item.to_string());
                Ok(())
            }
            None => Err(RocksError::NoSuchNode(node.to_string())),
        }
    }

    /// Nodes whose image differs from the current distribution — stale
    /// distro, missing packages, or injected drift. The question Rocks
    /// makes unnecessary ("What version of software X do I have on node
    /// Y?", §3.2): with reinstall-as-primitive this is always empty after
    /// a wave.
    pub fn inconsistent_nodes(&mut self) -> Result<Vec<String>> {
        let expected = self.compute_image(Arch::I686);
        let dist = self.distribution.name.clone();
        let mut out = Vec::new();
        for name in self.compute_node_names()? {
            let consistent = self.images.get(&name).is_some_and(|image| {
                image.dist_name == dist && image.packages == expected && image.drifted.is_empty()
            });
            if !consistent {
                out.push(name);
            }
        }
        Ok(out)
    }

    /// The generated service configuration files (regenerated from the
    /// database on demand, §6.4).
    pub fn reports(&mut self) -> Result<reports::GeneratedReports> {
        Ok(reports::generate_all(&mut self.db)?)
    }

    /// Rebuild the distribution from new update/contrib repositories,
    /// keeping the XML profiles. The newest version of every package
    /// wins (§6.2.1).
    pub fn rebuild_distribution(&mut self, updates: &[&Repository]) -> Result<()> {
        let parent = self.distribution.clone();
        let (dist, _report) = builder::build_traced(
            BuildConfig {
                name: parent.name.clone(),
                parent: Some(&parent),
                updates: updates.to_vec(),
                ..Default::default()
            },
            self.kickstart.tracer(),
        )?;
        self.distribution = dist;
        // New RPMs on disk: cached Kickstart skeletons may list stale
        // package sets, so flush them (the rocks-dist invalidation hook).
        self.kickstart.notify_dist_rebuilt();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn macs(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("00:50:8b:e0:44:{i:02x}")).collect()
    }

    fn small_cluster(n: usize) -> Cluster {
        let mut cluster = Cluster::install_frontend("00:30:c1:d8:ac:80", 1).unwrap();
        cluster.integrate_rack("Compute", 0, &macs(n)).unwrap();
        cluster
    }

    #[test]
    fn frontend_install_builds_distribution_and_db() {
        let cluster = Cluster::install_frontend("00:30:c1:d8:ac:80", 1).unwrap();
        assert_eq!(cluster.distribution.name, "rocks-2.2.1");
        assert!(cluster.distribution.repo().get("mpich", Arch::I386).is_some());
        let nodes = cluster.db.nodes().unwrap();
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].name, "frontend-0");
    }

    #[test]
    fn integrate_rack_names_installs_and_registers() {
        let mut cluster = small_cluster(3);
        let names = cluster.compute_node_names().unwrap();
        assert_eq!(names, vec!["compute-0-0", "compute-0-1", "compute-0-2"]);
        for name in &names {
            let image = cluster.image(name).unwrap();
            assert_eq!(image.dist_name, "rocks-2.2.1");
            assert_eq!(image.install_count, 1);
            assert!(!image.packages.is_empty());
            assert!(cluster.agent(name).is_some());
        }
        // Reports include the new nodes.
        let reports = cluster.reports().unwrap();
        assert!(reports.pbs_nodes.contains("compute-0-2"));
        // NFS mounts re-established.
        assert_eq!(cluster.nfs.mount_count(), 3);
    }

    #[test]
    fn reinstall_clears_drift_and_bumps_count() {
        let mut cluster = small_cluster(2);
        cluster.inject_drift("compute-0-0", "/etc/passwd").unwrap();
        assert_eq!(cluster.inconsistent_nodes().unwrap(), vec!["compute-0-0"]);
        let report = cluster.shoot_nodes(&["compute-0-0".into()]).unwrap();
        assert!(report.total_minutes > 5.0 && report.total_minutes < 15.0);
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
        assert_eq!(cluster.image("compute-0-0").unwrap().install_count, 2);
        assert_eq!(cluster.image("compute-0-1").unwrap().install_count, 1);
    }

    #[test]
    fn reinstall_all_reaches_every_compute_node() {
        let mut cluster = small_cluster(4);
        for name in cluster.compute_node_names().unwrap() {
            cluster.inject_drift(&name, "/etc/motd").unwrap();
        }
        let report = cluster.reinstall_all().unwrap();
        assert_eq!(report.nodes.len(), 4);
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
    }

    #[test]
    fn traced_cluster_collects_one_ledger_across_subsystems() {
        let mut cluster =
            Cluster::install_frontend_traced("00:30:c1:d8:ac:80", 1, Tracer::ring_sim(1 << 14))
                .unwrap();
        cluster.integrate_rack("Compute", 0, &macs(3)).unwrap();
        cluster.reinstall_all().unwrap();
        let snap = cluster.telemetry();
        // Every subsystem reported into the same registry.
        assert_eq!(snap.counter("dist.builds"), 1);
        assert!(snap.counter("kickstart.requests") > 0);
        assert_eq!(
            snap.counter("kickstart.requests"),
            snap.counter("kickstart.cache.hits") + snap.counter("kickstart.cache.misses"),
        );
        assert!(snap.counter("sql.lookup_eq") > 0);
        assert!(snap.counter("netsim.installs.completed") >= 6, "rack install + reinstall_all");
        assert!(snap.counter("netsim.flow.completions") > 0);
        // The generation service's Stats are the same counters, not a
        // parallel ledger.
        assert_eq!(snap.counter("kickstart.cache.hits"), cluster.kickstart.stats().hits());
    }

    #[test]
    fn unknown_node_errors() {
        let mut cluster = small_cluster(1);
        assert!(matches!(cluster.shoot_nodes(&["compute-9-9".into()]), Err(RocksError::Db(_))));
        assert!(matches!(cluster.inject_drift("ghost", "/x"), Err(RocksError::NoSuchNode(_))));
    }

    #[test]
    fn rebuild_with_update_makes_nodes_inconsistent_until_reinstall() {
        let mut cluster = small_cluster(2);
        let mut updates = Repository::new("updates");
        updates.insert(
            rocks_rpm::Package::builder("glibc", "2.2.4-24")
                .arch(Arch::I686)
                .size(14 << 20)
                .build(),
        );
        cluster.rebuild_distribution(&[&updates]).unwrap();
        // Old images are now stale.
        assert_eq!(cluster.inconsistent_nodes().unwrap().len(), 2);
        cluster.reinstall_all().unwrap();
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
        // And the new image carries the updated glibc.
        let image = cluster.image("compute-0-0").unwrap();
        assert!(image.packages.iter().any(|p| p.contains("glibc-2.2.4-24")));
    }

    #[test]
    fn monitored_shoot_produces_transcripts() {
        let mut cluster = small_cluster(2);
        let names: Vec<String> = vec!["compute-0-0".into(), "compute-0-1".into()];
        let (report, feeds) = cluster.shoot_nodes_monitored(&names).unwrap();
        assert_eq!(report.nodes.len(), 2);
        assert_eq!(feeds.len(), 2);
        for (name, feed) in &feeds {
            let backlog = feed.backlog();
            assert!(backlog.iter().any(|l| l.contains("requesting kickstart")), "{name}");
            assert!(
                backlog.iter().any(|l| l.contains(&format!("{name}: up"))),
                "{name}: {backlog:?}"
            );
            // Late subscribers still see the whole install.
            let rx = feed.subscribe();
            assert_eq!(rx.try_iter().count(), backlog.len());
        }
        // Monitored shoot updates state exactly like the plain one.
        assert_eq!(cluster.image("compute-0-0").unwrap().install_count, 2);
    }

    #[test]
    fn kickstart_served_for_integrated_node() {
        let cluster = small_cluster(1);
        let record = cluster.db.node_by_name("compute-0-0").unwrap();
        let ks = cluster
            .kickstart
            .generate_for_request(&cluster.db, &record.ip.to_string(), Arch::I686)
            .unwrap();
        assert!(ks.render().contains("--hostname compute-0-0"));
    }

    #[test]
    fn mass_generation_matches_per_request_cgi() {
        let cluster = small_cluster(4);
        let profiles = cluster.generate_kickstarts(4).unwrap();
        assert_eq!(profiles.len(), 5); // 4 computes + frontend
        for profile in &profiles {
            let cold = cluster
                .generator()
                .generate_for_request(&cluster.db, &profile.ip, Arch::I686)
                .unwrap();
            assert_eq!(profile.kickstart.render(), cold.render(), "{}", profile.node);
        }
    }

    #[test]
    fn dist_rebuild_flushes_kickstart_cache() {
        let mut cluster = small_cluster(1);
        cluster.generate_kickstarts(1).unwrap();
        let misses_before = cluster.kickstart.stats().misses();
        let mut updates = Repository::new("updates");
        updates.insert(
            rocks_rpm::Package::builder("glibc", "2.2.4-24")
                .arch(Arch::I686)
                .size(14 << 20)
                .build(),
        );
        cluster.rebuild_distribution(&[&updates]).unwrap();
        cluster.generate_kickstarts(1).unwrap();
        assert!(
            cluster.kickstart.stats().misses() > misses_before,
            "stale skeletons must be rebuilt after a dist rebuild"
        );
    }

    #[test]
    fn custom_appliance_end_to_end() {
        // §6.1/§6.2.3: a storage appliance class built from the existing
        // nfs-server graph root.
        let mut cluster = small_cluster(1);
        cluster.add_appliance("Storage", "storage", "nfs-server", false).unwrap();
        let records =
            cluster.integrate_rack("Storage", 2, &["00:50:8b:a5:4d:b1".to_string()]).unwrap();
        assert_eq!(records[0].name, "storage-2-0");

        // The CGI flow resolves the new appliance to its graph root.
        let ip = records[0].ip.to_string();
        let ks = cluster.kickstart.generate_for_request(&cluster.db, &ip, Arch::I686).unwrap();
        let text = ks.render();
        assert!(text.contains("nfs appliance"), "storage node got wrong appliance:\n{text}");
        assert!(text.contains("exportfs -a"));
        // Storage nodes are not compute: PBS never sees them.
        let reports = cluster.reports().unwrap();
        assert!(!reports.pbs_nodes.contains("storage-2-0"));
        assert!(reports.hosts.contains("storage-2-0"));
    }

    #[test]
    fn replace_node_rebinds_and_reinstalls() {
        let mut cluster = small_cluster(2);
        let before = cluster.db.node_by_name("compute-0-1").unwrap();
        let report = cluster.replace_node("compute-0-1", "00:50:8b:ff:ff:01").unwrap();
        assert_eq!(report.nodes, vec!["compute-0-1".to_string()]);
        let after = cluster.db.node_by_name("compute-0-1").unwrap();
        assert_eq!(after.ip, before.ip);
        assert_eq!(after.mac, "00:50:8b:ff:ff:01");
        assert_eq!(cluster.image("compute-0-1").unwrap().install_count, 2);
        assert!(cluster.inconsistent_nodes().unwrap().is_empty());
    }

    #[test]
    fn rebooted_mac_is_not_reintegrated() {
        let mut cluster = small_cluster(2);
        let before = cluster.db.nodes().unwrap().len();
        // The same rack boots again (e.g. power failure): no new rows.
        let records = cluster.integrate_rack("Compute", 0, &macs(2)).unwrap();
        assert!(records.is_empty());
        assert_eq!(cluster.db.nodes().unwrap().len(), before);
    }
}
