//! Property tests for the rpmvercmp ordering: it must be a total order
//! (antisymmetric, transitive on sampled triples) and agree with numeric
//! comparison on plain integers, or newest-wins resolution in rocks-dist
//! would mis-sort vendor updates.

use proptest::prelude::*;
use rocks_rpm::{rpmvercmp, Evr};
use std::cmp::Ordering;

/// Version-like strings: digit/alpha segments joined by separators, with
/// occasional tildes and carets.
fn version_strategy() -> impl Strategy<Value = String> {
    proptest::collection::vec(
        prop_oneof![
            "[0-9]{1,4}".prop_map(|s| s),
            "[a-z]{1,4}".prop_map(|s| s),
            Just(".".to_string()),
            Just("-".to_string()),
            Just("_".to_string()),
            Just("~".to_string()),
            Just("^".to_string()),
        ],
        1..8,
    )
    .prop_map(|parts| parts.concat())
}

proptest! {
    #[test]
    fn antisymmetric(a in version_strategy(), b in version_strategy()) {
        prop_assert_eq!(rpmvercmp(&a, &b), rpmvercmp(&b, &a).reverse());
    }

    #[test]
    fn reflexive(a in version_strategy()) {
        prop_assert_eq!(rpmvercmp(&a, &a), Ordering::Equal);
    }

    #[test]
    fn transitive_on_sampled_triples(
        a in version_strategy(),
        b in version_strategy(),
        c in version_strategy(),
    ) {
        let ab = rpmvercmp(&a, &b);
        let bc = rpmvercmp(&b, &c);
        if ab == bc && ab != Ordering::Equal {
            prop_assert_eq!(rpmvercmp(&a, &c), ab,
                "transitivity violated: {:?} {:?} {:?}", a, b, c);
        }
        if ab == Ordering::Equal {
            prop_assert_eq!(rpmvercmp(&b, &c), rpmvercmp(&a, &c),
                "equal substitution violated: {:?} {:?} {:?}", a, b, c);
        }
    }

    #[test]
    fn agrees_with_integers(a in 0u64..100_000, b in 0u64..100_000) {
        prop_assert_eq!(rpmvercmp(&a.to_string(), &b.to_string()), a.cmp(&b));
    }

    #[test]
    fn dotted_numeric_agrees_with_tuple_order(
        a in proptest::collection::vec(0u32..999, 1..4),
        b in proptest::collection::vec(0u32..999, 1..4),
    ) {
        let sa = a.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(".");
        let sb = b.iter().map(|n| n.to_string()).collect::<Vec<_>>().join(".");
        // Tuple comparison where a strict prefix is older — exactly RPM's rule.
        let expected = {
            let mut ord = Ordering::Equal;
            for (x, y) in a.iter().zip(&b) {
                ord = x.cmp(y);
                if ord != Ordering::Equal { break; }
            }
            if ord == Ordering::Equal { a.len().cmp(&b.len()) } else { ord }
        };
        prop_assert_eq!(rpmvercmp(&sa, &sb), expected, "{} vs {}", sa, sb);
    }

    #[test]
    fn evr_parse_display_round_trip(
        epoch in 0u32..5,
        v in "[0-9]{1,3}(\\.[0-9]{1,3}){0,2}",
        r in "[0-9]{1,3}",
    ) {
        let evr = Evr::new(epoch, v, r);
        let parsed = Evr::parse(&evr.to_string()).unwrap();
        prop_assert_eq!(parsed, evr);
    }

    #[test]
    fn epoch_always_dominates(
        e1 in 0u32..3, e2 in 0u32..3,
        v1 in version_strategy(), v2 in version_strategy(),
    ) {
        let a = Evr::new(e1, v1, "1");
        let b = Evr::new(e2, v2, "1");
        if e1 != e2 {
            prop_assert_eq!(a.cmp(&b), e1.cmp(&e2));
        }
    }

    #[test]
    fn rpmvercmp_never_panics(a in ".{0,32}", b in ".{0,32}") {
        let _ = rpmvercmp(&a, &b);
    }
}
