//! The [`Package`] type: everything the Rocks management layer knows about
//! one RPM.

use crate::evr::Evr;
use std::fmt;

/// Processor architectures appearing in the paper's Meteor cluster
/// (§3.1 and §6.1: IA-32, Athlon-optimized builds, IA-64, plus `noarch`
/// and `src` for source RPMs such as the Myrinet driver).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Arch {
    /// Generic IA-32 builds (`i386`).
    I386,
    /// Pentium-optimized IA-32 (`i686`).
    I686,
    /// AMD Athlon builds.
    Athlon,
    /// Itanium.
    Ia64,
    /// Architecture-independent (configuration, docs, scripts).
    Noarch,
    /// Source RPM — compiled on the node, like the Myrinet driver (§6.3).
    Src,
}

impl Arch {
    /// Whether a package of architecture `self` can install on a node of
    /// architecture `node`. `Noarch` and `Src` install anywhere; `I386`
    /// runs on any IA-32 flavour.
    pub fn installs_on(self, node: Arch) -> bool {
        match self {
            Arch::Noarch | Arch::Src => true,
            Arch::I386 => matches!(node, Arch::I386 | Arch::I686 | Arch::Athlon),
            Arch::I686 => matches!(node, Arch::I686 | Arch::Athlon),
            a => a == node,
        }
    }

    /// The conventional directory / filename component.
    pub fn as_str(self) -> &'static str {
        match self {
            Arch::I386 => "i386",
            Arch::I686 => "i686",
            Arch::Athlon => "athlon",
            Arch::Ia64 => "ia64",
            Arch::Noarch => "noarch",
            Arch::Src => "src",
        }
    }

    /// Parse the conventional name.
    pub fn parse(s: &str) -> Option<Arch> {
        Some(match s {
            "i386" => Arch::I386,
            "i686" => Arch::I686,
            "athlon" => Arch::Athlon,
            "ia64" => Arch::Ia64,
            "noarch" => Arch::Noarch,
            "src" => Arch::Src,
            _ => return None,
        })
    }
}

impl fmt::Display for Arch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Rough functional classification, used by the synthetic distribution
/// generator and the consistency checker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PackageKind {
    /// Core OS: glibc, fileutils, dev, ...
    Base,
    /// Kernel image or kernel module package.
    Kernel,
    /// A network service (dhcp, nfs-utils, ypserv, ...).
    Service,
    /// Development toolchain (gcc, make, ...).
    Devel,
    /// Libraries (atlas, mpich, pvm, ...).
    Library,
    /// Cluster-management packages added by Rocks itself.
    Rocks,
}

/// One RPM as seen by the distribution and installation tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Package {
    /// Package name, e.g. `dev` (Figure 7 shows `dev-3.0.6-5` installing).
    pub name: String,
    /// Epoch–version–release.
    pub evr: Evr,
    /// Build architecture.
    pub arch: Arch,
    /// Compressed payload size in bytes — what HTTP transfers (the paper's
    /// 225 MB per node, §6.3).
    pub size_bytes: u64,
    /// Installed size in bytes (Figure 7 shows 386 MB total on disk).
    pub installed_bytes: u64,
    /// Functional classification.
    pub kind: PackageKind,
    /// Capabilities this package provides (its own name is implicit).
    pub provides: Vec<String>,
    /// Capabilities required at install time.
    pub requires: Vec<String>,
    /// Package names this build replaces (RPM `Obsoletes:`) — how vendors
    /// rename packages across releases without stranding the old name.
    pub obsoletes: Vec<String>,
    /// Representative paths owned by the package, for the consistency
    /// checker and for file-level drift experiments.
    pub files: Vec<String>,
}

impl Package {
    /// Start building a package.
    pub fn builder(name: impl Into<String>, evr: &str) -> PackageBuilder {
        PackageBuilder::new(name, evr)
    }

    /// Canonical file name: `name-version-release.arch.rpm`.
    pub fn filename(&self) -> String {
        format!("{}-{}-{}.{}.rpm", self.name, self.evr.version, self.evr.release, self.arch)
    }

    /// NEVRA-style identity used in logs and reports.
    pub fn ident(&self) -> String {
        format!("{}-{}.{}", self.name, self.evr, self.arch)
    }

    /// Key identifying the "slot" this package occupies in a repository:
    /// two packages with the same key are different versions of one thing.
    pub fn key(&self) -> (String, Arch) {
        (self.name.clone(), self.arch)
    }

    /// Whether this package satisfies a required capability.
    pub fn provides_cap(&self, cap: &str) -> bool {
        self.name == cap || self.provides.iter().any(|p| p == cap)
    }
}

/// Builder for [`Package`], keeping construction sites readable.
#[derive(Debug, Clone)]
pub struct PackageBuilder {
    name: String,
    evr: Evr,
    arch: Arch,
    size_bytes: u64,
    installed_bytes: Option<u64>,
    kind: PackageKind,
    provides: Vec<String>,
    requires: Vec<String>,
    obsoletes: Vec<String>,
    files: Vec<String>,
}

impl PackageBuilder {
    /// Create a builder; `evr` is parsed as `[epoch:]version[-release]`
    /// and panics on malformed input (construction sites are static).
    pub fn new(name: impl Into<String>, evr: &str) -> Self {
        PackageBuilder {
            name: name.into(),
            evr: Evr::parse(evr).unwrap_or_else(|| panic!("invalid EVR literal: {evr:?}")),
            arch: Arch::I386,
            size_bytes: 1 << 20,
            installed_bytes: None,
            kind: PackageKind::Base,
            provides: Vec::new(),
            requires: Vec::new(),
            obsoletes: Vec::new(),
            files: Vec::new(),
        }
    }

    /// Set the architecture (default `i386`).
    pub fn arch(mut self, arch: Arch) -> Self {
        self.arch = arch;
        self
    }

    /// Set the compressed (transfer) size in bytes (default 1 MiB).
    pub fn size(mut self, bytes: u64) -> Self {
        self.size_bytes = bytes;
        self
    }

    /// Set the installed size (default: 1.7× transfer size, matching the
    /// paper's 225 MB transferred / 386 MB installed ratio).
    pub fn installed(mut self, bytes: u64) -> Self {
        self.installed_bytes = Some(bytes);
        self
    }

    /// Set the functional classification (default `Base`).
    pub fn kind(mut self, kind: PackageKind) -> Self {
        self.kind = kind;
        self
    }

    /// Add a provided capability.
    pub fn provides(mut self, cap: impl Into<String>) -> Self {
        self.provides.push(cap.into());
        self
    }

    /// Add a required capability.
    pub fn requires(mut self, cap: impl Into<String>) -> Self {
        self.requires.push(cap.into());
        self
    }

    /// Add an obsoleted package name.
    pub fn obsoletes(mut self, name: impl Into<String>) -> Self {
        self.obsoletes.push(name.into());
        self
    }

    /// Add an owned file path.
    pub fn file(mut self, path: impl Into<String>) -> Self {
        self.files.push(path.into());
        self
    }

    /// Finish building.
    pub fn build(self) -> Package {
        let installed = self.installed_bytes.unwrap_or(self.size_bytes * 17 / 10);
        Package {
            name: self.name,
            evr: self.evr,
            arch: self.arch,
            size_bytes: self.size_bytes,
            installed_bytes: installed,
            kind: self.kind,
            provides: self.provides,
            requires: self.requires,
            obsoletes: self.obsoletes,
            files: self.files,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filename_matches_rpm_convention() {
        let p = Package::builder("dev", "3.0.6-5").arch(Arch::I386).build();
        assert_eq!(p.filename(), "dev-3.0.6-5.i386.rpm");
        assert_eq!(p.ident(), "dev-3.0.6-5.i386");
    }

    #[test]
    fn epoch_shows_in_ident_not_filename() {
        let p = Package::builder("openssl", "1:0.9.6-3").build();
        assert_eq!(p.filename(), "openssl-0.9.6-3.i386.rpm");
        assert_eq!(p.ident(), "openssl-1:0.9.6-3.i386");
    }

    #[test]
    fn arch_compatibility_matrix() {
        assert!(Arch::Noarch.installs_on(Arch::Ia64));
        assert!(Arch::I386.installs_on(Arch::Athlon));
        assert!(Arch::I686.installs_on(Arch::I686));
        assert!(!Arch::I686.installs_on(Arch::I386));
        assert!(!Arch::Ia64.installs_on(Arch::I386));
        assert!(!Arch::Athlon.installs_on(Arch::I686));
        assert!(Arch::Src.installs_on(Arch::Ia64));
    }

    #[test]
    fn arch_name_round_trip() {
        for a in [Arch::I386, Arch::I686, Arch::Athlon, Arch::Ia64, Arch::Noarch, Arch::Src] {
            assert_eq!(Arch::parse(a.as_str()), Some(a));
        }
        assert_eq!(Arch::parse("sparc"), None);
    }

    #[test]
    fn default_installed_size_ratio() {
        // 225 MB transferred → ~386 MB installed (Figure 7): ratio 1.7.
        let p = Package::builder("x", "1-1").size(1000).build();
        assert_eq!(p.installed_bytes, 1700);
    }

    #[test]
    fn provides_includes_own_name() {
        let p = Package::builder("mpich", "1.2.1-1").provides("mpi").build();
        assert!(p.provides_cap("mpich"));
        assert!(p.provides_cap("mpi"));
        assert!(!p.provides_cap("lam"));
    }

    #[test]
    #[should_panic(expected = "invalid EVR literal")]
    fn malformed_evr_panics_at_build_site() {
        let _ = Package::builder("x", "");
    }
}
