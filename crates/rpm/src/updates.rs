//! Synthetic vendor update streams.
//!
//! §6.2.1 measures the maintenance burden Rocks automates away: "in less
//! than a year, Red Hat 6.2 for Intel had 124 updated packages. There were
//! also 74 security vulnerabilities reported ... On average, this amounts
//! to one update every three days." [`UpdateStream`] generates a dated
//! sequence with exactly that shape so the update-tracking experiment
//! (`reproduce updates`) can measure staleness with and without automatic
//! mirroring.

use crate::evr::Evr;
use crate::package::Package;
use crate::repo::Repository;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Why an update was issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateKind {
    /// Fixes a published vulnerability; staleness here is a security
    /// exposure (the paper's motivating case).
    Security,
    /// Ordinary bug fix or enhancement.
    Bugfix,
}

/// One vendor update: a new build of an existing package, issued on a day.
#[derive(Debug, Clone)]
pub struct Update {
    /// Day offset from the start of the observation window.
    pub day: u32,
    /// The updated package (same name/arch, bumped release).
    pub package: Package,
    /// Security or bugfix.
    pub kind: UpdateKind,
}

/// A reproducible, dated stream of updates against a base repository.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    updates: Vec<Update>,
}

/// Parameters matching the paper's Red Hat 6.2 measurement.
pub const PAPER_WINDOW_DAYS: u32 = 365;
/// "124 updated packages" in under a year.
pub const PAPER_UPDATE_COUNT: usize = 124;
/// "74 security vulnerabilities ... for which several of the updated
/// packages were targeted" — we mark a matching fraction of updates as
/// security-driven.
pub const PAPER_SECURITY_COUNT: usize = 74;

impl UpdateStream {
    /// Generate `count` updates over `window_days` against packages of
    /// `base`, with `security_count` of them flagged as security fixes.
    /// Deterministic for a given seed. Updates are sorted by day, and a
    /// package may be updated more than once (later updates bump the
    /// release further), exactly as vendor streams behave.
    pub fn generate(
        base: &Repository,
        window_days: u32,
        count: usize,
        security_count: usize,
        seed: u64,
    ) -> UpdateStream {
        let mut rng = StdRng::seed_from_u64(seed);
        let candidates: Vec<&Package> = base.iter().collect();
        assert!(!candidates.is_empty(), "cannot generate updates for an empty repository");

        // Pick issue days: roughly uniform over the window ("one every
        // three days" emerges from count / window).
        let mut days: Vec<u32> = (0..count).map(|_| rng.gen_range(0..window_days)).collect();
        days.sort_unstable();

        // Assign which updates are security fixes.
        let mut is_security = vec![false; count];
        for slot in is_security.iter_mut().take(security_count.min(count)) {
            *slot = true;
        }
        is_security.shuffle(&mut rng);

        // Track per-package release bumps so repeat updates keep increasing.
        let mut bumps: std::collections::HashMap<(String, crate::package::Arch), u32> =
            std::collections::HashMap::new();

        let updates = days
            .into_iter()
            .zip(is_security)
            .map(|(day, security)| {
                let target = candidates[rng.gen_range(0..candidates.len())];
                let bump = bumps.entry(target.key()).or_insert(0);
                *bump += 1;
                let mut pkg = target.clone();
                pkg.evr = bump_release(&pkg.evr, *bump);
                Update {
                    day,
                    package: pkg,
                    kind: if security { UpdateKind::Security } else { UpdateKind::Bugfix },
                }
            })
            .collect();
        UpdateStream { updates }
    }

    /// Generate the exact stream the paper measured for Red Hat 6.2.
    pub fn paper_stream(base: &Repository, seed: u64) -> UpdateStream {
        Self::generate(base, PAPER_WINDOW_DAYS, PAPER_UPDATE_COUNT, PAPER_SECURITY_COUNT, seed)
    }

    /// All updates, ordered by day.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Updates issued on or before `day`.
    pub fn up_to_day(&self, day: u32) -> impl Iterator<Item = &Update> {
        self.updates.iter().take_while(move |u| u.day <= day)
    }

    /// Number of security updates in the stream.
    pub fn security_count(&self) -> usize {
        self.updates.iter().filter(|u| u.kind == UpdateKind::Security).count()
    }

    /// Mean days between consecutive updates (the paper's "one update
    /// every three days" statistic).
    pub fn mean_interval_days(&self) -> f64 {
        if self.updates.len() < 2 {
            return 0.0;
        }
        let first = self.updates.first().unwrap().day as f64;
        let last = self.updates.last().unwrap().day as f64;
        (last - first) / (self.updates.len() - 1) as f64
    }

    /// Fold updates issued on or before `day` into a repository the way a
    /// vendor "updates" directory would be mirrored. Returns the count of
    /// packages whose version actually advanced.
    pub fn apply_through(&self, repo: &mut Repository, day: u32) -> usize {
        let mut changed = 0;
        for update in self.up_to_day(day) {
            if repo.insert(update.package.clone()) {
                changed += 1;
            }
        }
        changed
    }
}

/// Bump a release string by appending/incrementing a vendor suffix:
/// `5` → `5.rocks.1`-style monotonic growth would be wrong for vendor
/// updates, so instead increment the *leading numeric component*:
/// `19.3` with bump 2 → `21.3`. Guaranteed to produce a strictly newer EVR.
fn bump_release(evr: &Evr, bump: u32) -> Evr {
    let lead: String = evr.release.chars().take_while(|c| c.is_ascii_digit()).collect();
    let rest = &evr.release[lead.len()..];
    let lead_num: u64 = lead.parse().unwrap_or(0);
    Evr::new(evr.epoch, evr.version.clone(), format!("{}{}", lead_num + bump as u64, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth;

    fn base() -> Repository {
        synth::redhat72(1)
    }

    #[test]
    fn paper_stream_has_paper_counts() {
        let stream = UpdateStream::paper_stream(&base(), 99);
        assert_eq!(stream.updates().len(), PAPER_UPDATE_COUNT);
        assert_eq!(stream.security_count(), PAPER_SECURITY_COUNT);
    }

    #[test]
    fn mean_interval_is_about_three_days() {
        let stream = UpdateStream::paper_stream(&base(), 99);
        let mean = stream.mean_interval_days();
        assert!((2.0..4.0).contains(&mean), "mean interval {mean}");
    }

    #[test]
    fn updates_are_date_ordered() {
        let stream = UpdateStream::paper_stream(&base(), 3);
        let days: Vec<u32> = stream.updates().iter().map(|u| u.day).collect();
        let mut sorted = days.clone();
        sorted.sort_unstable();
        assert_eq!(days, sorted);
    }

    #[test]
    fn every_update_is_strictly_newer_than_base() {
        let repo = base();
        let stream = UpdateStream::paper_stream(&repo, 99);
        for update in stream.updates() {
            let current = repo.get(&update.package.name, update.package.arch).unwrap();
            assert!(
                update.package.evr > current.evr,
                "{} update {} not newer than {}",
                update.package.name,
                update.package.evr,
                current.evr
            );
        }
    }

    #[test]
    fn repeat_updates_to_one_package_keep_increasing() {
        let repo = base();
        let stream = UpdateStream::generate(&repo, 365, 400, 0, 5);
        let mut seen: std::collections::HashMap<String, Evr> = Default::default();
        for update in stream.updates() {
            if let Some(prev) = seen.get(&update.package.name) {
                assert!(update.package.evr > *prev, "{}", update.package.name);
            }
            seen.insert(update.package.name.clone(), update.package.evr.clone());
        }
    }

    #[test]
    fn apply_through_respects_days() {
        let mut repo = base();
        let stream = UpdateStream::paper_stream(&repo, 99);
        let early = stream.up_to_day(30).count();
        let applied = stream.apply_through(&mut repo, 30);
        assert!(applied <= early);
        // Applying the rest brings the total to all distinct final versions.
        let more = stream.apply_through(&mut repo, 365);
        assert!(more > 0);
    }

    #[test]
    fn stream_is_deterministic() {
        let repo = base();
        let a = UpdateStream::paper_stream(&repo, 7);
        let b = UpdateStream::paper_stream(&repo, 7);
        let idents = |s: &UpdateStream| -> Vec<String> {
            s.updates().iter().map(|u| format!("{}@{}", u.package.ident(), u.day)).collect()
        };
        assert_eq!(idents(&a), idents(&b));
    }

    #[test]
    fn bump_release_produces_newer_evr() {
        let evr = Evr::parse("2.2.4-19.3").unwrap();
        let bumped = bump_release(&evr, 1);
        assert_eq!(bumped.release, "20.3");
        assert!(bumped > evr);
        let no_digits = Evr::parse("1.0-beta").unwrap();
        let bumped = bump_release(&no_digits, 2);
        assert!(bumped > no_digits);
    }
}
