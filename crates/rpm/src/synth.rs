//! Synthetic Red Hat–like distributions, calibrated to the magnitudes the
//! paper reports.
//!
//! We have no Red Hat 7.2 media (and the management layer never looks
//! inside a payload), so this module fabricates package *metadata* with the
//! right shape:
//!
//! * a compute-node install of **162 packages** transferring **~225 MB**
//!   and occupying **~386 MB** installed (Figure 7 and §6.3),
//! * a full distribution several times larger than any single node's
//!   install set (Red Hat 7.2 shipped on multiple CDs),
//! * named packages that actually appear in the paper (`dhcp`, `dev`,
//!   MPICH, PVM, ATLAS, PBS, Maui, REXEC, the eKV-patched `anaconda`,
//!   the Myrinet `gm` source RPM, per-arch kernels).

use crate::package::{Arch, Package, PackageKind};
use crate::repo::Repository;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of packages a compute node installs (Figure 7: "Total: 162").
pub const COMPUTE_PACKAGE_COUNT: usize = 162;
/// Bytes a compute node transfers during reinstallation (§6.3: "approximately 225 MB").
pub const COMPUTE_TRANSFER_BYTES: u64 = 225 * 1024 * 1024;
/// Bytes a compute node's install occupies (Figure 7: "386M").
pub const COMPUTE_INSTALLED_BYTES: u64 = 386 * 1024 * 1024;

/// Named, real packages that the paper mentions and that the rest of the
/// reproduction refers to by name. `(name, evr, arch, kind, megabytes)`.
const NAMED_BASE: &[(&str, &str, Arch, PackageKind, f64)] = &[
    ("glibc", "2.2.4-19.3", Arch::I686, PackageKind::Base, 14.0),
    ("glibc-common", "2.2.4-19.3", Arch::I386, PackageKind::Base, 10.0),
    ("dev", "3.0.6-5", Arch::I386, PackageKind::Base, 0.34), // Figure 7's on-screen package
    ("fileutils", "4.1-10", Arch::I386, PackageKind::Base, 1.1),
    ("bash", "2.05-8", Arch::I386, PackageKind::Base, 0.8),
    ("openssh-server", "2.9p2-12", Arch::I386, PackageKind::Service, 0.3),
    ("dhcp", "2.0pl5-1", Arch::I386, PackageKind::Service, 0.2), // Figure 2's package
    ("bind", "9.1.3-4", Arch::I386, PackageKind::Service, 1.8),
    ("nfs-utils", "0.3.1-14", Arch::I386, PackageKind::Service, 0.3),
    ("ypserv", "1.3.12-2", Arch::I386, PackageKind::Service, 0.2),
    ("ypbind", "1.8-1", Arch::I386, PackageKind::Service, 0.1),
    ("portmap", "4.0-38", Arch::I386, PackageKind::Service, 0.1),
    ("xinetd", "2.3.3-1", Arch::I386, PackageKind::Service, 0.2),
    ("httpd", "1.3.20-16", Arch::I386, PackageKind::Service, 1.2),
    ("mysql-server", "3.23.41-1", Arch::I386, PackageKind::Service, 2.5),
    ("gcc", "2.96-98", Arch::I386, PackageKind::Devel, 8.5),
    ("gcc-g77", "2.96-98", Arch::I386, PackageKind::Devel, 2.8),
    ("binutils", "2.11.90.0.8-12", Arch::I386, PackageKind::Devel, 2.4),
    ("make", "3.79.1-8", Arch::I386, PackageKind::Devel, 0.4),
    ("cpp", "2.96-98", Arch::I386, PackageKind::Devel, 1.1),
    ("python", "1.5.2-38", Arch::I386, PackageKind::Devel, 2.6),
    ("perl", "5.6.1-26", Arch::I386, PackageKind::Devel, 8.1),
];

/// Kernel packages — one binary per IA-32 flavour plus IA-64, as in the
/// Meteor cluster (§3.1: "two different CPU architectures").
const KERNELS: &[(&str, Arch)] = &[
    ("kernel", Arch::I686),
    ("kernel", Arch::Athlon),
    ("kernel", Arch::Ia64),
    ("kernel-smp", Arch::I686),
    ("kernel-smp", Arch::Athlon),
];

/// Community cluster software listed in §4.1 and §7.
const COMMUNITY: &[(&str, &str, PackageKind, f64)] = &[
    ("mpich", "1.2.2.3-1", PackageKind::Library, 12.0),
    ("mpich-gm", "1.2.2.3-1", PackageKind::Library, 13.0),
    ("pvm", "3.4.3-4", PackageKind::Library, 3.2),
    ("atlas", "3.2.1-2", PackageKind::Library, 18.0),
    ("intel-mkl", "5.1-1", PackageKind::Library, 22.0),
    ("pbs", "2.3.12-2", PackageKind::Service, 1.5),
    ("maui", "3.0.6-1", PackageKind::Service, 0.9),
    ("rexec", "1.4-1", PackageKind::Service, 0.2),
    ("gm", "1.5-1", PackageKind::Library, 2.1), // Myrinet driver, binary
];

/// Rocks' own packages (§6.2.1 "Local software").
const ROCKS_LOCAL: &[(&str, &str, f64)] = &[
    ("rocks-dist", "2.2.1-1", 0.3),
    ("rocks-ekv", "2.2.1-1", 0.1), // eKV enhancement to Kickstart (§6.3)
    ("rocks-insert-ethers", "2.2.1-1", 0.1),
    ("rocks-shoot-node", "2.2.1-1", 0.1),
    ("rocks-kickstart-profiles", "2.2.1-1", 0.2),
    ("rocks-sql-config", "2.2.1-1", 0.1),
    ("anaconda-ekv", "7.2-1", 2.3), // patched installer
];

fn mb(megabytes: f64) -> u64 {
    (megabytes * 1024.0 * 1024.0) as u64
}

/// Named base packages that the frontend installs but compute nodes do
/// not (their services live on the frontend).
const FRONTEND_ONLY: &[&str] = &["dhcp", "ypserv", "httpd", "mysql-server"];

/// Community packages in a compute node's install set (§4.1's MPI stacks
/// and job-launch daemons; the intel-mkl, maui and gm binary stay
/// frontend-side or arch-gated).
const COMPUTE_COMMUNITY: &[&str] = &["mpich", "mpich-gm", "atlas", "pvm", "pbs", "rexec"];

/// Rocks packages in a compute node's install set (the eKV pieces).
const COMPUTE_ROCKS: &[&str] = &["rocks-ekv", "anaconda-ekv"];

/// Every non-filler package in a compute node's install: `(name, bytes)`.
fn compute_fixed_set() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for (name, _, _, _, size_mb) in NAMED_BASE {
        if !FRONTEND_ONLY.contains(name) {
            out.push((name.to_string(), mb(*size_mb)));
        }
    }
    out.push(("kernel".into(), mb(11.0)));
    out.push(("gm".into(), mb(2.1)));
    for name in COMPUTE_COMMUNITY {
        let size = COMMUNITY
            .iter()
            .find(|(n, ..)| n == name)
            .map(|(_, _, _, s)| mb(*s))
            .expect("compute community package listed in COMMUNITY");
        out.push((name.to_string(), size));
    }
    for name in COMPUTE_ROCKS {
        let size = ROCKS_LOCAL
            .iter()
            .find(|(n, ..)| n == name)
            .map(|(_, _, s)| mb(*s))
            .expect("compute rocks package listed in ROCKS_LOCAL");
        out.push((name.to_string(), size));
    }
    out
}

/// Number of generated filler packages in the base set.
pub fn filler_count() -> usize {
    COMPUTE_PACKAGE_COUNT - compute_fixed_set().len()
}

/// Build the synthetic "Red Hat 7.2" base repository.
///
/// Contains the named packages above, per-arch kernels, the Myrinet source
/// RPM, and enough filler packages that (a) a compute node's install set
/// has exactly [`COMPUTE_PACKAGE_COUNT`] packages totalling
/// [`COMPUTE_TRANSFER_BYTES`], and (b) the distribution as a whole is much
/// larger than one node's set. Deterministic for a given `seed`.
pub fn redhat72(seed: u64) -> Repository {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut repo = Repository::new("redhat-7.2");

    for (name, evr, arch, kind, size_mb) in NAMED_BASE {
        repo.insert(
            Package::builder(*name, evr)
                .arch(*arch)
                .kind(*kind)
                .size(mb(*size_mb))
                .file(format!("/var/lib/rpm-content/{name}"))
                .build(),
        );
    }

    for (name, arch) in KERNELS {
        repo.insert(
            Package::builder(*name, "2.4.9-31")
                .arch(*arch)
                .kind(PackageKind::Kernel)
                .size(mb(11.0))
                .file(format!("/boot/vmlinuz-2.4.9-31.{arch}"))
                .build(),
        );
    }
    // Source RPM for the Myrinet driver: compiled on the node at first boot
    // (§6.3), hence arch = src.
    repo.insert(
        Package::builder("gm", "1.5-1")
            .arch(Arch::Src)
            .kind(PackageKind::Library)
            .size(mb(2.1))
            .file("/usr/src/gm-1.5.tar.gz")
            .build(),
    );

    // Filler base packages. The fixed (named + community + rocks) set is
    // part of every compute install; generate filler so the compute set
    // reaches exactly COMPUTE_PACKAGE_COUNT packages and
    // COMPUTE_TRANSFER_BYTES bytes.
    let fixed_bytes: u64 = compute_fixed_set().iter().map(|(_, b)| b).sum();
    let filler_count = filler_count();
    let filler_bytes = COMPUTE_TRANSFER_BYTES.saturating_sub(fixed_bytes);

    // Draw filler sizes from a skewed distribution, then rescale so they
    // sum exactly to filler_bytes (real package-size distributions are
    // heavy-tailed: many tiny packages, a few giant ones).
    let mut weights: Vec<f64> = (0..filler_count)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..1.0);
            (u * 6.0).exp() // ~1..400 range before normalization
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();
    for w in &mut weights {
        *w /= total_weight;
    }
    for (i, w) in weights.iter().enumerate() {
        let size = ((filler_bytes as f64) * w).max(4096.0) as u64;
        repo.insert(
            Package::builder(format!("base-pkg-{i:03}"), "1.0-1")
                .arch(Arch::I386)
                .kind(PackageKind::Base)
                .size(size)
                .file(format!("/usr/share/base-pkg-{i:03}/data"))
                .build(),
        );
    }

    // Distribution-only packages (not installed on compute nodes): X11,
    // desktop apps, docs — Red Hat 7.2 was far bigger than one node's set.
    for i in 0..450usize {
        let size = mb(rng.gen_range(0.05..4.0));
        repo.insert(
            Package::builder(format!("extra-pkg-{i:03}"), "1.0-1")
                .arch(Arch::I386)
                .kind(PackageKind::Base)
                .size(size)
                .build(),
        );
    }

    repo
}

/// Community software repository (§4.1: MPICH, PVM, ATLAS, MKL, PBS, Maui,
/// REXEC; §6.3: the Myrinet `gm` binary package).
pub fn community() -> Repository {
    let mut repo = Repository::new("community");
    for (name, evr, kind, size_mb) in COMMUNITY {
        repo.insert(
            Package::builder(*name, evr)
                .arch(Arch::I386)
                .kind(*kind)
                .size(mb(*size_mb))
                .file(format!("/opt/{name}/lib"))
                .build(),
        );
    }
    repo
}

/// NPACI Rocks' own packages (§6.2.1: "Local software — all RPMs built on
/// site", including the eKV enhancement).
pub fn rocks_local() -> Repository {
    let mut repo = Repository::new("rocks-local");
    for (name, evr, size_mb) in ROCKS_LOCAL {
        repo.insert(
            Package::builder(*name, evr)
                .arch(Arch::Noarch)
                .kind(PackageKind::Rocks)
                .size(mb(*size_mb))
                .file(format!("/opt/rocks/{name}"))
                .build(),
        );
    }
    repo
}

/// The package names a compute node installs, in the order anaconda would
/// process them: the fixed set (named base, kernel, gm, community MPI
/// stack, Rocks eKV pieces) plus the generated filler packages.
pub fn compute_package_names() -> Vec<String> {
    let mut names: Vec<String> = compute_fixed_set().into_iter().map(|(name, _)| name).collect();
    for i in 0..filler_count() {
        names.push(format!("base-pkg-{i:03}"));
    }
    names
}

/// Build the full merged distribution (base + community + rocks) a
/// frontend would serve after `rocks-dist` runs.
pub fn merged_distribution(seed: u64) -> Repository {
    let mut repo = redhat72(seed);
    repo.merge(&community());
    repo.merge(&rocks_local());
    repo
}

/// Resolve the concrete compute-node package list against a repository for
/// a given node architecture. Panics if the repository lacks any package —
/// callers build the repo from [`merged_distribution`], so absence is a
/// bug.
pub fn compute_install_set(repo: &Repository, node_arch: Arch) -> Vec<Package> {
    compute_package_names()
        .iter()
        .map(|name| {
            repo.best_for(name, node_arch)
                .unwrap_or_else(|| panic!("compute package {name} missing from {}", repo.name()))
                .clone()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_set_matches_figure7_package_count() {
        let repo = merged_distribution(42);
        let set = compute_install_set(&repo, Arch::I686);
        assert_eq!(set.len(), COMPUTE_PACKAGE_COUNT);
    }

    #[test]
    fn compute_set_transfers_roughly_225mb() {
        let repo = merged_distribution(42);
        let set = compute_install_set(&repo, Arch::I686);
        let total: u64 = set.iter().map(|p| p.size_bytes).sum();
        let target = COMPUTE_TRANSFER_BYTES as f64;
        let ratio = total as f64 / target;
        assert!((0.97..1.03).contains(&ratio), "total {total} vs target {target}");
    }

    #[test]
    fn compute_set_installs_roughly_386mb() {
        let repo = merged_distribution(42);
        let set = compute_install_set(&repo, Arch::I686);
        let total: u64 = set.iter().map(|p| p.installed_bytes).sum();
        let ratio = total as f64 / COMPUTE_INSTALLED_BYTES as f64;
        assert!((0.90..1.10).contains(&ratio), "installed {total}");
    }

    #[test]
    fn distribution_is_much_larger_than_one_node() {
        let repo = redhat72(42);
        assert!(repo.len() > 3 * COMPUTE_PACKAGE_COUNT);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = redhat72(7);
        let b = redhat72(7);
        let c = redhat72(8);
        let ident = |r: &Repository| -> Vec<String> { r.iter().map(|p| p.ident()).collect() };
        let size = |r: &Repository| -> u64 { r.total_size_bytes() };
        assert_eq!(ident(&a), ident(&b));
        assert_eq!(size(&a), size(&b));
        assert_ne!(size(&a), size(&c));
    }

    #[test]
    fn kernel_exists_per_arch() {
        let repo = redhat72(42);
        assert_eq!(repo.best_for("kernel", Arch::Athlon).unwrap().arch, Arch::Athlon);
        assert_eq!(repo.best_for("kernel", Arch::I686).unwrap().arch, Arch::I686);
        assert_eq!(repo.best_for("kernel", Arch::Ia64).unwrap().arch, Arch::Ia64);
    }

    #[test]
    fn figure2_and_figure7_packages_exist() {
        let repo = redhat72(42);
        assert!(repo.get("dhcp", Arch::I386).is_some(), "Figure 2's dhcp package");
        let dev = repo.get("dev", Arch::I386).unwrap();
        assert_eq!(dev.filename(), "dev-3.0.6-5.i386.rpm"); // Figure 7's screen
        assert_eq!(dev.size_bytes, (0.34 * 1024.0 * 1024.0) as u64); // "Size: 340k"
    }

    #[test]
    fn community_and_rocks_repos_have_paper_packages() {
        let comm = community();
        for name in ["mpich", "pvm", "atlas", "pbs", "maui", "rexec"] {
            assert!(comm.get(name, Arch::I386).is_some(), "{name} missing");
        }
        let rocks = rocks_local();
        for name in ["rocks-dist", "rocks-ekv", "anaconda-ekv"] {
            assert!(rocks.get(name, Arch::Noarch).is_some(), "{name} missing");
        }
    }

    #[test]
    fn gm_is_a_source_rpm() {
        let repo = redhat72(42);
        let gm = repo.get("gm", Arch::Src).unwrap();
        assert_eq!(gm.arch, Arch::Src);
    }
}
