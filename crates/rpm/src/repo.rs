//! [`Repository`]: a set of packages with the merge semantics rocks-dist
//! depends on.
//!
//! A Red Hat distribution "is only a collection of RPMs" (paper §6.2), and
//! rocks-dist builds new distributions by merging collections while
//! "resolv\[ing\] version numbers of RPMs and only includ\[ing\] the most
//! recent software" (§6.2.1). `Repository` is that collection type.

use crate::evr::Evr;
use crate::package::{Arch, Package};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A named collection of packages, keyed by (name, arch) with at most one
/// version per key. Insertion applies newest-wins resolution.
#[derive(Debug, Clone, Default)]
pub struct Repository {
    name: String,
    packages: BTreeMap<(String, Arch), Package>,
    /// Older versions displaced by newest-wins inserts; retained so update
    /// statistics (§6.2.1) can be computed.
    superseded: Vec<Package>,
}

/// Failures from dependency closure resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResolveError {
    /// A requested root package is not in the repository.
    UnknownPackage(String),
    /// A required capability has no provider.
    MissingCapability {
        /// Package whose requirement failed.
        requirer: String,
        /// The unsatisfied capability.
        capability: String,
    },
}

impl std::fmt::Display for ResolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResolveError::UnknownPackage(p) => write!(f, "package not in repository: {p}"),
            ResolveError::MissingCapability { requirer, capability } => {
                write!(f, "{requirer} requires {capability}, which nothing provides")
            }
        }
    }
}

impl std::error::Error for ResolveError {}

impl Repository {
    /// Create an empty repository.
    pub fn new(name: impl Into<String>) -> Self {
        Repository { name: name.into(), packages: BTreeMap::new(), superseded: Vec::new() }
    }

    /// The repository's name (e.g. `redhat-7.2`, `rocks-2.2.1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of distinct (name, arch) slots.
    pub fn len(&self) -> usize {
        self.packages.len()
    }

    /// True when no packages are present.
    pub fn is_empty(&self) -> bool {
        self.packages.is_empty()
    }

    /// Insert with newest-wins semantics. Returns `true` when the package
    /// was stored (it was new, or strictly newer than the incumbent);
    /// `false` when an equal-or-newer version was already present.
    ///
    /// A stored package's `Obsoletes:` list is honoured the way RPM does
    /// during an upgrade: any slot whose *name* it obsoletes is removed
    /// (every architecture), landing in [`Self::superseded`].
    pub fn insert(&mut self, pkg: Package) -> bool {
        let stored = match self.packages.get_mut(&pkg.key()) {
            Some(existing) if existing.evr >= pkg.evr => {
                self.superseded.push(pkg);
                return false;
            }
            Some(existing) => {
                let old = std::mem::replace(existing, pkg.clone());
                self.superseded.push(old);
                true
            }
            None => {
                self.packages.insert(pkg.key(), pkg.clone());
                true
            }
        };
        if stored && !pkg.obsoletes.is_empty() {
            let victims: Vec<(String, Arch)> = self
                .packages
                .keys()
                .filter(|(name, _)| pkg.obsoletes.iter().any(|o| o == name))
                .cloned()
                .collect();
            for key in victims {
                if let Some(old) = self.packages.remove(&key) {
                    self.superseded.push(old);
                }
            }
        }
        stored
    }

    /// Merge every package from `other`, newest-wins. Returns how many
    /// slots ended up holding `other`'s version.
    pub fn merge(&mut self, other: &Repository) -> usize {
        other.iter().filter(|p| self.insert((*p).clone())).count()
    }

    /// Packages in deterministic (name, arch) order.
    pub fn iter(&self) -> impl Iterator<Item = &Package> {
        self.packages.values()
    }

    /// Packages whose architecture can install on `node_arch`.
    pub fn iter_for_arch(&self, node_arch: Arch) -> impl Iterator<Item = &Package> + '_ {
        self.packages.values().filter(move |p| p.arch.installs_on(node_arch))
    }

    /// Find the package occupying slot `(name, arch)`.
    pub fn get(&self, name: &str, arch: Arch) -> Option<&Package> {
        self.packages.get(&(name.to_string(), arch))
    }

    /// Find the best package for `name` installable on `node_arch`:
    /// the most specific compatible architecture wins (athlon ≻ i686 ≻
    /// i386 ≻ noarch), mirroring how anaconda picks optimized builds.
    pub fn best_for(&self, name: &str, node_arch: Arch) -> Option<&Package> {
        let mut best: Option<&Package> = None;
        for arch in [node_arch, Arch::I686, Arch::I386, Arch::Noarch, Arch::Src] {
            if let Some(p) = self.packages.get(&(name.to_string(), arch)) {
                if p.arch.installs_on(node_arch) && best.is_none() {
                    best = Some(p);
                }
            }
        }
        best
    }

    /// Current EVR for `name` on any architecture (highest across arches).
    pub fn newest_evr(&self, name: &str) -> Option<&Evr> {
        self.packages.values().filter(|p| p.name == name).map(|p| &p.evr).max()
    }

    /// Versions displaced by newest-wins inserts since construction.
    pub fn superseded(&self) -> &[Package] {
        &self.superseded
    }

    /// Total compressed bytes across all packages.
    pub fn total_size_bytes(&self) -> u64 {
        self.packages.values().map(|p| p.size_bytes).sum()
    }

    /// Compute the dependency closure of `roots` for a node of
    /// architecture `node_arch`: the set of packages that must be
    /// installed so every `requires` is satisfied. This is what turns a
    /// Kickstart `%packages` list into the actual transfer set.
    pub fn closure(
        &self,
        roots: &[String],
        node_arch: Arch,
    ) -> Result<Vec<&Package>, ResolveError> {
        // Build a capability index once.
        let mut providers: BTreeMap<&str, Vec<&Package>> = BTreeMap::new();
        for p in self.iter_for_arch(node_arch) {
            providers.entry(p.name.as_str()).or_default().push(p);
            for cap in &p.provides {
                providers.entry(cap.as_str()).or_default().push(p);
            }
        }

        let mut selected: BTreeSet<(String, Arch)> = BTreeSet::new();
        let mut order: Vec<&Package> = Vec::new();
        let mut queue: VecDeque<&Package> = VecDeque::new();

        for root in roots {
            let pkg = self
                .best_for(root, node_arch)
                .ok_or_else(|| ResolveError::UnknownPackage(root.clone()))?;
            if selected.insert(pkg.key()) {
                order.push(pkg);
                queue.push_back(pkg);
            }
        }

        while let Some(pkg) = queue.pop_front() {
            for cap in &pkg.requires {
                // Already satisfied by something selected?
                let satisfied = order.iter().any(|p| p.provides_cap(cap));
                if satisfied {
                    continue;
                }
                let candidates =
                    providers.get(cap.as_str()).ok_or_else(|| ResolveError::MissingCapability {
                        requirer: pkg.ident(),
                        capability: cap.clone(),
                    })?;
                // Deterministic choice: first provider in (name, arch) order.
                let choice = candidates[0];
                if selected.insert(choice.key()) {
                    order.push(choice);
                    queue.push_back(choice);
                }
            }
        }
        Ok(order)
    }
}

impl<'a> IntoIterator for &'a Repository {
    type Item = &'a Package;
    type IntoIter = std::collections::btree_map::Values<'a, (String, Arch), Package>;
    fn into_iter(self) -> Self::IntoIter {
        self.packages.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::package::PackageKind;

    fn pkg(name: &str, evr: &str) -> Package {
        Package::builder(name, evr).build()
    }

    #[test]
    fn newest_wins_on_insert() {
        let mut repo = Repository::new("test");
        assert!(repo.insert(pkg("glibc", "2.2.4-13")));
        assert!(repo.insert(pkg("glibc", "2.2.4-19"))); // update wins
        assert!(!repo.insert(pkg("glibc", "2.2.4-13"))); // stale loses
        assert_eq!(repo.len(), 1);
        assert_eq!(repo.newest_evr("glibc").unwrap(), &Evr::parse("2.2.4-19").unwrap());
        assert_eq!(repo.superseded().len(), 2);
    }

    #[test]
    fn merge_counts_updates() {
        let mut base = Repository::new("redhat-7.2");
        base.insert(pkg("glibc", "2.2.4-13"));
        base.insert(pkg("dev", "3.0.6-5"));
        let mut updates = Repository::new("updates");
        updates.insert(pkg("glibc", "2.2.4-19"));
        updates.insert(pkg("openssh", "2.9p2-12"));
        let changed = base.merge(&updates);
        assert_eq!(changed, 2); // one update + one new package
        assert_eq!(base.len(), 3);
    }

    #[test]
    fn per_arch_slots_are_distinct() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("kernel", "2.4.9-31").arch(Arch::I686).build());
        repo.insert(Package::builder("kernel", "2.4.9-31").arch(Arch::Athlon).build());
        assert_eq!(repo.len(), 2);
    }

    #[test]
    fn best_for_prefers_specific_arch() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("kernel", "2.4.9-31").arch(Arch::I386).build());
        repo.insert(Package::builder("kernel", "2.4.9-31").arch(Arch::Athlon).build());
        assert_eq!(repo.best_for("kernel", Arch::Athlon).unwrap().arch, Arch::Athlon);
        assert_eq!(repo.best_for("kernel", Arch::I686).unwrap().arch, Arch::I386);
        // IA-64 node cannot use either build.
        assert!(repo.best_for("kernel", Arch::Ia64).is_none());
    }

    #[test]
    fn closure_pulls_requirements_transitively() {
        let mut repo = Repository::new("test");
        repo.insert(
            Package::builder("mpich", "1.2.1-1")
                .requires("libc")
                .kind(PackageKind::Library)
                .build(),
        );
        repo.insert(Package::builder("glibc", "2.2.4-19").provides("libc").build());
        repo.insert(Package::builder("gcc", "2.96-98").requires("binutils").build());
        repo.insert(pkg("binutils", "2.11.90-1"));
        repo.insert(pkg("unrelated", "1-1"));
        let closure = repo.closure(&["mpich".into(), "gcc".into()], Arch::I386).unwrap();
        let names: Vec<_> = closure.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["mpich", "gcc", "glibc", "binutils"]);
    }

    #[test]
    fn closure_reports_missing_capability() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("pbs", "2.3.12-1").requires("tcl").build());
        let err = repo.closure(&["pbs".into()], Arch::I386).unwrap_err();
        assert!(
            matches!(err, ResolveError::MissingCapability { capability, .. } if capability == "tcl")
        );
    }

    #[test]
    fn closure_reports_unknown_root() {
        let repo = Repository::new("test");
        let err = repo.closure(&["ghost".into()], Arch::I386).unwrap_err();
        assert_eq!(err, ResolveError::UnknownPackage("ghost".into()));
    }

    #[test]
    fn closure_is_deterministic() {
        let mut repo = Repository::new("test");
        for n in ["a", "b", "c", "d"] {
            repo.insert(Package::builder(n, "1-1").provides("cap").build());
        }
        repo.insert(Package::builder("root", "1-1").requires("cap").build());
        let c1: Vec<_> =
            repo.closure(&["root".into()], Arch::I386).unwrap().iter().map(|p| p.ident()).collect();
        let c2: Vec<_> =
            repo.closure(&["root".into()], Arch::I386).unwrap().iter().map(|p| p.ident()).collect();
        assert_eq!(c1, c2);
    }

    #[test]
    fn obsoletes_removes_replaced_slot() {
        // Red Hat renamed `dhcpd` to `dhcp`; the new package obsoletes
        // the old so upgrades drop it.
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("dhcpd", "1.0-1").build());
        repo.insert(Package::builder("dhcp", "2.0pl5-1").obsoletes("dhcpd").build());
        assert!(repo.get("dhcpd", Arch::I386).is_none());
        assert!(repo.get("dhcp", Arch::I386).is_some());
        assert!(repo.superseded().iter().any(|p| p.name == "dhcpd"));
        assert_eq!(repo.len(), 1);
    }

    #[test]
    fn stale_obsoleter_does_not_remove_anything() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("dhcp", "3.0-1").build());
        repo.insert(Package::builder("victim", "1.0-1").build());
        // An older dhcp that claims to obsolete `victim` loses the
        // version race and must have no side effects.
        assert!(!repo.insert(Package::builder("dhcp", "2.0-1").obsoletes("victim").build()));
        assert!(repo.get("victim", Arch::I386).is_some());
    }

    #[test]
    fn obsoletes_sweeps_all_architectures() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("kernel-old", "2.2.19-1").arch(Arch::I686).build());
        repo.insert(Package::builder("kernel-old", "2.2.19-1").arch(Arch::Athlon).build());
        repo.insert(Package::builder("kernel", "2.4.9-31").obsoletes("kernel-old").build());
        assert!(repo.get("kernel-old", Arch::I686).is_none());
        assert!(repo.get("kernel-old", Arch::Athlon).is_none());
    }

    #[test]
    fn total_size_sums_packages() {
        let mut repo = Repository::new("test");
        repo.insert(Package::builder("a", "1-1").size(100).build());
        repo.insert(Package::builder("b", "1-1").size(250).build());
        assert_eq!(repo.total_size_bytes(), 350);
    }
}
