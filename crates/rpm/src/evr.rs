//! Epoch–Version–Release handling and the `rpmvercmp` ordering algorithm.
//!
//! This is a faithful port of the segment-wise comparison implemented in
//! `rpm/lib/rpmvercmp.c`, including the RPM 4.x tilde (`~` sorts before
//! everything, used for pre-releases) and caret (`^` sorts after the bare
//! version but before any longer suffix) extensions. rocks-dist's
//! "only include the most recent software" behaviour (paper §6.2.1) is only
//! correct if this ordering matches what RPM itself would decide at install
//! time.

use std::cmp::Ordering;
use std::fmt;

/// Compare two RPM version strings segment-wise, exactly as `rpmvercmp`.
///
/// The algorithm:
/// 1. Skip any characters that are not alphanumeric, `~`, or `^`.
/// 2. A `~` in one string and not the other makes that string *older*
///    (`1.0~rc1 < 1.0`); `~` in both skips it.
/// 3. A `^` in one string: if the other string has ended, the `^` side is
///    *newer* (`1.0^post > 1.0`); otherwise the `^` side is *older*.
/// 4. Extract a maximal run of either digits or letters from both strings.
///    A numeric segment always beats an alphabetic one (`1.0a < 1.0.1`,
///    because `a` loses to `1`).
/// 5. Numeric segments compare by value (leading zeros stripped, longer
///    digit-run wins, then lexicographic); alphabetic segments compare
///    lexicographically (ASCII).
/// 6. If all common segments tie, the string with leftover content is newer.
///
/// ```
/// use rocks_rpm::rpmvercmp;
/// use std::cmp::Ordering;
/// assert_eq!(rpmvercmp("1.0", "1.0"), Ordering::Equal);
/// assert_eq!(rpmvercmp("1.10", "1.9"), Ordering::Greater);
/// assert_eq!(rpmvercmp("1.0~rc1", "1.0"), Ordering::Less);
/// ```
pub fn rpmvercmp(a: &str, b: &str) -> Ordering {
    let a = a.as_bytes();
    let b = b.as_bytes();
    let (mut i, mut j) = (0usize, 0usize);

    while i < a.len() || j < b.len() {
        // Step 1: skip separators.
        while i < a.len() && !is_seg_byte(a[i]) {
            i += 1;
        }
        while j < b.len() && !is_seg_byte(b[j]) {
            j += 1;
        }

        // Step 2: tilde handling.
        let a_tilde = i < a.len() && a[i] == b'~';
        let b_tilde = j < b.len() && b[j] == b'~';
        if a_tilde || b_tilde {
            if a_tilde && b_tilde {
                i += 1;
                j += 1;
                continue;
            }
            return if a_tilde { Ordering::Less } else { Ordering::Greater };
        }

        // Step 3: caret handling.
        let a_caret = i < a.len() && a[i] == b'^';
        let b_caret = j < b.len() && b[j] == b'^';
        if a_caret || b_caret {
            if a_caret && b_caret {
                i += 1;
                j += 1;
                continue;
            }
            // `1.0^x` vs `1.0` → the caret side is newer; `1.0^x` vs `1.0.1`
            // → the caret side is older.
            if a_caret {
                return if j >= b.len() { Ordering::Greater } else { Ordering::Less };
            }
            return if i >= a.len() { Ordering::Less } else { Ordering::Greater };
        }

        // End-of-string after separator skipping.
        if i >= a.len() || j >= b.len() {
            break;
        }

        // Step 4: pull one segment from each side.
        let a_digit = a[i].is_ascii_digit();
        let b_digit = b[j].is_ascii_digit();

        let seg_a = take_segment(a, &mut i, a_digit);
        let seg_b = take_segment(b, &mut j, b_digit);

        if a_digit != b_digit {
            // Numeric beats alphabetic.
            return if a_digit { Ordering::Greater } else { Ordering::Less };
        }

        let ord = if a_digit { compare_numeric(seg_a, seg_b) } else { seg_a.cmp(seg_b) };
        if ord != Ordering::Equal {
            return ord;
        }
    }

    // Step 6: whoever has leftover segment content is newer.
    let a_left = i < a.len();
    let b_left = j < b.len();
    match (a_left, b_left) {
        (false, false) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (true, true) => Ordering::Equal, // unreachable: loop runs until one side is exhausted
    }
}

fn is_seg_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'~' || b == b'^'
}

fn take_segment<'a>(s: &'a [u8], idx: &mut usize, digits: bool) -> &'a [u8] {
    let start = *idx;
    while *idx < s.len() {
        let c = s[*idx];
        let matches = if digits { c.is_ascii_digit() } else { c.is_ascii_alphabetic() };
        if !matches {
            break;
        }
        *idx += 1;
    }
    &s[start..*idx]
}

fn compare_numeric(a: &[u8], b: &[u8]) -> Ordering {
    let a = strip_leading_zeros(a);
    let b = strip_leading_zeros(b);
    a.len().cmp(&b.len()).then_with(|| a.cmp(b))
}

fn strip_leading_zeros(s: &[u8]) -> &[u8] {
    let mut i = 0;
    while i + 1 < s.len() && s[i] == b'0' {
        i += 1;
    }
    // Keep at least one digit so "0" stays comparable.
    if i == s.len() {
        &s[s.len().saturating_sub(1)..]
    } else {
        &s[i..]
    }
}

/// An Epoch–Version–Release triple, the full identity of an RPM build.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Evr {
    /// Epoch: an override knob that trumps version comparison entirely.
    /// Missing epoch compares as 0, as RPM does.
    pub epoch: u32,
    /// Upstream version, e.g. `3.0.6`.
    pub version: String,
    /// Package release, e.g. `5` or `5.7.2` (vendor build number).
    pub release: String,
}

impl Evr {
    /// Construct from parts.
    pub fn new(epoch: u32, version: impl Into<String>, release: impl Into<String>) -> Self {
        Evr { epoch, version: version.into(), release: release.into() }
    }

    /// Parse `[epoch:]version[-release]`, e.g. `3.0.6-5` or `1:1.2-3`.
    /// The release defaults to `"0"` when absent.
    pub fn parse(s: &str) -> Option<Evr> {
        let (epoch, rest) = match s.split_once(':') {
            Some((e, rest)) => (e.parse::<u32>().ok()?, rest),
            None => (0, s),
        };
        if rest.is_empty() {
            return None;
        }
        let (version, release) = match rest.rsplit_once('-') {
            Some((v, r)) if !v.is_empty() => (v, r),
            _ => (rest, "0"),
        };
        Some(Evr::new(epoch, version, release))
    }
}

impl fmt::Display for Evr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.epoch != 0 {
            write!(f, "{}:", self.epoch)?;
        }
        write!(f, "{}-{}", self.version, self.release)
    }
}

impl PartialOrd for Evr {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Evr {
    /// Full EVR ordering: epoch dominates, then version, then release —
    /// exactly RPM's `rpmVersionCompare`.
    fn cmp(&self, other: &Self) -> Ordering {
        self.epoch
            .cmp(&other.epoch)
            .then_with(|| rpmvercmp(&self.version, &other.version))
            .then_with(|| rpmvercmp(&self.release, &other.release))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert `a` and `b` compare as `ord` AND the mirrored comparison
    /// agrees — catches asymmetric bugs.
    fn check(a: &str, b: &str, ord: Ordering) {
        assert_eq!(rpmvercmp(a, b), ord, "rpmvercmp({a:?}, {b:?})");
        assert_eq!(rpmvercmp(b, a), ord.reverse(), "rpmvercmp({b:?}, {a:?})");
    }

    /// Cases lifted from rpm's own test suite (tests/rpmvercmp.at).
    #[test]
    fn rpm_upstream_test_vectors() {
        check("1.0", "1.0", Ordering::Equal);
        check("1.0", "2.0", Ordering::Less);
        check("2.0.1", "2.0.1", Ordering::Equal);
        check("2.0", "2.0.1", Ordering::Less);
        check("2.0.1a", "2.0.1a", Ordering::Equal);
        check("2.0.1a", "2.0.1", Ordering::Greater);
        check("5.5p1", "5.5p1", Ordering::Equal);
        check("5.5p1", "5.5p2", Ordering::Less);
        check("5.5p10", "5.5p10", Ordering::Equal);
        check("5.5p1", "5.5p10", Ordering::Less);
        check("10xyz", "10.1xyz", Ordering::Less);
        check("xyz10", "xyz10", Ordering::Equal);
        check("xyz10", "xyz10.1", Ordering::Less);
        check("xyz.4", "xyz.4", Ordering::Equal);
        check("xyz.4", "8", Ordering::Less);
        check("xyz.4", "2", Ordering::Less);
        check("5.5p2", "5.6p1", Ordering::Less);
        check("5.6p1", "6.5p1", Ordering::Less);
        check("6.0.rc1", "6.0", Ordering::Greater);
        check("10b2", "10a1", Ordering::Greater);
        check("10a2", "10b2", Ordering::Less);
        check("1.0aa", "1.0aa", Ordering::Equal);
        check("1.0a", "1.0aa", Ordering::Less);
        check("10.0001", "10.0001", Ordering::Equal);
        check("10.0001", "10.1", Ordering::Equal);
        check("10.0001", "10.0039", Ordering::Less);
        check("4.999.9", "5.0", Ordering::Less);
        check("20101121", "20101121", Ordering::Equal);
        check("20101121", "20101122", Ordering::Less);
        check("2_0", "2_0", Ordering::Equal);
        check("2.0", "2_0", Ordering::Equal);
        check("a", "a", Ordering::Equal);
        check("a+", "a+", Ordering::Equal);
        check("a+", "a_", Ordering::Equal);
        check("+a", "+a", Ordering::Equal);
        check("+a", "_a", Ordering::Equal);
        check("+_", "_+", Ordering::Equal);
        check("+", "_", Ordering::Equal);
    }

    #[test]
    fn tilde_sorts_before_everything() {
        check("1.0~rc1", "1.0~rc1", Ordering::Equal);
        check("1.0~rc1", "1.0", Ordering::Less);
        check("1.0~rc1", "1.0arc1", Ordering::Less);
        check("1.0~rc1~git123", "1.0~rc1", Ordering::Less);
        check("1.0~rc1", "1.0~rc2", Ordering::Less);
    }

    #[test]
    fn caret_sorts_after_base_but_before_longer() {
        check("1.0^", "1.0^", Ordering::Equal);
        check("1.0^", "1.0", Ordering::Greater);
        check("1.0^git1", "1.0", Ordering::Greater);
        check("1.0^git1", "1.01", Ordering::Less);
        check("1.0^git1", "1.0^git2", Ordering::Less);
        check("1.0~rc1^git1", "1.0~rc1", Ordering::Greater);
        check("1.0^git1~pre", "1.0^git1", Ordering::Less);
    }

    #[test]
    fn rocks_era_kernel_versions() {
        // The paper notes 16 updates to the 2.4 stable tree in one year.
        check("2.4.9", "2.4.18", Ordering::Less);
        check("2.4.18", "2.4.18", Ordering::Equal);
        check("2.2.19", "2.4.2", Ordering::Less);
    }

    #[test]
    fn evr_parsing() {
        assert_eq!(Evr::parse("3.0.6-5"), Some(Evr::new(0, "3.0.6", "5")));
        assert_eq!(Evr::parse("1:1.2-3"), Some(Evr::new(1, "1.2", "3")));
        assert_eq!(Evr::parse("7.2"), Some(Evr::new(0, "7.2", "0")));
        assert_eq!(Evr::parse(""), None);
        assert_eq!(Evr::parse("bad:1.0"), None);
    }

    #[test]
    fn evr_ordering_epoch_dominates() {
        assert!(Evr::new(1, "0.1", "1") > Evr::new(0, "99.9", "9"));
        assert!(Evr::new(0, "1.0", "2") > Evr::new(0, "1.0", "1"));
        assert!(Evr::new(0, "1.1", "1") > Evr::new(0, "1.0", "99"));
    }

    #[test]
    fn evr_display_round_trips() {
        for s in ["3.0.6-5", "1:1.2-3", "2.4.18-3.7.2"] {
            let evr = Evr::parse(s).unwrap();
            assert_eq!(Evr::parse(&evr.to_string()).unwrap(), evr);
        }
    }

    #[test]
    fn leading_zero_numeric_segments() {
        check("0.5", "00.5", Ordering::Equal);
        check("007", "7", Ordering::Equal);
        check("0", "00", Ordering::Equal);
    }
}
