#![warn(missing_docs)]

//! RPM package model for the NPACI Rocks reproduction.
//!
//! Rocks' management strategy rests on the rule "all software deployed on
//! Rocks clusters are in RPMs" (paper §5). This crate models everything the
//! management layer observes about an RPM:
//!
//! * [`evr::Evr`] — the `epoch:version-release` triple with the genuine
//!   `rpmvercmp` ordering algorithm, which `rocks-dist` relies on to
//!   "resolve version numbers of RPMs and only include the most recent
//!   software" (§6.2.1),
//! * [`package::Package`] — name, architecture, sizes, dependencies, and a
//!   synthetic file manifest,
//! * [`repo::Repository`] — a collection of packages with merge and
//!   dependency-closure operations,
//! * [`synth`] — synthetic Red Hat–like base distributions matching the
//!   magnitudes measured in the paper (162 packages and ~225 MB transferred
//!   per compute-node install; Figure 7 and §6.3),
//! * [`updates`] — a synthetic update stream reproducing the §6.2.1
//!   observation that Red Hat 6.2 received 124 updates in under a year
//!   ("one update every three days"), several of them security fixes.
//!
//! Payload *bits* are never modelled — only names, versions, sizes, and
//! relationships, which is the entirety of what the paper's tools consume.

pub mod evr;
pub mod package;
pub mod repo;
pub mod synth;
pub mod updates;

pub use evr::{rpmvercmp, Evr};
pub use package::{Arch, Package, PackageBuilder, PackageKind};
pub use repo::{Repository, ResolveError};
pub use updates::{Update, UpdateKind, UpdateStream};
