//! The frontend DHCP service.
//!
//! Serves fixed-address answers for MACs recorded in the cluster
//! database, and logs every request to a syslog-like stream — which is
//! exactly where `insert-ethers` watches for unknown hardware (paper
//! §6.4: "Insert-ethers monitors syslog messages for DHCP requests from
//! new hosts").

use rocks_db::{ClusterDb, Ipv4};

/// One syslog line produced by the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyslogLine {
    /// Raw text, `dhcpd: DHCPDISCOVER from <mac>` style.
    pub text: String,
    /// The MAC that triggered it.
    pub mac: String,
    /// Whether the MAC was known when the request arrived.
    pub known: bool,
}

/// A DHCP answer for a known host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpAnswer {
    /// The fixed address bound to the MAC.
    pub ip: Ipv4,
    /// The hostname option.
    pub hostname: String,
    /// `next-server` — where Kickstart fetches from (the frontend).
    pub next_server: Ipv4,
}

/// The service: a view over the cluster database plus a syslog buffer.
#[derive(Debug, Default)]
pub struct DhcpService {
    syslog: Vec<SyslogLine>,
}

impl DhcpService {
    /// New service with an empty log.
    pub fn new() -> DhcpService {
        DhcpService::default()
    }

    /// Handle a DISCOVER. Known MACs get their fixed binding; unknown
    /// MACs get no answer but do get logged (insert-ethers' cue).
    pub fn discover(&mut self, db: &mut ClusterDb, mac: &str) -> Option<DhcpAnswer> {
        let node = db.nodes().ok()?.into_iter().find(|n| n.mac == mac);
        match node {
            Some(node) => {
                self.syslog.push(SyslogLine {
                    text: format!("dhcpd: DHCPACK on {} to {mac} ({})", node.ip, node.name),
                    mac: mac.to_string(),
                    known: true,
                });
                Some(DhcpAnswer {
                    ip: node.ip,
                    hostname: node.name.clone(),
                    next_server: Ipv4::FRONTEND,
                })
            }
            None => {
                self.syslog.push(SyslogLine {
                    text: format!("dhcpd: DHCPDISCOVER from {mac} via eth0: network 10.0.0.0/8: no free leases"),
                    mac: mac.to_string(),
                    known: false,
                });
                None
            }
        }
    }

    /// The syslog stream.
    pub fn syslog(&self) -> &[SyslogLine] {
        &self.syslog
    }

    /// MACs of unknown hosts seen so far, in first-seen order without
    /// duplicates — the queue insert-ethers works through.
    pub fn unknown_macs(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        self.syslog
            .iter()
            .filter(|l| !l.known)
            .filter(|l| seen.insert(l.mac.clone()))
            .map(|l| l.mac.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};

    #[test]
    fn known_mac_gets_fixed_binding() {
        let mut db = ClusterDb::new();
        register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
        let mut dhcp = DhcpService::new();
        let answer = dhcp.discover(&mut db, "00:30:c1:d8:ac:80").unwrap();
        assert_eq!(answer.ip, Ipv4::FRONTEND);
        assert_eq!(answer.hostname, "frontend-0");
        assert_eq!(answer.next_server, Ipv4::FRONTEND);
        assert!(dhcp.syslog()[0].known);
    }

    #[test]
    fn unknown_mac_logged_not_answered() {
        let mut db = ClusterDb::new();
        let mut dhcp = DhcpService::new();
        assert!(dhcp.discover(&mut db, "00:50:8b:aa:bb:cc").is_none());
        assert_eq!(dhcp.unknown_macs(), vec!["00:50:8b:aa:bb:cc"]);
        assert!(dhcp.syslog()[0].text.contains("DHCPDISCOVER"));
    }

    #[test]
    fn discovery_queue_deduplicates_retries() {
        let mut db = ClusterDb::new();
        let mut dhcp = DhcpService::new();
        // PXE clients retry aggressively.
        for _ in 0..5 {
            dhcp.discover(&mut db, "00:50:8b:aa:bb:01");
        }
        dhcp.discover(&mut db, "00:50:8b:aa:bb:02");
        assert_eq!(dhcp.unknown_macs(), vec!["00:50:8b:aa:bb:01", "00:50:8b:aa:bb:02"]);
    }

    #[test]
    fn full_discovery_to_integration_loop() {
        // The §6.4 flow end-to-end: unknown boot → syslog → insert-ethers
        // → database row → next boot answered.
        let mut db = ClusterDb::new();
        let mut dhcp = DhcpService::new();
        let mac = "00:50:8b:e0:44:5e";
        assert!(dhcp.discover(&mut db, mac).is_none());

        let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        for unknown in dhcp.unknown_macs() {
            session.observe(&DhcpRequest { mac: unknown }).unwrap();
        }

        let answer = dhcp.discover(&mut db, mac).unwrap();
        assert_eq!(answer.hostname, "compute-0-0");
        assert_eq!(answer.ip, Ipv4::new(10, 255, 255, 254));
    }
}
