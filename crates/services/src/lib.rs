#![warn(missing_docs)]

//! Cluster services (paper §4–5): the scalable services Rocks builds on.
//!
//! "Another requirement for scaling out is only using scalable services
//! and utilizing dynamic services for frequently changing state ... For
//! configuring Ethernet devices on compute nodes, the Dynamic Host
//! Configuration Protocol (DHCP) is essential. User account configuration
//! ... \[is\] synchronized from the frontend node to compute nodes with the
//! Network Information Service (NIS). We have employed one unscalable
//! service, the Network File System (NFS)."
//!
//! * [`dhcp`] — the frontend DHCP service: fixed MAC→IP bindings from
//!   the cluster database, plus the syslog stream `insert-ethers`
//!   consumes to discover new hardware,
//! * [`nis`] — versioned account-map synchronization,
//! * [`nfs`] — the exported home-directory service, including the
//!   common-mode failure behaviour §4 describes (when NFS dies, nodes
//!   appear dead; fix the service and power cycle).

pub mod dhcp;
pub mod nfs;
pub mod nis;

pub use dhcp::{DhcpAnswer, DhcpService, SyslogLine};
pub use nfs::{MountError, NfsServer};
pub use nis::{AccountMap, NisDomain, PasswdEntry};
