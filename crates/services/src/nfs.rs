//! The NFS home-directory service — "the one unscalable service" (§5) —
//! and the common-mode failure behaviour of §4: "if Linux can't bring up
//! the Ethernet network, either a hardware error has occurred ... or a
//! central (common-mode) service (often NFS) has failed. ... For a
//! common-mode failure, fixing the service and then power cycling nodes
//! (remotely) solves the dilemma."

use std::collections::BTreeMap;

/// Mount attempt failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MountError {
    /// The path is not exported to this client.
    NotExported {
        /// Requested path.
        path: String,
        /// Requesting client address.
        client: String,
    },
    /// The server is down: the client hangs (the common-mode failure).
    ServerDown,
}

impl std::fmt::Display for MountError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MountError::NotExported { path, client } => {
                write!(f, "mount: {path} not exported to {client}")
            }
            MountError::ServerDown => write!(f, "mount: RPC timeout (server not responding)"),
        }
    }
}

/// The frontend's NFS server: an exports table and client mount state.
#[derive(Debug, Default)]
pub struct NfsServer {
    /// Export path → allowed client prefix (e.g. `10.` for the cluster).
    exports: BTreeMap<String, String>,
    /// (client, path) active mounts.
    mounts: Vec<(String, String)>,
    /// Whether the daemon is answering.
    up: bool,
}

impl NfsServer {
    /// A running server with no exports.
    pub fn new() -> NfsServer {
        NfsServer { up: true, ..Default::default() }
    }

    /// Export `path` to clients whose address starts with `client_prefix`
    /// (the `/etc/exports` wildcard model).
    pub fn export(&mut self, path: &str, client_prefix: &str) {
        self.exports.insert(path.to_string(), client_prefix.to_string());
    }

    /// Whether the daemon is up.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Kill the daemon (common-mode failure injection).
    pub fn crash(&mut self) {
        self.up = false;
    }

    /// Restart the daemon ("fixing the service"). Existing mounts
    /// recover — NFS hard mounts block rather than break.
    pub fn restart(&mut self) {
        self.up = true;
    }

    /// A client mounts an export.
    pub fn mount(&mut self, client_ip: &str, path: &str) -> Result<(), MountError> {
        if !self.up {
            return Err(MountError::ServerDown);
        }
        match self.exports.get(path) {
            Some(prefix) if client_ip.starts_with(prefix.as_str()) => {
                self.mounts.push((client_ip.to_string(), path.to_string()));
                Ok(())
            }
            _ => Err(MountError::NotExported {
                path: path.to_string(),
                client: client_ip.to_string(),
            }),
        }
    }

    /// An I/O access through a mount: blocks (errors) when the server is
    /// down — the state where a whole cluster looks dead at once.
    pub fn access(&self, client_ip: &str, path: &str) -> Result<(), MountError> {
        if !self.up {
            return Err(MountError::ServerDown);
        }
        if self.mounts.iter().any(|(c, p)| c == client_ip && p == path) {
            Ok(())
        } else {
            Err(MountError::NotExported { path: path.to_string(), client: client_ip.to_string() })
        }
    }

    /// Active mount count.
    pub fn mount_count(&self) -> usize {
        self.mounts.len()
    }

    /// Drop all mounts from a client (what its reinstall does).
    pub fn unmount_client(&mut self, client_ip: &str) {
        self.mounts.retain(|(c, _)| c != client_ip);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exported() -> NfsServer {
        let mut server = NfsServer::new();
        server.export("/export/home", "10.");
        server
    }

    #[test]
    fn cluster_clients_can_mount_exports() {
        let mut server = exported();
        server.mount("10.255.255.254", "/export/home").unwrap();
        server.access("10.255.255.254", "/export/home").unwrap();
        assert_eq!(server.mount_count(), 1);
    }

    #[test]
    fn outside_clients_are_refused() {
        let mut server = exported();
        let err = server.mount("192.168.1.5", "/export/home").unwrap_err();
        assert!(matches!(err, MountError::NotExported { .. }));
    }

    #[test]
    fn unexported_paths_are_refused() {
        let mut server = exported();
        let err = server.mount("10.1.1.2", "/secret").unwrap_err();
        assert!(matches!(err, MountError::NotExported { .. }));
    }

    #[test]
    fn common_mode_failure_blocks_every_client() {
        // §4's scenario: all nodes look dead because one service died.
        let mut server = exported();
        for i in 0..4 {
            server.mount(&format!("10.255.255.{}", 254 - i), "/export/home").unwrap();
        }
        server.crash();
        for i in 0..4 {
            let err = server.access(&format!("10.255.255.{}", 254 - i), "/export/home");
            assert_eq!(err, Err(MountError::ServerDown));
        }
        // Fix the service: everyone recovers without remounting.
        server.restart();
        for i in 0..4 {
            server.access(&format!("10.255.255.{}", 254 - i), "/export/home").unwrap();
        }
    }

    #[test]
    fn reinstall_drops_client_mounts() {
        let mut server = exported();
        server.mount("10.255.255.254", "/export/home").unwrap();
        server.mount("10.255.255.253", "/export/home").unwrap();
        server.unmount_client("10.255.255.254");
        assert_eq!(server.mount_count(), 1);
        assert!(server.access("10.255.255.254", "/export/home").is_err());
        assert!(server.access("10.255.255.253", "/export/home").is_ok());
    }
}
