//! NIS-style account synchronization (paper §5: "User account
//! configuration (e.g., passwords and home directory locations) are
//! synchronized from the frontend node to compute nodes with the Network
//! Information Service").

use std::collections::BTreeMap;

/// One passwd-map entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PasswdEntry {
    /// Login name.
    pub user: String,
    /// Numeric uid.
    pub uid: u32,
    /// Home directory (NFS-mounted from the frontend).
    pub home: String,
}

/// A versioned account map — the master copy lives on the frontend;
/// clients hold possibly-stale copies and converge by pulling.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccountMap {
    /// Monotonic version, bumped on every change (NIS map order number).
    pub version: u64,
    entries: BTreeMap<String, PasswdEntry>,
}

impl AccountMap {
    /// Add or replace a user; bumps the version.
    pub fn upsert(&mut self, entry: PasswdEntry) {
        self.entries.insert(entry.user.clone(), entry);
        self.version += 1;
    }

    /// Remove a user; bumps the version when present.
    pub fn remove(&mut self, user: &str) -> bool {
        let removed = self.entries.remove(user).is_some();
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Look up a user.
    pub fn get(&self, user: &str) -> Option<&PasswdEntry> {
        self.entries.get(user)
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no accounts exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An NIS domain: one master map plus per-client replicas.
#[derive(Debug, Default)]
pub struct NisDomain {
    /// The frontend's authoritative map.
    pub master: AccountMap,
    clients: BTreeMap<String, AccountMap>,
}

impl NisDomain {
    /// New empty domain.
    pub fn new() -> NisDomain {
        NisDomain::default()
    }

    /// Register a client (a freshly installed compute node binds to the
    /// domain with an empty map, then pulls).
    pub fn bind_client(&mut self, node: &str) {
        self.clients.insert(node.to_string(), AccountMap::default());
    }

    /// A client's current view.
    pub fn client(&self, node: &str) -> Option<&AccountMap> {
        self.clients.get(node)
    }

    /// Pull: bring one client up to the master version. Returns true if
    /// anything changed.
    pub fn sync_client(&mut self, node: &str) -> bool {
        match self.clients.get_mut(node) {
            Some(map) if map.version != self.master.version => {
                *map = self.master.clone();
                true
            }
            _ => false,
        }
    }

    /// Push to everyone (`make -C /var/yp` on the frontend).
    pub fn sync_all(&mut self) -> usize {
        let names: Vec<String> = self.clients.keys().cloned().collect();
        names.iter().filter(|n| self.sync_client(n)).count()
    }

    /// Nodes whose maps are behind the master.
    pub fn stale_clients(&self) -> Vec<&str> {
        self.clients
            .iter()
            .filter(|(_, m)| m.version != self.master.version)
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user(name: &str, uid: u32) -> PasswdEntry {
        PasswdEntry { user: name.into(), uid, home: format!("/export/home/{name}") }
    }

    #[test]
    fn versions_bump_on_change() {
        let mut map = AccountMap::default();
        assert_eq!(map.version, 0);
        map.upsert(user("bruno", 500));
        assert_eq!(map.version, 1);
        map.upsert(user("bruno", 501)); // replacement also bumps
        assert_eq!(map.version, 2);
        assert!(map.remove("bruno"));
        assert_eq!(map.version, 3);
        assert!(!map.remove("bruno"));
        assert_eq!(map.version, 3);
    }

    #[test]
    fn clients_converge_on_sync() {
        let mut domain = NisDomain::new();
        domain.bind_client("compute-0-0");
        domain.bind_client("compute-0-1");
        domain.master.upsert(user("mjk", 501));
        assert_eq!(domain.stale_clients().len(), 2);
        assert_eq!(domain.sync_all(), 2);
        assert!(domain.stale_clients().is_empty());
        assert_eq!(domain.client("compute-0-0").unwrap().get("mjk").unwrap().uid, 501);
        // Second sync is a no-op.
        assert_eq!(domain.sync_all(), 0);
    }

    #[test]
    fn partial_sync_leaves_others_stale() {
        let mut domain = NisDomain::new();
        domain.bind_client("a");
        domain.bind_client("b");
        domain.master.upsert(user("x", 1));
        assert!(domain.sync_client("a"));
        assert_eq!(domain.stale_clients(), vec!["b"]);
        // An account change makes everyone stale again.
        domain.master.upsert(user("y", 2));
        assert_eq!(domain.stale_clients().len(), 2);
    }

    #[test]
    fn reinstalled_node_rebinds_empty_then_pulls() {
        // A reinstall wipes node state: re-binding models that, and one
        // pull restores consistency — the paper's whole point.
        let mut domain = NisDomain::new();
        domain.master.upsert(user("pi", 600));
        domain.bind_client("compute-0-5");
        assert!(domain.client("compute-0-5").unwrap().is_empty());
        domain.sync_client("compute-0-5");
        assert_eq!(domain.client("compute-0-5").unwrap().len(), 1);
    }
}
