//! The rollout invariant suite: across randomized job mixes and fault
//! schedules, a rolling reinstall never kills a job, reinstalls every
//! node exactly once, never exceeds the install-server capacity cap, and
//! terminates within the analytic bound. A deterministic 500-seed sweep
//! anchors CI; proptests push deeper into the seed space.

use proptest::prelude::*;
use rocks_pbs::rollout::{run_rollout_sweep, RolloutPlan};
use rocks_pbs::scheduler::schedule;
use rocks_pbs::{
    run_rollout, standard_rollout_invariants, FixedInstall, JobArrival, JobState, NodeState,
    PbsServer, RolloutConfig, RolloutFault,
};
use rocks_trace::Tracer;

/// The quick CI sweep: 500 consecutive seeds, zero violations, zero
/// aborted runs. Every seed is a full scenario — randomized cluster
/// size, capacity, drain look-ahead, initial jobs, mid-rollout
/// arrivals, server flaps, job bursts, and straggler nodes.
#[test]
fn invariant_sweep_500_seeds() {
    let violations = run_rollout_sweep(0..500);
    assert!(
        violations.is_empty(),
        "{} violations, first few: {:#?}",
        violations.len(),
        &violations[..violations.len().min(5)]
    );
}

/// Spot-check the sweep's coverage claims: across the 500 CI seeds the
/// generator actually produces flaps, bursts, stragglers, and
/// drain-timeout plans — the sweep is not vacuously green.
#[test]
fn sweep_seeds_cover_the_fault_vocabulary() {
    let (mut flaps, mut bursts, mut stragglers, mut timeouts) = (0u32, 0u32, 0u32, 0u32);
    for seed in 0..500 {
        let plan = RolloutPlan::generate(seed);
        for fault in &plan.faults {
            match fault {
                RolloutFault::ServerFlap { .. } => flaps += 1,
                RolloutFault::JobBurst { .. } => bursts += 1,
                RolloutFault::Straggler { .. } => stragglers += 1,
            }
        }
        if plan.drain_timeout_s.is_some() {
            timeouts += 1;
        }
    }
    assert!(flaps > 100, "flaps {flaps}");
    assert!(bursts > 100, "bursts {bursts}");
    assert!(stragglers > 100, "stragglers {stragglers}");
    assert!(timeouts > 50, "timeout plans {timeouts}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any seed: the standard invariants hold and the rollout completes.
    #[test]
    fn any_seed_satisfies_the_rollout_invariants(seed in 0u64..1_000_000) {
        let record = RolloutPlan::generate(seed).run();
        prop_assert!(
            record.violations.is_empty(),
            "seed {} violated: {:#?}",
            seed,
            record.violations
        );
        let report = record.report.expect("clean run has a report");
        let plan = RolloutPlan::generate(seed);
        prop_assert_eq!(report.reinstalled.len(), plan.n_nodes);
        prop_assert!(report.max_concurrent_installs <= plan.capacity);
        prop_assert!(report.makespan_seconds <= plan.worst_case_seconds());
    }

    /// Same seed, same rollout — makespan, node order, and byte totals
    /// are bit-for-bit reproducible.
    #[test]
    fn rollouts_are_deterministic(seed in 0u64..1_000_000) {
        let a = RolloutPlan::generate(seed).run();
        let b = RolloutPlan::generate(seed).run();
        let (ra, rb) = (a.report.expect("ran"), b.report.expect("ran"));
        prop_assert_eq!(ra.makespan_seconds.to_bits(), rb.makespan_seconds.to_bits());
        prop_assert_eq!(ra.reinstalled, rb.reinstalled);
        prop_assert_eq!(ra.total_bytes, rb.total_bytes);
        prop_assert_eq!(ra.busy_node_seconds.to_bits(), rb.busy_node_seconds.to_bits());
    }

    /// No job submitted before or during the rollout ends cancelled, and
    /// every one that got nodes runs to completion once the queue
    /// settles — the "never disturb running applications" promise.
    #[test]
    fn no_job_is_ever_lost(seed in 0u64..1_000_000) {
        let plan = RolloutPlan::generate(seed);
        let mut server = PbsServer::new();
        for i in 0..plan.n_nodes {
            server.add_node(&format!("compute-0-{i}"));
        }
        for (i, (nodes, walltime_s)) in plan.initial_jobs.iter().enumerate() {
            let _ = server.qsub(&format!("initial-{i}"), *nodes, *walltime_s);
        }
        schedule(&mut server);
        let cfg = RolloutConfig {
            capacity: plan.capacity,
            drain_ahead: plan.drain_ahead,
            drain_timeout_s: plan.drain_timeout_s,
        };
        let mut backend =
            FixedInstall { seconds: plan.install_seconds, bytes: plan.install_bytes };
        let outcome = run_rollout(
            &mut server,
            &mut backend,
            &cfg,
            &plan.arrivals,
            &plan.faults,
            &mut standard_rollout_invariants(plan.worst_case_seconds()),
            &Tracer::disabled(),
        ).expect("plan rollouts complete");
        prop_assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        rocks_pbs::scheduler::run_to_completion(&mut server);
        for job in server.jobs() {
            prop_assert!(
                !matches!(job.state, JobState::Cancelled),
                "job {} cancelled",
                job.id
            );
        }
        // The cluster came back whole: every node schedulable again.
        prop_assert_eq!(
            server.nodes_in_state(NodeState::Free).len()
                + server.nodes_in_state(NodeState::Busy).len(),
            plan.n_nodes
        );
    }

    /// The capacity governor holds even under a hostile arrival stream:
    /// saturate a small cluster with single-node jobs and check the cap
    /// was never exceeded while everything still reinstalls.
    #[test]
    fn cap_holds_under_saturation(seed in 0u64..100_000, capacity in 1usize..6) {
        let n = 12;
        let mut server = PbsServer::new();
        for i in 0..n {
            server.add_node(&format!("compute-0-{i}"));
        }
        let arrivals: Vec<JobArrival> = (0..40)
            .map(|i| JobArrival {
                at: (seed % 97) as f64 + i as f64 * 13.0,
                name: format!("sat-{i}"),
                nodes: 1 + (i as usize % 3),
                walltime_s: 60.0 + (i as f64 * 7.0) % 240.0,
            })
            .collect();
        let mut backend = FixedInstall { seconds: 480.0, bytes: 1 };
        let outcome = run_rollout(
            &mut server,
            &mut backend,
            &RolloutConfig::with_capacity(capacity),
            &arrivals,
            &[],
            &mut standard_rollout_invariants(1e9),
            &Tracer::disabled(),
        ).expect("completes");
        prop_assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
        prop_assert!(outcome.report.max_concurrent_installs <= capacity);
        prop_assert_eq!(outcome.report.reinstalled.len(), n);
    }
}
