//! Jobs, nodes, and the PBS server state machine.

use crate::{PbsError, Result};
use std::collections::BTreeMap;

/// Job identifier (monotonic, like PBS sequence numbers).
pub type JobId = u64;

/// A node's availability from the workload manager's perspective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Idle and schedulable.
    Free,
    /// Running part of a job.
    Busy,
    /// Administratively removed from scheduling (draining for
    /// reinstallation); running work is allowed to finish.
    Offline,
    /// Down — being reinstalled or failed.
    Down,
}

/// Job lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub enum JobState {
    /// Waiting for nodes.
    Queued,
    /// Running on the named nodes since `started_at`.
    Running {
        /// Assigned node names.
        nodes: Vec<String>,
        /// Start time (seconds).
        started_at: f64,
    },
    /// Finished at the recorded time.
    Done {
        /// Completion time (seconds).
        finished_at: f64,
    },
    /// Removed before completion.
    Cancelled,
}

/// One batch job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identifier.
    pub id: JobId,
    /// Human name (`qsub -N`).
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Requested walltime in seconds (jobs run exactly this long in the
    /// model — PBS kills at the limit anyway).
    pub walltime_s: f64,
    /// Submission time.
    pub submitted_at: f64,
    /// Current state.
    pub state: JobState,
}

impl Job {
    /// When a running job will finish.
    pub fn finish_time(&self) -> Option<f64> {
        match &self.state {
            JobState::Running { started_at, .. } => Some(started_at + self.walltime_s),
            _ => None,
        }
    }
}

/// The PBS server: node table + job table + a caller-advanced clock.
#[derive(Debug, Default)]
pub struct PbsServer {
    nodes: BTreeMap<String, NodeState>,
    jobs: BTreeMap<JobId, Job>,
    next_id: JobId,
    now: f64,
}

impl PbsServer {
    /// An empty server at t=0.
    pub fn new() -> PbsServer {
        PbsServer { next_id: 1, ..Default::default() }
    }

    /// Create a server from the cluster database's generated PBS nodes
    /// file (paper §6.4: the nodes file is a database report).
    pub fn from_nodes_file(content: &str) -> PbsServer {
        let mut server = PbsServer::new();
        for line in content.lines() {
            if let Some(name) = line.split_whitespace().next() {
                server.add_node(name);
            }
        }
        server
    }

    /// Register a node (initially free).
    pub fn add_node(&mut self, name: &str) {
        self.nodes.insert(name.to_string(), NodeState::Free);
    }

    /// Current time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Node names in order.
    pub fn node_names(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    /// A node's state.
    pub fn node_state(&self, name: &str) -> Result<NodeState> {
        self.nodes.get(name).copied().ok_or_else(|| PbsError::NoSuchNode(name.to_string()))
    }

    /// Set a node's state directly (reinstall integration).
    pub fn set_node_state(&mut self, name: &str, state: NodeState) -> Result<()> {
        match self.nodes.get_mut(name) {
            Some(slot) => {
                *slot = state;
                Ok(())
            }
            None => Err(PbsError::NoSuchNode(name.to_string())),
        }
    }

    /// Nodes currently in `state`.
    pub fn nodes_in_state(&self, state: NodeState) -> Vec<String> {
        self.nodes.iter().filter(|(_, s)| **s == state).map(|(n, _)| n.clone()).collect()
    }

    /// Submit a job (`qsub`). Returns its id.
    pub fn qsub(&mut self, name: &str, nodes: usize, walltime_s: f64) -> Result<JobId> {
        if nodes > self.nodes.len() {
            return Err(PbsError::TooLarge { requested: nodes, cluster: self.nodes.len() });
        }
        let id = self.next_id;
        self.next_id += 1;
        self.jobs.insert(
            id,
            Job {
                id,
                name: name.to_string(),
                nodes,
                walltime_s,
                submitted_at: self.now,
                state: JobState::Queued,
            },
        );
        Ok(id)
    }

    /// Query a job (`qstat`).
    pub fn job(&self, id: JobId) -> Result<&Job> {
        self.jobs.get(&id).ok_or(PbsError::NoSuchJob(id))
    }

    /// All jobs, by id.
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Queued jobs in submission order.
    pub fn queued(&self) -> Vec<JobId> {
        let mut queued: Vec<&Job> =
            self.jobs.values().filter(|j| matches!(j.state, JobState::Queued)).collect();
        queued.sort_by(|a, b| {
            a.submitted_at
                .partial_cmp(&b.submitted_at)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        queued.iter().map(|j| j.id).collect()
    }

    /// Running jobs.
    pub fn running(&self) -> Vec<JobId> {
        self.jobs
            .values()
            .filter(|j| matches!(j.state, JobState::Running { .. }))
            .map(|j| j.id)
            .collect()
    }

    /// Cancel a queued or running job (`qdel`).
    pub fn qdel(&mut self, id: JobId) -> Result<()> {
        // Collect node names first to appease the borrow checker.
        let nodes = match &self.jobs.get(&id).ok_or(PbsError::NoSuchJob(id))?.state {
            JobState::Running { nodes, .. } => nodes.clone(),
            JobState::Queued => Vec::new(),
            _ => return Err(PbsError::BadState("job already finished")),
        };
        for node in nodes {
            if self.nodes.get(&node) == Some(&NodeState::Busy) {
                self.nodes.insert(node, NodeState::Free);
            }
        }
        self.jobs.get_mut(&id).expect("checked").state = JobState::Cancelled;
        Ok(())
    }

    /// Start a queued job on specific nodes (the scheduler calls this).
    pub(crate) fn start_job(&mut self, id: JobId, node_names: Vec<String>) -> Result<()> {
        for n in &node_names {
            if self.node_state(n)? != NodeState::Free {
                return Err(PbsError::BadState("node not free"));
            }
        }
        let job = self.jobs.get_mut(&id).ok_or(PbsError::NoSuchJob(id))?;
        if !matches!(job.state, JobState::Queued) {
            return Err(PbsError::BadState("job not queued"));
        }
        job.state = JobState::Running { nodes: node_names.clone(), started_at: self.now };
        for n in node_names {
            self.nodes.insert(n, NodeState::Busy);
        }
        Ok(())
    }

    /// Advance the clock, completing any jobs whose walltime elapsed.
    /// Busy nodes return to `Free` — unless they were marked `Offline`
    /// while running (draining), in which case they stay out of service.
    /// Returns ids of jobs that completed.
    pub fn advance_to(&mut self, t: f64) -> Vec<JobId> {
        assert!(t >= self.now, "time cannot run backwards");
        self.now = t;
        let mut finished = Vec::new();
        let ids: Vec<JobId> = self.jobs.keys().copied().collect();
        for id in ids {
            let (done, nodes) = {
                let job = &self.jobs[&id];
                match (&job.state, job.finish_time()) {
                    (JobState::Running { nodes, .. }, Some(end)) if end <= t => {
                        (true, nodes.clone())
                    }
                    _ => (false, Vec::new()),
                }
            };
            if done {
                let end = self.jobs[&id].finish_time().expect("running job has an end");
                self.jobs.get_mut(&id).expect("exists").state = JobState::Done { finished_at: end };
                for n in nodes {
                    let slot = self.nodes.get_mut(&n).expect("job nodes exist");
                    if *slot == NodeState::Busy {
                        *slot = NodeState::Free;
                    }
                    // Offline (draining) and Down stay as they are.
                }
                finished.push(id);
            }
        }
        finished
    }

    /// The running job currently occupying `name`, if any. Lets the
    /// rollout orchestrator rank drain candidates by when they come free.
    pub fn job_on_node(&self, name: &str) -> Option<&Job> {
        self.jobs.values().find(|j| {
            matches!(&j.state, JobState::Running { nodes, .. } if nodes.iter().any(|n| n == name))
        })
    }

    /// Whether any running job currently occupies `name`. Needed because
    /// a draining node keeps running its job: `Offline` state alone does
    /// not mean the node is idle.
    pub fn node_running_job(&self, name: &str) -> bool {
        self.job_on_node(name).is_some()
    }

    /// Earliest finish time among running jobs, if any — the scheduler's
    /// event horizon.
    pub fn next_completion(&self) -> Option<f64> {
        self.jobs
            .values()
            .filter_map(|j| j.finish_time())
            .min_by(|a, b| a.partial_cmp(b).expect("finite times"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: usize) -> PbsServer {
        let mut s = PbsServer::new();
        for i in 0..n {
            s.add_node(&format!("compute-0-{i}"));
        }
        s
    }

    #[test]
    fn from_generated_nodes_file() {
        let s = PbsServer::from_nodes_file("compute-0-0 np=2\ncompute-0-1 np=2\n");
        assert_eq!(s.node_names(), vec!["compute-0-0", "compute-0-1"]);
    }

    #[test]
    fn qsub_qstat_lifecycle() {
        let mut s = server(4);
        let id = s.qsub("namd-run", 2, 100.0).unwrap();
        assert!(matches!(s.job(id).unwrap().state, JobState::Queued));
        s.start_job(id, vec!["compute-0-0".into(), "compute-0-1".into()]).unwrap();
        assert_eq!(s.node_state("compute-0-0").unwrap(), NodeState::Busy);
        let finished = s.advance_to(100.0);
        assert_eq!(finished, vec![id]);
        assert!(matches!(s.job(id).unwrap().state, JobState::Done { .. }));
        assert_eq!(s.node_state("compute-0-0").unwrap(), NodeState::Free);
    }

    #[test]
    fn oversized_job_rejected() {
        let mut s = server(2);
        assert!(matches!(
            s.qsub("big", 3, 10.0),
            Err(PbsError::TooLarge { requested: 3, cluster: 2 })
        ));
    }

    #[test]
    fn qdel_releases_nodes() {
        let mut s = server(2);
        let id = s.qsub("j", 2, 1000.0).unwrap();
        s.start_job(id, vec!["compute-0-0".into(), "compute-0-1".into()]).unwrap();
        s.qdel(id).unwrap();
        assert!(matches!(s.job(id).unwrap().state, JobState::Cancelled));
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 2);
        assert!(matches!(s.qdel(id), Err(PbsError::BadState(_))));
    }

    #[test]
    fn draining_node_does_not_return_to_free() {
        let mut s = server(2);
        let id = s.qsub("j", 1, 50.0).unwrap();
        s.start_job(id, vec!["compute-0-0".into()]).unwrap();
        // Drain while running: Offline overrides the busy→free return.
        s.set_node_state("compute-0-0", NodeState::Offline).unwrap();
        s.advance_to(50.0);
        assert_eq!(s.node_state("compute-0-0").unwrap(), NodeState::Offline);
    }

    #[test]
    fn queued_order_is_fifo_by_submission() {
        let mut s = server(4);
        let a = s.qsub("a", 1, 10.0).unwrap();
        s.advance_to(1.0);
        let b = s.qsub("b", 1, 10.0).unwrap();
        assert_eq!(s.queued(), vec![a, b]);
    }

    #[test]
    fn next_completion_tracks_running_jobs() {
        let mut s = server(2);
        assert_eq!(s.next_completion(), None);
        let a = s.qsub("a", 1, 30.0).unwrap();
        let b = s.qsub("b", 1, 10.0).unwrap();
        s.start_job(a, vec!["compute-0-0".into()]).unwrap();
        s.start_job(b, vec!["compute-0-1".into()]).unwrap();
        assert_eq!(s.next_completion(), Some(10.0));
    }
}
