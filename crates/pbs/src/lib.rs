#![warn(missing_docs)]

//! A PBS-like workload manager with a Maui-like backfill scheduler.
//!
//! The paper packages "the Portable Batch System (PBS) and the Maui
//! scheduler. PBS is used for its workload management system (starting
//! and monitoring jobs) and Maui is used for its rich scheduling
//! functionality" (§4.1), and the upgrade workflow relies on it: "the
//! production system can be upgraded by submitting a 'reinstall cluster'
//! job to Maui, as not to disturb any running applications" (§5).
//!
//! This crate provides exactly the behaviours the paper exercises:
//!
//! * queues, jobs, and node states ([`server::PbsServer`]),
//! * FIFO-with-backfill scheduling and head-of-queue reservations
//!   ([`scheduler`]),
//! * the drain-and-reinstall system job ([`reinstall::ReinstallJob`])
//!   that rolls a cluster onto a new distribution without killing
//!   running work.
//!
//! Time is a caller-advanced `f64` seconds clock so the workload manager
//! composes with the `rocks-netsim` virtual clock.

pub mod reinstall;
pub mod rollout;
pub mod scheduler;
pub mod server;

pub use reinstall::ReinstallJob;
pub use rollout::{
    run_rollout, standard_rollout_invariants, FixedInstall, InstallBackend, InstallLeg, JobArrival,
    RolloutConfig, RolloutFault, RolloutInvariant, RolloutOutcome, RolloutPlan, RolloutRecord,
    RolloutReport, RolloutView, RolloutViolation,
};
pub use server::{Job, JobId, JobState, NodeState, PbsServer};

/// Errors from workload-manager operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PbsError {
    /// Job id not found.
    NoSuchJob(u64),
    /// Node name not found.
    NoSuchNode(String),
    /// More nodes requested than the cluster owns.
    TooLarge {
        /// Nodes the job asked for.
        requested: usize,
        /// Nodes the cluster has.
        cluster: usize,
    },
    /// Job is not in a state where the operation applies.
    BadState(&'static str),
    /// A draining node was still occupied past the drain timeout — the
    /// job on it never finished, so the reinstall cannot proceed without
    /// either killing work (which we refuse to do) or operator action.
    DrainTimeout {
        /// The node whose drain never completed.
        node: String,
    },
}

impl std::fmt::Display for PbsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PbsError::NoSuchJob(id) => write!(f, "no such job: {id}"),
            PbsError::NoSuchNode(n) => write!(f, "no such node: {n}"),
            PbsError::TooLarge { requested, cluster } => {
                write!(f, "job requests {requested} nodes but the cluster has {cluster}")
            }
            PbsError::BadState(m) => write!(f, "operation invalid in current state: {m}"),
            PbsError::DrainTimeout { node } => {
                write!(f, "drain timed out: node {node} never came free")
            }
        }
    }
}

impl std::error::Error for PbsError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, PbsError>;
