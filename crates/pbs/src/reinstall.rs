//! The "reinstall cluster" system job (paper §5).
//!
//! "After the updates are validated on a small test cluster, the
//! production system can be upgraded by submitting a 'reinstall cluster'
//! job to Maui, as not to disturb any running applications. Once the
//! reinstallation is complete, the next job will have a known, consistent
//! software base."
//!
//! Mechanically: every node is marked to drain; as nodes come free they
//! go `Down` and reinstall (the caller supplies the reinstall duration —
//! in the full system it comes from `rocks-netsim`); reinstalled nodes
//! return to service. Running jobs are never interrupted.

use crate::server::{NodeState, PbsServer};
use crate::{PbsError, Result};
use std::collections::BTreeMap;

/// Progress of a rolling reinstall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReinstallPhase {
    /// Nodes still draining or reinstalling.
    InProgress,
    /// Every node has been reinstalled and returned to service.
    Complete,
}

/// A rolling cluster reinstall driven alongside the scheduler.
#[derive(Debug)]
pub struct ReinstallJob {
    /// Nodes still waiting to start their reinstall.
    pending: Vec<String>,
    /// Nodes reinstalling: name → completion time.
    installing: BTreeMap<String, f64>,
    /// Nodes finished.
    done: Vec<String>,
    /// Seconds one reinstall takes (from the netsim calibration).
    reinstall_seconds: f64,
    /// When the mass drain began (all pending nodes drain from here).
    started_at: f64,
    /// If set, a pending node still not drained this many seconds after
    /// `started_at` turns into a typed [`PbsError::DrainTimeout`] instead
    /// of stalling the reinstall silently.
    drain_timeout_s: Option<f64>,
}

impl ReinstallJob {
    /// Begin a rolling reinstall of every node. Idle nodes are taken
    /// immediately; busy nodes are marked `Offline` so the scheduler
    /// stops giving them new work. No drain timeout: a node that never
    /// comes free stalls the reinstall (see [`ReinstallJob::start_with_timeout`]).
    pub fn start(server: &mut PbsServer, reinstall_seconds: f64) -> Result<ReinstallJob> {
        Self::start_inner(server, reinstall_seconds, None)
    }

    /// Like [`ReinstallJob::start`], but a node whose drain has not
    /// completed `drain_timeout_s` seconds in surfaces as
    /// [`PbsError::DrainTimeout`] from [`ReinstallJob::tick`] — stuck-job
    /// detection, so an operator learns *which* node is wedged instead of
    /// watching the reinstall hang.
    pub fn start_with_timeout(
        server: &mut PbsServer,
        reinstall_seconds: f64,
        drain_timeout_s: f64,
    ) -> Result<ReinstallJob> {
        Self::start_inner(server, reinstall_seconds, Some(drain_timeout_s))
    }

    fn start_inner(
        server: &mut PbsServer,
        reinstall_seconds: f64,
        drain_timeout_s: Option<f64>,
    ) -> Result<ReinstallJob> {
        let mut job = ReinstallJob {
            pending: Vec::new(),
            installing: BTreeMap::new(),
            done: Vec::new(),
            reinstall_seconds,
            started_at: server.now(),
            drain_timeout_s,
        };
        for name in server.node_names() {
            match server.node_state(&name)? {
                NodeState::Free => job.begin_node(server, &name)?,
                NodeState::Busy => {
                    server.set_node_state(&name, NodeState::Offline)?;
                    job.pending.push(name);
                }
                NodeState::Offline | NodeState::Down => job.pending.push(name),
            }
        }
        Ok(job)
    }

    fn begin_node(&mut self, server: &mut PbsServer, name: &str) -> Result<()> {
        server.set_node_state(name, NodeState::Down)?;
        self.installing.insert(name.to_string(), server.now() + self.reinstall_seconds);
        Ok(())
    }

    /// Advance the reinstall at the server's current time: finish
    /// installs whose time elapsed (nodes return to `Free`), and start
    /// installs on any drained nodes. Call after every
    /// `PbsServer::advance_to`.
    pub fn tick(&mut self, server: &mut PbsServer) -> Result<ReinstallPhase> {
        let now = server.now();

        // Completions.
        let finished: Vec<String> = self
            .installing
            .iter()
            .filter(|(_, end)| **end <= now)
            .map(|(n, _)| n.clone())
            .collect();
        for name in finished {
            self.installing.remove(&name);
            server.set_node_state(&name, NodeState::Free)?;
            self.done.push(name);
        }

        // Newly-drained nodes: marked Offline AND no longer occupied by a
        // running job (a draining node keeps its job until completion).
        let drained: Vec<String> = self
            .pending
            .iter()
            .filter(|n| {
                server.node_state(n).map(|s| s == NodeState::Offline).unwrap_or(false)
                    && !server.node_running_job(n)
            })
            .cloned()
            .collect();
        for name in drained {
            self.pending.retain(|n| n != &name);
            self.begin_node(server, &name)?;
        }

        // Stuck-job detection: a node still pending past the drain
        // deadline will never come free on its own (its job overran, or
        // it was already `Down` when the reinstall started). Surface a
        // typed error naming the node instead of stalling silently.
        if let Some(timeout) = self.drain_timeout_s {
            if now >= self.started_at + timeout - 1e-9 {
                if let Some(stuck) = self.pending.first() {
                    return Err(PbsError::DrainTimeout { node: stuck.clone() });
                }
            }
        }

        Ok(if self.pending.is_empty() && self.installing.is_empty() {
            ReinstallPhase::Complete
        } else {
            ReinstallPhase::InProgress
        })
    }

    /// Earliest pending completion, for event-driven callers.
    pub fn next_completion(&self) -> Option<f64> {
        self.installing.values().copied().min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Earliest event the reinstall itself will produce: an install
    /// completion, or — when a drain timeout is set and nodes are still
    /// pending — the drain deadline. Event loops must advance to this
    /// time (not just [`ReinstallJob::next_completion`]) or a stuck drain
    /// never reaches its deadline and the typed error never fires.
    pub fn next_event(&self) -> Option<f64> {
        let deadline = match (&self.drain_timeout_s, self.pending.is_empty()) {
            (Some(t), false) => Some(self.started_at + t),
            _ => None,
        };
        match (self.next_completion(), deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Nodes already reinstalled.
    pub fn completed_nodes(&self) -> &[String] {
        &self.done
    }
}

/// Drive a full rolling reinstall to completion alongside the scheduler,
/// letting running jobs finish undisturbed. Returns the time the last
/// node returned to service.
pub fn roll_cluster(server: &mut PbsServer, reinstall_seconds: f64) -> Result<f64> {
    roll_cluster_inner(server, reinstall_seconds, None)
}

/// [`roll_cluster`] with stuck-drain detection: if any node is still not
/// drained `drain_timeout_s` seconds in, the roll fails with
/// [`PbsError::DrainTimeout`] naming the node.
pub fn roll_cluster_with_timeout(
    server: &mut PbsServer,
    reinstall_seconds: f64,
    drain_timeout_s: f64,
) -> Result<f64> {
    roll_cluster_inner(server, reinstall_seconds, Some(drain_timeout_s))
}

fn roll_cluster_inner(
    server: &mut PbsServer,
    reinstall_seconds: f64,
    drain_timeout_s: Option<f64>,
) -> Result<f64> {
    let mut job = match drain_timeout_s {
        Some(t) => ReinstallJob::start_with_timeout(server, reinstall_seconds, t)?,
        None => ReinstallJob::start(server, reinstall_seconds)?,
    };
    loop {
        if job.tick(server)? == ReinstallPhase::Complete {
            return Ok(server.now());
        }
        // Next event: a job completion, a reinstall completion, or the
        // drain deadline.
        let next = match (server.next_completion(), job.next_event()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                return Err(PbsError::BadState("reinstall stalled with no pending events"))
            }
        };
        server.advance_to(next);
        crate::scheduler::schedule(server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::schedule;
    use crate::server::JobState;

    fn server(n: usize) -> PbsServer {
        let mut s = PbsServer::new();
        for i in 0..n {
            s.add_node(&format!("compute-0-{i}"));
        }
        s
    }

    #[test]
    fn idle_cluster_reinstalls_immediately() {
        let mut s = server(4);
        let end = roll_cluster(&mut s, 600.0).unwrap();
        assert!((end - 600.0).abs() < 1e-6);
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 4);
    }

    #[test]
    fn running_jobs_are_never_disturbed() {
        let mut s = server(4);
        let job = s.qsub("science", 2, 500.0).unwrap();
        schedule(&mut s);
        let end = roll_cluster(&mut s, 600.0).unwrap();
        // The running job completed normally...
        assert!(matches!(s.job(job).unwrap().state, JobState::Done { .. }));
        // ...and its nodes reinstalled after it finished: 500 s of job +
        // 600 s of reinstall.
        assert!((end - 1100.0).abs() < 1e-6, "end {end}");
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 4);
    }

    #[test]
    fn idle_nodes_reinstall_while_jobs_run() {
        let mut s = server(4);
        s.qsub("science", 2, 2000.0).unwrap();
        schedule(&mut s);
        let mut job = ReinstallJob::start(&mut s, 600.0).unwrap();
        // The two idle nodes start immediately.
        assert_eq!(s.nodes_in_state(NodeState::Down).len(), 2);
        s.advance_to(600.0);
        job.tick(&mut s).unwrap();
        assert_eq!(job.completed_nodes().len(), 2);
        // The busy pair is still draining.
        assert_eq!(s.nodes_in_state(NodeState::Offline).len(), 2);
    }

    #[test]
    fn queued_work_resumes_after_roll() {
        let mut s = server(2);
        let end = roll_cluster(&mut s, 300.0).unwrap();
        assert!((end - 300.0).abs() < 1e-6);
        // Post-roll, the cluster schedules normally.
        let id = s.qsub("next", 2, 10.0).unwrap();
        let started = schedule(&mut s);
        assert_eq!(started, vec![id]);
    }

    #[test]
    fn next_completion_exposes_install_horizon() {
        let mut s = server(1);
        let job = ReinstallJob::start(&mut s, 42.0).unwrap();
        assert_eq!(job.next_completion(), Some(42.0));
    }

    #[test]
    fn stuck_drain_surfaces_typed_error_with_timeout() {
        // compute-0-3 is already Down (failed hardware): its "drain"
        // can never complete because no job will ever release it.
        let mut s = server(4);
        s.set_node_state("compute-0-3", NodeState::Down).unwrap();
        let err = roll_cluster_with_timeout(&mut s, 600.0, 900.0).unwrap_err();
        assert_eq!(err, PbsError::DrainTimeout { node: "compute-0-3".into() });
        // The deadline is an event: the clock advanced to it rather than
        // erroring at t=0 or spinning forever.
        assert!((s.now() - 900.0).abs() < 1e-6, "now {}", s.now());
    }

    #[test]
    fn stuck_drain_without_timeout_keeps_legacy_stall_error() {
        // Regression guard for the pre-timeout behaviour: without a
        // deadline the same situation still fails (generic stall), it
        // just cannot name the node.
        let mut s = server(2);
        s.set_node_state("compute-0-1", NodeState::Down).unwrap();
        let err = roll_cluster(&mut s, 600.0).unwrap_err();
        assert!(matches!(err, PbsError::BadState(_)), "got {err:?}");
    }

    #[test]
    fn timeout_does_not_fire_when_drains_complete_in_time() {
        let mut s = server(4);
        let job = s.qsub("science", 2, 500.0).unwrap();
        schedule(&mut s);
        // Jobs finish at t=500, well inside the 800 s deadline.
        let end = roll_cluster_with_timeout(&mut s, 600.0, 800.0).unwrap();
        assert!((end - 1100.0).abs() < 1e-6, "end {end}");
        assert!(matches!(s.job(job).unwrap().state, JobState::Done { .. }));
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 4);
    }

    #[test]
    fn tick_reports_deadline_via_next_event() {
        let mut s = server(2);
        let j = s.qsub("long", 2, 10_000.0).unwrap();
        schedule(&mut s);
        assert!(matches!(s.job(j).unwrap().state, JobState::Running { .. }));
        let mut job = ReinstallJob::start_with_timeout(&mut s, 600.0, 50.0).unwrap();
        // Nothing is installing yet, so the only event is the deadline.
        assert_eq!(job.next_event(), Some(50.0));
        s.advance_to(50.0);
        let err = job.tick(&mut s).unwrap_err();
        assert!(matches!(err, PbsError::DrainTimeout { .. }), "got {err:?}");
    }
}
