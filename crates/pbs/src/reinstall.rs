//! The "reinstall cluster" system job (paper §5).
//!
//! "After the updates are validated on a small test cluster, the
//! production system can be upgraded by submitting a 'reinstall cluster'
//! job to Maui, as not to disturb any running applications. Once the
//! reinstallation is complete, the next job will have a known, consistent
//! software base."
//!
//! Mechanically: every node is marked to drain; as nodes come free they
//! go `Down` and reinstall (the caller supplies the reinstall duration —
//! in the full system it comes from `rocks-netsim`); reinstalled nodes
//! return to service. Running jobs are never interrupted.

use crate::server::{NodeState, PbsServer};
use crate::{PbsError, Result};
use std::collections::BTreeMap;

/// Progress of a rolling reinstall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReinstallPhase {
    /// Nodes still draining or reinstalling.
    InProgress,
    /// Every node has been reinstalled and returned to service.
    Complete,
}

/// A rolling cluster reinstall driven alongside the scheduler.
#[derive(Debug)]
pub struct ReinstallJob {
    /// Nodes still waiting to start their reinstall.
    pending: Vec<String>,
    /// Nodes reinstalling: name → completion time.
    installing: BTreeMap<String, f64>,
    /// Nodes finished.
    done: Vec<String>,
    /// Seconds one reinstall takes (from the netsim calibration).
    reinstall_seconds: f64,
}

impl ReinstallJob {
    /// Begin a rolling reinstall of every node. Idle nodes are taken
    /// immediately; busy nodes are marked `Offline` so the scheduler
    /// stops giving them new work.
    pub fn start(server: &mut PbsServer, reinstall_seconds: f64) -> Result<ReinstallJob> {
        let mut job = ReinstallJob {
            pending: Vec::new(),
            installing: BTreeMap::new(),
            done: Vec::new(),
            reinstall_seconds,
        };
        for name in server.node_names() {
            match server.node_state(&name)? {
                NodeState::Free => job.begin_node(server, &name)?,
                NodeState::Busy => {
                    server.set_node_state(&name, NodeState::Offline)?;
                    job.pending.push(name);
                }
                NodeState::Offline | NodeState::Down => job.pending.push(name),
            }
        }
        Ok(job)
    }

    fn begin_node(&mut self, server: &mut PbsServer, name: &str) -> Result<()> {
        server.set_node_state(name, NodeState::Down)?;
        self.installing.insert(name.to_string(), server.now() + self.reinstall_seconds);
        Ok(())
    }

    /// Advance the reinstall at the server's current time: finish
    /// installs whose time elapsed (nodes return to `Free`), and start
    /// installs on any drained nodes. Call after every
    /// `PbsServer::advance_to`.
    pub fn tick(&mut self, server: &mut PbsServer) -> Result<ReinstallPhase> {
        let now = server.now();

        // Completions.
        let finished: Vec<String> = self
            .installing
            .iter()
            .filter(|(_, end)| **end <= now)
            .map(|(n, _)| n.clone())
            .collect();
        for name in finished {
            self.installing.remove(&name);
            server.set_node_state(&name, NodeState::Free)?;
            self.done.push(name);
        }

        // Newly-drained nodes: marked Offline AND no longer occupied by a
        // running job (a draining node keeps its job until completion).
        let drained: Vec<String> = self
            .pending
            .iter()
            .filter(|n| {
                server.node_state(n).map(|s| s == NodeState::Offline).unwrap_or(false)
                    && !server.node_running_job(n)
            })
            .cloned()
            .collect();
        for name in drained {
            self.pending.retain(|n| n != &name);
            self.begin_node(server, &name)?;
        }

        Ok(if self.pending.is_empty() && self.installing.is_empty() {
            ReinstallPhase::Complete
        } else {
            ReinstallPhase::InProgress
        })
    }

    /// Earliest pending completion, for event-driven callers.
    pub fn next_completion(&self) -> Option<f64> {
        self.installing.values().copied().min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Nodes already reinstalled.
    pub fn completed_nodes(&self) -> &[String] {
        &self.done
    }
}

/// Drive a full rolling reinstall to completion alongside the scheduler,
/// letting running jobs finish undisturbed. Returns the time the last
/// node returned to service.
pub fn roll_cluster(server: &mut PbsServer, reinstall_seconds: f64) -> Result<f64> {
    let mut job = ReinstallJob::start(server, reinstall_seconds)?;
    loop {
        if job.tick(server)? == ReinstallPhase::Complete {
            return Ok(server.now());
        }
        // Next event: a job completion or a reinstall completion.
        let next = match (server.next_completion(), job.next_completion()) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                return Err(PbsError::BadState("reinstall stalled with no pending events"))
            }
        };
        server.advance_to(next);
        crate::scheduler::schedule(server);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::schedule;
    use crate::server::JobState;

    fn server(n: usize) -> PbsServer {
        let mut s = PbsServer::new();
        for i in 0..n {
            s.add_node(&format!("compute-0-{i}"));
        }
        s
    }

    #[test]
    fn idle_cluster_reinstalls_immediately() {
        let mut s = server(4);
        let end = roll_cluster(&mut s, 600.0).unwrap();
        assert!((end - 600.0).abs() < 1e-6);
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 4);
    }

    #[test]
    fn running_jobs_are_never_disturbed() {
        let mut s = server(4);
        let job = s.qsub("science", 2, 500.0).unwrap();
        schedule(&mut s);
        let end = roll_cluster(&mut s, 600.0).unwrap();
        // The running job completed normally...
        assert!(matches!(s.job(job).unwrap().state, JobState::Done { .. }));
        // ...and its nodes reinstalled after it finished: 500 s of job +
        // 600 s of reinstall.
        assert!((end - 1100.0).abs() < 1e-6, "end {end}");
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 4);
    }

    #[test]
    fn idle_nodes_reinstall_while_jobs_run() {
        let mut s = server(4);
        s.qsub("science", 2, 2000.0).unwrap();
        schedule(&mut s);
        let mut job = ReinstallJob::start(&mut s, 600.0).unwrap();
        // The two idle nodes start immediately.
        assert_eq!(s.nodes_in_state(NodeState::Down).len(), 2);
        s.advance_to(600.0);
        job.tick(&mut s).unwrap();
        assert_eq!(job.completed_nodes().len(), 2);
        // The busy pair is still draining.
        assert_eq!(s.nodes_in_state(NodeState::Offline).len(), 2);
    }

    #[test]
    fn queued_work_resumes_after_roll() {
        let mut s = server(2);
        let end = roll_cluster(&mut s, 300.0).unwrap();
        assert!((end - 300.0).abs() < 1e-6);
        // Post-roll, the cluster schedules normally.
        let id = s.qsub("next", 2, 10.0).unwrap();
        let started = schedule(&mut s);
        assert_eq!(started, vec![id]);
    }

    #[test]
    fn next_completion_exposes_install_horizon() {
        let mut s = server(1);
        let job = ReinstallJob::start(&mut s, 42.0).unwrap();
        assert_eq!(job.next_completion(), Some(42.0));
    }
}
