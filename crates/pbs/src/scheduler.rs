//! The Maui-like scheduler: FIFO priority with conservative backfill.
//!
//! Maui's "rich scheduling functionality" (§4.1) — the piece that matters
//! for the paper's workflows — is backfill: the head of the queue gets a
//! *reservation* at the earliest time enough nodes will be free, and
//! smaller jobs may jump ahead only if they provably finish before that
//! reservation.

use crate::server::{JobId, JobState, NodeState, PbsServer};

/// One scheduling pass at the server's current time. Starts every job
/// that can start now under FIFO + conservative backfill. Returns the
/// ids started.
pub fn schedule(server: &mut PbsServer) -> Vec<JobId> {
    let mut started = Vec::new();
    loop {
        let free: Vec<String> = server.nodes_in_state(NodeState::Free);
        let queue = server.queued();
        let Some(&head) = queue.first() else { break };
        let head_nodes = server.job(head).expect("queued job exists").nodes;

        if head_nodes <= free.len() {
            // Head starts immediately.
            let assigned: Vec<String> = free.into_iter().take(head_nodes).collect();
            server.start_job(head, assigned).expect("nodes are free");
            started.push(head);
            continue;
        }

        // Head cannot start: compute its reservation, then try backfill.
        let Some(reservation) = reservation_time(server, head_nodes) else {
            // Not enough capacity will ever free up (draining shrank the
            // cluster); nothing more to do this pass.
            break;
        };

        let mut any_backfilled = false;
        for &candidate in queue.iter().skip(1) {
            let job = server.job(candidate).expect("queued job exists");
            let free_now = server.nodes_in_state(NodeState::Free);
            if job.nodes <= free_now.len() && server.now() + job.walltime_s <= reservation + 1e-9 {
                let assigned: Vec<String> = free_now.into_iter().take(job.nodes).collect();
                server.start_job(candidate, assigned).expect("nodes are free");
                started.push(candidate);
                any_backfilled = true;
            }
        }
        if !any_backfilled {
            break;
        }
        // Backfill may have consumed nodes; loop to re-evaluate (the head
        // still cannot start — backfill never delays the reservation).
        break;
    }
    started
}

/// Earliest time at which `wanted` nodes will be simultaneously free,
/// assuming running jobs end at their walltime and no new work arrives.
/// `None` if the schedulable node count can never reach `wanted`.
fn reservation_time(server: &PbsServer, wanted: usize) -> Option<f64> {
    let mut free = server.nodes_in_state(NodeState::Free).len();
    if free >= wanted {
        return Some(server.now());
    }
    // Sort running jobs by finish time; nodes return as jobs end (unless
    // the node is draining).
    let mut endings: Vec<(f64, usize)> = server
        .jobs()
        .filter_map(|j| match &j.state {
            JobState::Running { nodes, .. } => {
                let returning = nodes
                    .iter()
                    .filter(|n| server.node_state(n).map(|s| s == NodeState::Busy).unwrap_or(false))
                    .count();
                j.finish_time().map(|t| (t, returning))
            }
            _ => None,
        })
        .collect();
    endings.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    for (t, returning) in endings {
        free += returning;
        if free >= wanted {
            return Some(t);
        }
    }
    None
}

/// Rank `among` by how soon each node can be handed to the installer and
/// return up to `k` names: idle nodes first (they drain instantly), then
/// busy nodes by their running job's finish time, then nodes already out
/// of scheduling (`Offline`/`Down`) last. Ties break by name so drain
/// selection is deterministic. This is the rollout orchestrator's
/// drain-target policy: it minimizes the time reinstall capacity sits
/// idle waiting for jobs to finish.
pub fn drain_candidates(server: &PbsServer, among: &[String], k: usize) -> Vec<String> {
    let mut ranked: Vec<(f64, String)> = among
        .iter()
        .filter_map(|name| {
            let release = match server.node_state(name).ok()? {
                NodeState::Free => server.now(),
                NodeState::Busy => {
                    server.job_on_node(name).and_then(|j| j.finish_time()).unwrap_or(f64::INFINITY)
                }
                NodeState::Offline | NodeState::Down => f64::INFINITY,
            };
            Some((release, name.clone()))
        })
        .collect();
    ranked.sort_by(|a, b| {
        a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.1.cmp(&b.1))
    });
    ranked.truncate(k);
    ranked.into_iter().map(|(_, name)| name).collect()
}

/// Run the cluster forward: repeatedly schedule, then jump to the next
/// job completion, until the queue drains or nothing can make progress.
/// Returns the time the last job finished.
pub fn run_to_completion(server: &mut PbsServer) -> f64 {
    loop {
        schedule(server);
        match server.next_completion() {
            Some(t) => {
                server.advance_to(t);
            }
            None => {
                // Nothing running. If jobs remain queued they are stuck
                // (cluster shrank); stop either way.
                return server.now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server(n: usize) -> PbsServer {
        let mut s = PbsServer::new();
        for i in 0..n {
            s.add_node(&format!("compute-0-{i}"));
        }
        s
    }

    #[test]
    fn fifo_start_order() {
        let mut s = server(4);
        let a = s.qsub("a", 2, 100.0).unwrap();
        let b = s.qsub("b", 2, 100.0).unwrap();
        let c = s.qsub("c", 2, 100.0).unwrap();
        let started = schedule(&mut s);
        assert_eq!(started, vec![a, b]);
        assert!(matches!(s.job(c).unwrap().state, JobState::Queued));
    }

    #[test]
    fn backfill_small_job_jumps_ahead_without_delaying_head() {
        let mut s = server(4);
        // Fill 3 of 4 nodes for 100 s.
        let running = s.qsub("big-running", 3, 100.0).unwrap();
        schedule(&mut s);
        assert!(matches!(s.job(running).unwrap().state, JobState::Running { .. }));
        // Head needs all 4 → reservation at t=100.
        let head = s.qsub("head", 4, 50.0).unwrap();
        // A 1-node 80 s job fits before t=100 on the free node.
        let filler = s.qsub("filler", 1, 80.0).unwrap();
        // A 1-node 200 s job would delay the head: must NOT start.
        let blocker = s.qsub("blocker", 1, 200.0).unwrap();
        let started = schedule(&mut s);
        assert_eq!(started, vec![filler]);
        assert!(matches!(s.job(head).unwrap().state, JobState::Queued));
        assert!(matches!(s.job(blocker).unwrap().state, JobState::Queued));

        // When the big job ends, the head starts.
        s.advance_to(100.0);
        let started = schedule(&mut s);
        assert_eq!(started, vec![head]);
    }

    #[test]
    fn run_to_completion_drains_queue() {
        let mut s = server(2);
        for i in 0..5 {
            s.qsub(&format!("j{i}"), 1, 10.0 + i as f64).unwrap();
        }
        let end = run_to_completion(&mut s);
        assert!(s.queued().is_empty());
        assert!(s.running().is_empty());
        // 5 jobs on 2 nodes, ~10-14 s each → ends around 34-38 s.
        assert!((30.0..45.0).contains(&end), "end {end}");
    }

    #[test]
    fn draining_cluster_strands_oversized_head() {
        let mut s = server(4);
        for i in 0..3 {
            s.set_node_state(&format!("compute-0-{i}"), NodeState::Offline).unwrap();
        }
        let head = s.qsub("needs-2", 2, 10.0).unwrap();
        let started = schedule(&mut s);
        assert!(started.is_empty());
        assert!(matches!(s.job(head).unwrap().state, JobState::Queued));
    }

    #[test]
    fn drain_candidates_prefer_idle_then_earliest_finish() {
        let mut s = server(4);
        // compute-0-0 busy until t=100, compute-0-1 busy until t=30,
        // compute-0-2 free, compute-0-3 already down.
        let long = s.qsub("long", 1, 100.0).unwrap();
        s.start_job(long, vec!["compute-0-0".into()]).unwrap();
        let short = s.qsub("short", 1, 30.0).unwrap();
        s.start_job(short, vec!["compute-0-1".into()]).unwrap();
        s.set_node_state("compute-0-3", NodeState::Down).unwrap();
        let among = s.node_names();
        let picks = drain_candidates(&s, &among, 3);
        assert_eq!(picks, vec!["compute-0-2", "compute-0-1", "compute-0-0"]);
        // k larger than the candidate set returns everything, ranked.
        assert_eq!(drain_candidates(&s, &among, 10).len(), 4);
    }

    #[test]
    fn reservation_accounts_for_draining_nodes() {
        let mut s = server(2);
        let a = s.qsub("a", 2, 50.0).unwrap();
        schedule(&mut s);
        // Drain one node mid-run: when `a` ends only one node returns.
        s.set_node_state("compute-0-0", NodeState::Offline).unwrap();
        let head = s.qsub("wants-2", 2, 10.0).unwrap();
        // Head can never get 2 nodes; nothing starts, nothing panics.
        s.advance_to(50.0);
        let started = schedule(&mut s);
        assert!(started.is_empty());
        assert!(matches!(s.job(head).unwrap().state, JobState::Queued));
        assert!(matches!(s.job(a).unwrap().state, JobState::Done { .. }));
    }
}
