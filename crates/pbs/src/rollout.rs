//! The rolling-reinstall orchestrator (paper §5) under live batch load.
//!
//! The paper's flagship operational story is reinstalling a *production*
//! cluster to a new distribution without disturbing running jobs: a
//! "reinstall cluster" job drains nodes through the scheduler, reinstalls
//! them in waves sized to the install server's capacity (Table I's
//! ~7-node knee), and returns them to service as they complete — all
//! while newly arriving batch jobs keep landing on the untouched portion
//! of the cluster.
//!
//! [`run_rollout`] is that orchestrator. Per node it walks
//!
//! ```text
//! Untouched ──drain──▶ Draining ──job finishes──▶ drained
//!                                (Offline, idle)
//!      drained ──capacity slot──▶ Installing ──leg done──▶ Done (Free)
//! ```
//!
//! * **Drain** marks a node `Offline`; a running job keeps its node until
//!   it finishes — work is never killed. Drain targets are ranked by
//!   [`crate::scheduler::drain_candidates`] (idle first, then earliest
//!   job finish).
//! * **The capacity governor** caps concurrent install legs at
//!   [`RolloutConfig::capacity`] and additionally pre-drains up to
//!   [`RolloutConfig::drain_ahead`] nodes so a freed install slot never
//!   waits a full job walltime for its next node.
//! * **Install legs** come from a pluggable [`InstallBackend`] — a fixed
//!   duration for unit tests, or the netsim engine (flat or
//!   tiered/federated) calibrated at the current concurrency.
//! * **Faults** are first-class: install-server flaps freeze leg
//!   progress, job bursts stress the scheduler mid-drain, and straggler
//!   nodes model the watchdog-failover penalty.
//! * **Invariants** ([`RolloutInvariant`]) are checked at every event:
//!   no job killed, every node reinstalled exactly once, capacity never
//!   exceeded, rollout terminates.
//!
//! Seeded end-to-end scenarios come from [`RolloutPlan::generate`],
//! mirroring the netsim chaos harness: bounded randomness that always
//! converges, so any invariant violation is a real orchestrator bug.

use crate::scheduler;
use crate::server::{JobState, NodeState, PbsServer};
use crate::{PbsError, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};
use rocks_trace::{Counter, Gauge, SpanGuard, Tracer};
use std::collections::BTreeMap;

/// Knobs for one rolling reinstall.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Maximum concurrent install legs (the install server's measured
    /// capacity; the paper's Table I knee is ~7).
    pub capacity: usize,
    /// How many nodes beyond `capacity` may be draining at once, so a
    /// freed install slot finds a drained node waiting instead of a busy
    /// one. `0` drains strictly on demand.
    pub drain_ahead: usize,
    /// If set, a draining node whose job is still running this many
    /// seconds after its drain began fails the rollout with
    /// [`PbsError::DrainTimeout`].
    pub drain_timeout_s: Option<f64>,
}

impl RolloutConfig {
    /// A rollout at `capacity` concurrent installs with an equal drain
    /// look-ahead and no drain timeout.
    pub fn with_capacity(capacity: usize) -> RolloutConfig {
        let capacity = capacity.max(1);
        RolloutConfig { capacity, drain_ahead: capacity, drain_timeout_s: None }
    }

    /// The naive comparator: drain the whole cluster at once and install
    /// everything concurrently — maximum install-server contention, zero
    /// job throughput while it runs.
    pub fn mass(n_nodes: usize) -> RolloutConfig {
        RolloutConfig { capacity: n_nodes.max(1), drain_ahead: n_nodes, drain_timeout_s: None }
    }
}

/// Cost of one install leg, as decided by the backend at start time.
#[derive(Debug, Clone, Copy)]
pub struct InstallLeg {
    /// Wall-clock seconds the leg takes (install-server time; frozen
    /// while the server is down).
    pub seconds: f64,
    /// Bytes the install server ships for this node.
    pub bytes: u64,
}

/// Where install legs come from. The orchestrator reports the current
/// concurrency (including the new leg) so backends can model the
/// install server's contention curve — that is exactly Table I.
pub trait InstallBackend {
    /// Called as `node`'s leg starts with `concurrent` legs in flight,
    /// counting this one.
    fn begin_install(&mut self, node: &str, concurrent: usize) -> InstallLeg;
}

/// Constant-cost backend matching [`crate::reinstall::roll_cluster`]'s
/// model: every leg takes the same time regardless of concurrency.
#[derive(Debug, Clone, Copy)]
pub struct FixedInstall {
    /// Seconds per leg.
    pub seconds: f64,
    /// Bytes per leg.
    pub bytes: u64,
}

impl InstallBackend for FixedInstall {
    fn begin_install(&mut self, _node: &str, _concurrent: usize) -> InstallLeg {
        InstallLeg { seconds: self.seconds, bytes: self.bytes }
    }
}

/// A batch job arriving while the rollout runs.
#[derive(Debug, Clone)]
pub struct JobArrival {
    /// Submission time (absolute seconds on the server clock).
    pub at: f64,
    /// `qsub -N` name.
    pub name: String,
    /// Nodes requested.
    pub nodes: usize,
    /// Walltime in seconds.
    pub walltime_s: f64,
}

/// Faults injected into a rollout — the chaos vocabulary for §5.
#[derive(Debug, Clone)]
pub enum RolloutFault {
    /// The install server goes down at `down_at` and returns at `up_at`:
    /// in-flight legs freeze (the retrying install protocol holds the
    /// nodes), no new legs start, drains continue.
    ServerFlap {
        /// Outage start (seconds).
        down_at: f64,
        /// Outage end (seconds, must exceed `down_at`).
        up_at: f64,
    },
    /// A burst of identical jobs submitted at once mid-rollout.
    JobBurst {
        /// Submission time.
        at: f64,
        /// Number of jobs in the burst.
        jobs: usize,
        /// Nodes each job requests.
        nodes_each: usize,
        /// Walltime of each job.
        walltime_s: f64,
    },
    /// One node's install leg hits the watchdog and fails over, costing
    /// `extra_seconds` on top of the backend's leg time.
    Straggler {
        /// Index into the sorted node list (wrapped modulo the cluster
        /// size, so generated plans never miss).
        node_index: usize,
        /// Failover penalty in seconds.
        extra_seconds: f64,
    },
}

/// Read-only orchestrator state handed to invariants at every event.
#[derive(Debug)]
pub struct RolloutView<'a> {
    /// Current virtual time.
    pub now: f64,
    /// Install legs in flight.
    pub installing: usize,
    /// The configured capacity cap.
    pub capacity: usize,
    /// How many times each node's install has started.
    pub install_counts: &'a BTreeMap<String, u32>,
}

/// A property the rollout must preserve. `on_event` runs after every
/// orchestrator event; `at_end` runs once with the final report.
/// Violations are collected, not fatal — a chaos sweep reports all of
/// them.
pub trait RolloutInvariant {
    /// Name used in violation reports.
    fn name(&self) -> &'static str;
    /// Check at an event boundary.
    fn on_event(
        &mut self,
        _server: &PbsServer,
        _view: &RolloutView<'_>,
    ) -> std::result::Result<(), String> {
        Ok(())
    }
    /// Check once after the rollout completes.
    fn at_end(
        &mut self,
        _server: &PbsServer,
        _report: &RolloutReport,
    ) -> std::result::Result<(), String> {
        Ok(())
    }
}

/// One invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RolloutViolation {
    /// Which invariant failed.
    pub invariant: &'static str,
    /// What it saw.
    pub detail: String,
}

/// No job is ever killed by the rollout: nothing gets cancelled, and a
/// running job's nodes are only ever `Busy` or `Offline` (a `Down` or
/// `Free` node under a running job means a drain yanked it).
#[derive(Debug, Default)]
pub struct NoJobKilled;

impl RolloutInvariant for NoJobKilled {
    fn name(&self) -> &'static str {
        "no-job-killed"
    }
    fn on_event(
        &mut self,
        server: &PbsServer,
        _view: &RolloutView<'_>,
    ) -> std::result::Result<(), String> {
        for job in server.jobs() {
            match &job.state {
                JobState::Cancelled => {
                    return Err(format!("job {} ({}) was cancelled", job.id, job.name));
                }
                JobState::Running { nodes, .. } => {
                    for n in nodes {
                        let state = server.node_state(n).map_err(|e| e.to_string())?;
                        if !matches!(state, NodeState::Busy | NodeState::Offline) {
                            return Err(format!(
                                "job {} is running on node {n} in state {state:?}",
                                job.id
                            ));
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
    fn at_end(
        &mut self,
        server: &PbsServer,
        _report: &RolloutReport,
    ) -> std::result::Result<(), String> {
        match server.jobs().find(|j| matches!(j.state, JobState::Cancelled)) {
            Some(j) => Err(format!("job {} ({}) ended cancelled", j.id, j.name)),
            None => Ok(()),
        }
    }
}

/// Every node is reinstalled exactly once.
#[derive(Debug, Default)]
pub struct ExactlyOnce;

impl RolloutInvariant for ExactlyOnce {
    fn name(&self) -> &'static str {
        "exactly-once"
    }
    fn on_event(
        &mut self,
        _server: &PbsServer,
        view: &RolloutView<'_>,
    ) -> std::result::Result<(), String> {
        match view.install_counts.iter().find(|(_, c)| **c > 1) {
            Some((n, c)) => Err(format!("node {n} install started {c} times")),
            None => Ok(()),
        }
    }
    fn at_end(
        &mut self,
        server: &PbsServer,
        report: &RolloutReport,
    ) -> std::result::Result<(), String> {
        for name in server.node_names() {
            match report.install_counts.get(&name) {
                Some(1) => {}
                Some(c) => return Err(format!("node {name} installed {c} times")),
                None => return Err(format!("node {name} was never reinstalled")),
            }
        }
        Ok(())
    }
}

/// Concurrent install legs never exceed the configured capacity.
#[derive(Debug, Default)]
pub struct CapRespected;

impl RolloutInvariant for CapRespected {
    fn name(&self) -> &'static str {
        "cap-respected"
    }
    fn on_event(
        &mut self,
        _server: &PbsServer,
        view: &RolloutView<'_>,
    ) -> std::result::Result<(), String> {
        if view.installing > view.capacity {
            Err(format!("{} legs in flight, capacity {}", view.installing, view.capacity))
        } else {
            Ok(())
        }
    }
}

/// The rollout finishes within an analytic worst-case bound (e.g.
/// [`RolloutPlan::worst_case_seconds`]) — a runaway event loop or a
/// starved wave shows up here.
#[derive(Debug)]
pub struct Termination {
    /// Upper bound on the makespan, in seconds.
    pub bound_seconds: f64,
}

impl RolloutInvariant for Termination {
    fn name(&self) -> &'static str {
        "termination"
    }
    fn at_end(
        &mut self,
        _server: &PbsServer,
        report: &RolloutReport,
    ) -> std::result::Result<(), String> {
        if report.makespan_seconds > self.bound_seconds {
            Err(format!(
                "makespan {:.1}s exceeds bound {:.1}s",
                report.makespan_seconds, self.bound_seconds
            ))
        } else {
            Ok(())
        }
    }
}

/// The standard invariant set: no job killed, exactly-once reinstall,
/// capacity respected, termination within `makespan_bound` seconds.
pub fn standard_rollout_invariants(makespan_bound: f64) -> Vec<Box<dyn RolloutInvariant>> {
    vec![
        Box::new(NoJobKilled),
        Box::new(ExactlyOnce),
        Box::new(CapRespected),
        Box::new(Termination { bound_seconds: makespan_bound }),
    ]
}

/// What one rollout did.
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// Seconds from rollout start to the last node's readmission.
    pub makespan_seconds: f64,
    /// Nodes in readmission order.
    pub reinstalled: Vec<String>,
    /// How many times each node's install leg started (exactly-once
    /// evidence).
    pub install_counts: BTreeMap<String, u32>,
    /// Seconds each node spent installing (flap pauses included).
    pub per_node_install_seconds: BTreeMap<String, f64>,
    /// Seconds each node spent draining before its install started.
    pub per_node_drain_seconds: BTreeMap<String, f64>,
    /// Bytes the install server shipped per node.
    pub per_node_bytes: BTreeMap<String, u64>,
    /// Total bytes shipped.
    pub total_bytes: u64,
    /// Highest concurrent-leg count observed.
    pub max_concurrent_installs: usize,
    /// Jobs the scheduler started during the rollout.
    pub jobs_started_during: u64,
    /// Jobs that completed during the rollout.
    pub jobs_completed_during: u64,
    /// Integral of busy nodes over the rollout window (node-seconds of
    /// useful work delivered while reinstalling — the throughput
    /// retention numerator).
    pub busy_node_seconds: f64,
    /// Seconds install legs sat frozen behind a server outage.
    pub flap_pause_seconds: f64,
    /// Straggler watchdog failovers charged.
    pub straggler_failovers: u64,
}

impl RolloutReport {
    /// Mean install-leg seconds across nodes.
    pub fn mean_install_seconds(&self) -> f64 {
        if self.per_node_install_seconds.is_empty() {
            return 0.0;
        }
        self.per_node_install_seconds.values().sum::<f64>()
            / self.per_node_install_seconds.len() as f64
    }
}

/// A completed rollout plus any invariant violations observed.
#[derive(Debug)]
pub struct RolloutOutcome {
    /// The measurements.
    pub report: RolloutReport,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<RolloutViolation>,
}

struct Telemetry {
    drained: Counter,
    install_started: Counter,
    readmitted: Counter,
    jobs_started: Counter,
    jobs_completed: Counter,
    bytes: Counter,
    stragglers: Counter,
    flap_pauses: Counter,
    installing: Gauge,
}

impl Telemetry {
    fn from(tracer: &Tracer) -> Option<Telemetry> {
        tracer.registry().map(|r| Telemetry {
            drained: r.counter("rollout.drained"),
            install_started: r.counter("rollout.install.started"),
            readmitted: r.counter("rollout.readmitted"),
            jobs_started: r.counter("rollout.jobs.started"),
            jobs_completed: r.counter("rollout.jobs.completed"),
            bytes: r.counter("rollout.bytes.total"),
            stragglers: r.counter("rollout.straggler.failovers"),
            flap_pauses: r.counter("rollout.flap.pauses"),
            installing: r.gauge("rollout.installing"),
        })
    }
}

const EPS: f64 = 1e-9;

fn micros(t: f64) -> u64 {
    (t * 1e6).max(0.0) as u64
}

/// Roll every node of `server` onto the new distribution without killing
/// running work, while the scheduler keeps placing arriving jobs on the
/// rest of the cluster. Returns the report and any invariant violations;
/// a typed error ([`PbsError::DrainTimeout`], or `BadState` on a stalled
/// event loop) aborts the rollout.
pub fn run_rollout(
    server: &mut PbsServer,
    backend: &mut dyn InstallBackend,
    cfg: &RolloutConfig,
    arrivals: &[JobArrival],
    faults: &[RolloutFault],
    invariants: &mut [Box<dyn RolloutInvariant>],
    tracer: &Tracer,
) -> Result<RolloutOutcome> {
    let node_order = server.node_names();
    let n = node_order.len();
    if n == 0 {
        return Err(PbsError::BadState("rollout on an empty cluster"));
    }
    if cfg.capacity == 0 {
        return Err(PbsError::BadState("rollout capacity must be at least 1"));
    }
    let start = server.now();

    // Expand bursts into the arrival stream and sort by time.
    let mut arrivals: Vec<JobArrival> = arrivals.to_vec();
    for fault in faults {
        if let RolloutFault::JobBurst { at, jobs, nodes_each, walltime_s } = fault {
            for i in 0..*jobs {
                arrivals.push(JobArrival {
                    at: *at,
                    name: format!("burst-{at:.0}-{i}"),
                    nodes: *nodes_each,
                    walltime_s: *walltime_s,
                });
            }
        }
    }
    for a in &mut arrivals {
        a.at = a.at.max(start);
    }
    arrivals.sort_by(|a, b| {
        a.at.partial_cmp(&b.at)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });

    // Install-server outage boundaries: (time, server_goes_down).
    let mut boundaries: Vec<(f64, bool)> = Vec::new();
    for fault in faults {
        if let RolloutFault::ServerFlap { down_at, up_at } = fault {
            if up_at > down_at {
                boundaries.push((down_at.max(start), true));
                boundaries.push((*up_at, false));
            }
        }
    }
    boundaries.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));

    // Straggler penalties, resolved to node names.
    let mut straggler_extra: BTreeMap<String, f64> = BTreeMap::new();
    for fault in faults {
        if let RolloutFault::Straggler { node_index, extra_seconds } = fault {
            *straggler_extra.entry(node_order[node_index % n].clone()).or_insert(0.0) +=
                extra_seconds.max(0.0);
        }
    }

    let tel = Telemetry::from(tracer);
    tracer.set_time(micros(start));

    let mut untouched: Vec<String> = node_order.clone();
    let mut draining: BTreeMap<String, f64> = BTreeMap::new(); // name → drain start
    let mut installing: BTreeMap<String, f64> = BTreeMap::new(); // name → seconds remaining
    let mut install_started_at: BTreeMap<String, f64> = BTreeMap::new();
    let mut spans: BTreeMap<String, SpanGuard> = BTreeMap::new();

    let mut report = RolloutReport {
        makespan_seconds: 0.0,
        reinstalled: Vec::new(),
        install_counts: BTreeMap::new(),
        per_node_install_seconds: BTreeMap::new(),
        per_node_drain_seconds: BTreeMap::new(),
        per_node_bytes: BTreeMap::new(),
        total_bytes: 0,
        max_concurrent_installs: 0,
        jobs_started_during: 0,
        jobs_completed_during: 0,
        busy_node_seconds: 0.0,
        flap_pause_seconds: 0.0,
        straggler_failovers: 0,
    };
    let mut violations: Vec<RolloutViolation> = Vec::new();

    let mut now = start;
    let mut arr_idx = 0usize;
    let mut boundary_idx = 0usize;
    let mut server_up = true;

    loop {
        // 1. Apply outage boundaries that are due.
        while boundary_idx < boundaries.len() && boundaries[boundary_idx].0 <= now + EPS {
            server_up = !boundaries[boundary_idx].1;
            boundary_idx += 1;
        }

        // 2. Readmit nodes whose install leg finished.
        let finished: Vec<String> = installing
            .iter()
            .filter(|(_, rem)| **rem <= EPS)
            .map(|(name, _)| name.clone())
            .collect();
        for name in finished {
            installing.remove(&name);
            server.set_node_state(&name, NodeState::Free)?;
            let began = install_started_at[&name];
            report.per_node_install_seconds.insert(name.clone(), now - began);
            report.reinstalled.push(name.clone());
            spans.remove(&name); // closes the install span at `now`
            if let Some(t) = &tel {
                t.readmitted.incr();
                t.installing.set(installing.len() as f64);
            }
        }

        // 3. Stuck-drain detection: a node still occupied past its drain
        //    deadline fails the rollout with a typed error.
        if let Some(timeout) = cfg.drain_timeout_s {
            for (name, since) in &draining {
                if now - since >= timeout - EPS && server.node_running_job(name) {
                    return Err(PbsError::DrainTimeout { node: name.clone() });
                }
            }
        }

        // 4. Admit arrivals that are due (oversized requests are
        //    rejected by qsub exactly as real PBS would).
        while arr_idx < arrivals.len() && arrivals[arr_idx].at <= now + EPS {
            let a = &arrivals[arr_idx];
            let _ = server.qsub(&a.name, a.nodes, a.walltime_s);
            arr_idx += 1;
        }

        // 5. Pick new drain targets up to capacity + drain_ahead.
        let out_now = draining.len() + installing.len();
        let target_out = cfg.capacity + cfg.drain_ahead;
        if out_now < target_out && !untouched.is_empty() {
            let picks = scheduler::drain_candidates(server, &untouched, target_out - out_now);
            for name in picks {
                untouched.retain(|u| u != &name);
                server.set_node_state(&name, NodeState::Offline)?;
                draining.insert(name.clone(), now);
                spans.insert(name.clone(), tracer.span("rollout.drain"));
                if let Some(t) = &tel {
                    t.drained.incr();
                }
            }
        }

        // 6. Start install legs on drained nodes while capacity allows
        //    (never during an install-server outage).
        while server_up && installing.len() < cfg.capacity {
            let Some(name) = draining
                .iter()
                .find(|(name, _)| !server.node_running_job(name))
                .map(|(name, _)| name.clone())
            else {
                break;
            };
            let since = draining.remove(&name).expect("just found");
            report.per_node_drain_seconds.insert(name.clone(), now - since);
            server.set_node_state(&name, NodeState::Down)?;
            let leg = backend.begin_install(&name, installing.len() + 1);
            let mut seconds = leg.seconds.max(1e-3);
            if let Some(extra) = straggler_extra.get(&name) {
                seconds += extra;
                report.straggler_failovers += 1;
                if let Some(t) = &tel {
                    t.stragglers.incr();
                }
            }
            installing.insert(name.clone(), seconds);
            install_started_at.insert(name.clone(), now);
            *report.install_counts.entry(name.clone()).or_insert(0) += 1;
            report.per_node_bytes.insert(name.clone(), leg.bytes);
            report.total_bytes += leg.bytes;
            report.max_concurrent_installs = report.max_concurrent_installs.max(installing.len());
            spans.insert(name.clone(), tracer.span("rollout.install"));
            if let Some(t) = &tel {
                t.install_started.incr();
                t.bytes.add(leg.bytes);
                t.installing.set(installing.len() as f64);
            }
        }

        // 7. Keep the batch system flowing on the rest of the cluster.
        let started = scheduler::schedule(server);
        report.jobs_started_during += started.len() as u64;
        if let Some(t) = &tel {
            t.jobs_started.add(started.len() as u64);
        }

        // 8. Invariants see every event boundary.
        let view = RolloutView {
            now,
            installing: installing.len(),
            capacity: cfg.capacity,
            install_counts: &report.install_counts,
        };
        for inv in invariants.iter_mut() {
            if let Err(detail) = inv.on_event(server, &view) {
                violations.push(RolloutViolation { invariant: inv.name(), detail });
            }
        }

        // 9. Done?
        if untouched.is_empty() && draining.is_empty() && installing.is_empty() {
            break;
        }

        // 10. Find the next event.
        let mut next: Option<f64> = None;
        let mut consider = |t: f64| {
            if t > now + EPS {
                next = Some(next.map_or(t, |cur: f64| cur.min(t)));
            }
        };
        if let Some(t) = server.next_completion() {
            consider(t);
        }
        if server_up {
            if let Some(rem) =
                installing.values().copied().min_by(|a, b| a.partial_cmp(b).expect("finite"))
            {
                consider(now + rem);
            }
        }
        if arr_idx < arrivals.len() {
            consider(arrivals[arr_idx].at);
        }
        if boundary_idx < boundaries.len() {
            consider(boundaries[boundary_idx].0);
        }
        if let Some(timeout) = cfg.drain_timeout_s {
            for (name, since) in &draining {
                if server.node_running_job(name) {
                    consider(since + timeout);
                }
            }
        }
        let Some(t) = next else {
            return Err(PbsError::BadState("rollout stalled with no pending events"));
        };

        // 11. Advance: integrate throughput, tick install legs (frozen
        //     while the install server is down), complete jobs.
        let dt = t - now;
        report.busy_node_seconds += server.nodes_in_state(NodeState::Busy).len() as f64 * dt;
        if server_up {
            for rem in installing.values_mut() {
                *rem = (*rem - dt).max(0.0);
            }
        } else if !installing.is_empty() {
            report.flap_pause_seconds += dt;
            if let Some(tl) = &tel {
                tl.flap_pauses.incr();
            }
        }
        let completed = server.advance_to(t);
        report.jobs_completed_during += completed.len() as u64;
        if let Some(tl) = &tel {
            tl.jobs_completed.add(completed.len() as u64);
        }
        now = t;
        tracer.set_time(micros(now));
    }

    report.makespan_seconds = now - start;
    for inv in invariants.iter_mut() {
        if let Err(detail) = inv.at_end(server, &report) {
            violations.push(RolloutViolation { invariant: inv.name(), detail });
        }
    }
    Ok(RolloutOutcome { report, violations })
}

/// One invariant violation tagged with the seed that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeededViolation {
    /// The plan seed.
    pub seed: u64,
    /// Which invariant failed (or `"no-error"` for an aborted run).
    pub invariant: &'static str,
    /// What it saw.
    pub detail: String,
}

/// Outcome of running one generated plan.
#[derive(Debug)]
pub struct RolloutRecord {
    /// The plan seed.
    pub seed: u64,
    /// The report, if the rollout ran to completion.
    pub report: Option<RolloutReport>,
    /// Every violation observed (errors count as `"no-error"`).
    pub violations: Vec<SeededViolation>,
}

/// A seeded, bounded, always-convergent rollout scenario — the chaos
/// harness for §5. Same seed, same plan, same outcome.
#[derive(Debug, Clone)]
pub struct RolloutPlan {
    /// Generator seed.
    pub seed: u64,
    /// Cluster size.
    pub n_nodes: usize,
    /// Install capacity.
    pub capacity: usize,
    /// Drain look-ahead.
    pub drain_ahead: usize,
    /// Fixed install-leg seconds.
    pub install_seconds: f64,
    /// Fixed install-leg bytes.
    pub install_bytes: u64,
    /// Jobs queued (and scheduled) before the rollout starts:
    /// `(nodes, walltime_s)`.
    pub initial_jobs: Vec<(usize, f64)>,
    /// Jobs arriving mid-rollout.
    pub arrivals: Vec<JobArrival>,
    /// Injected faults.
    pub faults: Vec<RolloutFault>,
    /// Optional drain deadline (generated only with enough slack that a
    /// healthy drain always beats it).
    pub drain_timeout_s: Option<f64>,
}

/// Walltimes generated plans may use (the drain-timeout slack and the
/// termination bound both lean on this cap).
const PLAN_MAX_WALLTIME: f64 = 600.0;

impl RolloutPlan {
    /// Generate a plan from a seed. All randomness is bounded so every
    /// plan converges: walltimes ≤ [`PLAN_MAX_WALLTIME`], flaps are
    /// finite and non-overlapping, stragglers add bounded penalties.
    pub fn generate(seed: u64) -> RolloutPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_nodes = rng.gen_range(4..=32usize);
        let capacity = rng.gen_range(1..=8usize).min(n_nodes);
        let drain_ahead = rng.gen_range(0..=capacity);
        let install_seconds = rng.gen_range(120.0..900.0);
        let install_bytes = rng.gen_range(100_000_000..400_000_000u64);

        let max_job_nodes = (n_nodes / 2).max(1);
        let job_mix = |rng: &mut StdRng| {
            (rng.gen_range(1..=max_job_nodes), rng.gen_range(30.0..PLAN_MAX_WALLTIME))
        };

        let initial_jobs: Vec<(usize, f64)> =
            (0..rng.gen_range(0..=n_nodes)).map(|_| job_mix(&mut rng)).collect();

        let arrivals: Vec<JobArrival> = (0..rng.gen_range(0..=8usize))
            .map(|i| {
                let (nodes, walltime_s) = job_mix(&mut rng);
                JobArrival {
                    at: rng.gen_range(0.0..1500.0),
                    name: format!("arrival-{i}"),
                    nodes,
                    walltime_s,
                }
            })
            .collect();

        let mut faults = Vec::new();
        // Non-overlapping server flaps.
        let mut cursor = 0.0;
        for _ in 0..rng.gen_range(0..=2usize) {
            let down_at = cursor + rng.gen_range(10.0..900.0);
            let up_at = down_at + rng.gen_range(30.0..300.0);
            faults.push(RolloutFault::ServerFlap { down_at, up_at });
            cursor = up_at;
        }
        if rng.gen_bool(0.5) {
            faults.push(RolloutFault::JobBurst {
                at: rng.gen_range(0.0..600.0),
                jobs: rng.gen_range(2..=6),
                nodes_each: rng.gen_range(1..=max_job_nodes),
                walltime_s: rng.gen_range(30.0..300.0),
            });
        }
        for _ in 0..rng.gen_range(0..=2usize) {
            faults.push(RolloutFault::Straggler {
                node_index: rng.gen_range(0..n_nodes),
                extra_seconds: rng.gen_range(60.0..600.0),
            });
        }

        // A third of plans exercise the drain-deadline machinery, with
        // enough slack (> max walltime) that it never fires spuriously.
        let drain_timeout_s = if rng.gen_bool(0.3) {
            Some(PLAN_MAX_WALLTIME * 2.0 + rng.gen_range(0.0..600.0))
        } else {
            None
        };

        RolloutPlan {
            seed,
            n_nodes,
            capacity,
            drain_ahead,
            install_seconds,
            install_bytes,
            initial_jobs,
            arrivals,
            faults,
            drain_timeout_s,
        }
    }

    /// A generous analytic bound on the makespan: even a fully serial
    /// rollout (one node at a time, each waiting out a full walltime and
    /// a full install plus every straggler penalty and every outage)
    /// finishes inside this.
    pub fn worst_case_seconds(&self) -> f64 {
        let flap_total: f64 = self
            .faults
            .iter()
            .map(|f| match f {
                RolloutFault::ServerFlap { down_at, up_at } => (up_at - down_at).max(0.0),
                _ => 0.0,
            })
            .sum();
        let straggler_total: f64 = self
            .faults
            .iter()
            .map(|f| match f {
                RolloutFault::Straggler { extra_seconds, .. } => extra_seconds.max(0.0),
                _ => 0.0,
            })
            .sum();
        let last_arrival = self.arrivals.iter().map(|a| a.at).fold(0.0f64, f64::max);
        self.n_nodes as f64 * (PLAN_MAX_WALLTIME + self.install_seconds)
            + straggler_total
            + flap_total
            + last_arrival
            + PLAN_MAX_WALLTIME
            + 3600.0
    }

    /// Run the plan against a fresh cluster with the standard invariants
    /// and a fixed-cost backend. After the rollout, the scheduler runs
    /// the remaining queue to completion so `at_end` checks see the
    /// settled system. Errors become `"no-error"` violations.
    pub fn run(&self) -> RolloutRecord {
        self.run_traced(&Tracer::disabled())
    }

    /// [`RolloutPlan::run`] with an explicit tracer (golden-trace tests).
    pub fn run_traced(&self, tracer: &Tracer) -> RolloutRecord {
        let mut server = PbsServer::new();
        for i in 0..self.n_nodes {
            server.add_node(&format!("compute-0-{i}"));
        }
        for (i, (nodes, walltime_s)) in self.initial_jobs.iter().enumerate() {
            let _ = server.qsub(&format!("initial-{i}"), *nodes, *walltime_s);
        }
        scheduler::schedule(&mut server);

        let cfg = RolloutConfig {
            capacity: self.capacity,
            drain_ahead: self.drain_ahead,
            drain_timeout_s: self.drain_timeout_s,
        };
        let mut backend = FixedInstall { seconds: self.install_seconds, bytes: self.install_bytes };
        let mut invariants = standard_rollout_invariants(self.worst_case_seconds());

        match run_rollout(
            &mut server,
            &mut backend,
            &cfg,
            &self.arrivals,
            &self.faults,
            &mut invariants,
            tracer,
        ) {
            Ok(outcome) => {
                scheduler::run_to_completion(&mut server);
                let violations = outcome
                    .violations
                    .into_iter()
                    .map(|v| SeededViolation {
                        seed: self.seed,
                        invariant: v.invariant,
                        detail: v.detail,
                    })
                    .collect();
                RolloutRecord { seed: self.seed, report: Some(outcome.report), violations }
            }
            Err(e) => RolloutRecord {
                seed: self.seed,
                report: None,
                violations: vec![SeededViolation {
                    seed: self.seed,
                    invariant: "no-error",
                    detail: e.to_string(),
                }],
            },
        }
    }
}

/// Run plans for every seed in `seeds` and collect all violations.
pub fn run_rollout_sweep(seeds: std::ops::Range<u64>) -> Vec<SeededViolation> {
    seeds.flat_map(|seed| RolloutPlan::generate(seed).run().violations).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reinstall::roll_cluster;
    use crate::scheduler::schedule;

    fn server(n: usize) -> PbsServer {
        let mut s = PbsServer::new();
        for i in 0..n {
            s.add_node(&format!("compute-0-{i}"));
        }
        s
    }

    fn run_simple(
        server: &mut PbsServer,
        cfg: &RolloutConfig,
        arrivals: &[JobArrival],
        faults: &[RolloutFault],
    ) -> RolloutOutcome {
        let mut backend = FixedInstall { seconds: 600.0, bytes: 1_000 };
        let mut invariants = standard_rollout_invariants(1e9);
        run_rollout(
            server,
            &mut backend,
            cfg,
            arrivals,
            faults,
            &mut invariants,
            &Tracer::disabled(),
        )
        .expect("rollout runs")
    }

    #[test]
    fn idle_cluster_rolls_in_waves_of_capacity() {
        let mut s = server(8);
        let out = run_simple(&mut s, &RolloutConfig::with_capacity(4), &[], &[]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // Two waves of 4 nodes × 600 s.
        assert!((out.report.makespan_seconds - 1200.0).abs() < 1e-6);
        assert_eq!(out.report.max_concurrent_installs, 4);
        assert_eq!(out.report.reinstalled.len(), 8);
        assert_eq!(s.nodes_in_state(NodeState::Free).len(), 8);
    }

    #[test]
    fn zero_job_rollout_matches_roll_cluster_mass_path() {
        // Differential: with no competing jobs and full capacity, the
        // orchestrator must reproduce the legacy mass path exactly —
        // same node set, same per-node outcome, same end time.
        let n = 8;
        let mut legacy = server(n);
        let legacy_end = roll_cluster(&mut legacy, 600.0).unwrap();

        let mut s = server(n);
        let out = run_simple(&mut s, &RolloutConfig::mass(n), &[], &[]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!((out.report.makespan_seconds - legacy_end).abs() < 1e-6);
        let mut rolled = out.report.reinstalled.clone();
        rolled.sort();
        assert_eq!(rolled, legacy.node_names());
        assert!(out
            .report
            .per_node_install_seconds
            .values()
            .all(|secs| (secs - 600.0).abs() < 1e-6));
    }

    #[test]
    fn running_jobs_finish_and_new_jobs_flow_during_rollout() {
        let mut s = server(8);
        let pre = s.qsub("pre", 2, 500.0).unwrap();
        schedule(&mut s);
        let arrivals = vec![
            JobArrival { at: 100.0, name: "mid-1".into(), nodes: 2, walltime_s: 300.0 },
            JobArrival { at: 200.0, name: "mid-2".into(), nodes: 1, walltime_s: 100.0 },
        ];
        let out = run_simple(&mut s, &RolloutConfig::with_capacity(2), &arrivals, &[]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(matches!(s.job(pre).unwrap().state, JobState::Done { .. }));
        assert!(out.report.jobs_started_during >= 2, "{}", out.report.jobs_started_during);
        assert!(out.report.busy_node_seconds > 0.0);
        assert_eq!(out.report.reinstalled.len(), 8);
    }

    #[test]
    fn server_flap_freezes_install_legs() {
        let n = 4;
        let mut quiet = server(n);
        let base = run_simple(&mut quiet, &RolloutConfig::mass(n), &[], &[]);

        let mut s = server(n);
        let flap = RolloutFault::ServerFlap { down_at: 100.0, up_at: 350.0 };
        let out = run_simple(&mut s, &RolloutConfig::mass(n), &[], &[flap]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        // The 250 s outage pushes the makespan out by exactly 250 s.
        assert!(
            (out.report.makespan_seconds - (base.report.makespan_seconds + 250.0)).abs() < 1e-6,
            "flap makespan {}",
            out.report.makespan_seconds
        );
        assert!((out.report.flap_pause_seconds - 250.0).abs() < 1e-6);
    }

    #[test]
    fn straggler_penalty_is_charged_and_counted() {
        let n = 4;
        let mut s = server(n);
        let fault = RolloutFault::Straggler { node_index: 1, extra_seconds: 400.0 };
        let out = run_simple(&mut s, &RolloutConfig::mass(n), &[], &[fault]);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.report.straggler_failovers, 1);
        assert!((out.report.makespan_seconds - 1000.0).abs() < 1e-6);
        assert!(
            (out.report.per_node_install_seconds["compute-0-1"] - 1000.0).abs() < 1e-6,
            "straggler leg {:?}",
            out.report.per_node_install_seconds
        );
    }

    #[test]
    fn drain_timeout_names_the_wedged_node() {
        let mut s = server(4);
        // A job that runs far past the drain deadline.
        let j = s.qsub("wedged", 1, 50_000.0).unwrap();
        schedule(&mut s);
        let occupied = match &s.job(j).unwrap().state {
            JobState::Running { nodes, .. } => nodes[0].clone(),
            _ => unreachable!(),
        };
        let mut cfg = RolloutConfig::with_capacity(4);
        cfg.drain_timeout_s = Some(900.0);
        let mut backend = FixedInstall { seconds: 600.0, bytes: 0 };
        let err = run_rollout(
            &mut s,
            &mut backend,
            &cfg,
            &[],
            &[],
            &mut standard_rollout_invariants(1e9),
            &Tracer::disabled(),
        )
        .unwrap_err();
        assert_eq!(err, PbsError::DrainTimeout { node: occupied });
    }

    #[test]
    fn broken_invariant_is_caught_by_the_harness() {
        // An obviously false invariant must surface as a violation —
        // proof the harness actually checks things.
        struct InstallsAreInstant;
        impl RolloutInvariant for InstallsAreInstant {
            fn name(&self) -> &'static str {
                "installs-are-instant"
            }
            fn at_end(
                &mut self,
                _server: &PbsServer,
                report: &RolloutReport,
            ) -> std::result::Result<(), String> {
                if report.makespan_seconds > 0.0 {
                    Err(format!("makespan {}", report.makespan_seconds))
                } else {
                    Ok(())
                }
            }
        }
        let mut s = server(4);
        let mut backend = FixedInstall { seconds: 600.0, bytes: 0 };
        let mut invariants: Vec<Box<dyn RolloutInvariant>> = vec![Box::new(InstallsAreInstant)];
        let out = run_rollout(
            &mut s,
            &mut backend,
            &RolloutConfig::mass(4),
            &[],
            &[],
            &mut invariants,
            &Tracer::disabled(),
        )
        .unwrap();
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].invariant, "installs-are-instant");
    }

    #[test]
    fn generated_plans_are_deterministic() {
        for seed in [0u64, 7, 42] {
            let a = RolloutPlan::generate(seed).run();
            let b = RolloutPlan::generate(seed).run();
            let (ra, rb) = (a.report.expect("ran"), b.report.expect("ran"));
            assert_eq!(ra.makespan_seconds.to_bits(), rb.makespan_seconds.to_bits());
            assert_eq!(ra.reinstalled, rb.reinstalled);
            assert_eq!(ra.total_bytes, rb.total_bytes);
        }
    }

    #[test]
    fn trace_counters_account_for_every_node() {
        let tracer = Tracer::ring_sim(4096);
        let mut s = server(6);
        s.qsub("w", 2, 300.0).unwrap();
        schedule(&mut s);
        let mut backend = FixedInstall { seconds: 600.0, bytes: 10 };
        let out = run_rollout(
            &mut s,
            &mut backend,
            &RolloutConfig::with_capacity(2),
            &[],
            &[],
            &mut standard_rollout_invariants(1e9),
            &tracer,
        )
        .unwrap();
        assert!(out.violations.is_empty());
        let snap = tracer.registry().expect("ring tracer has a registry").snapshot();
        assert_eq!(snap.counter("rollout.drained"), 6);
        assert_eq!(snap.counter("rollout.install.started"), 6);
        assert_eq!(snap.counter("rollout.readmitted"), 6);
        assert_eq!(snap.counter("rollout.bytes.total"), 60);
    }
}
