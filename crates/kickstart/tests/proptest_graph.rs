//! Property tests on graph traversal: termination, root-first order,
//! uniqueness, and arch-gating monotonicity over random graphs —
//! including cyclic ones, which real users create by accident.

use proptest::prelude::*;
use rocks_kickstart::Graph;
use rocks_rpm::Arch;

/// Random graphs over a small module universe (so shared modules and
/// cycles occur often).
fn graph_strategy() -> impl Strategy<Value = Graph> {
    let node = prop_oneof![
        Just("compute"),
        Just("base"),
        Just("mpi"),
        Just("cdev"),
        Just("nis"),
        Just("pbs"),
        Just("ekv"),
        Just("myri"),
    ];
    proptest::collection::vec((node.clone(), node, proptest::bool::ANY), 1..20).prop_map(|edges| {
        let mut graph = Graph::default();
        for (from, to, gate) in edges {
            graph.add_edge(from, to);
            if gate {
                // Gate the edge to IA-32 flavours only.
                let edge = graph.edges.last_mut().expect("just added");
                edge.arches = vec![Arch::I386, Arch::I686, Arch::Athlon];
            }
        }
        graph
    })
}

proptest! {
    /// Traversal always terminates and visits each module at most once.
    #[test]
    fn traversal_terminates_without_duplicates(graph in graph_strategy()) {
        let mentioned: Vec<String> =
            graph.mentioned().into_iter().map(str::to_string).collect();
        for root in &mentioned {
            let order = graph.traverse(root, Arch::I686).unwrap();
            prop_assert!(!order.is_empty());
            prop_assert_eq!(&order[0], root, "traversal must start at the root");
            let unique: std::collections::BTreeSet<&String> = order.iter().collect();
            prop_assert_eq!(unique.len(), order.len(), "duplicate visit");
            // Everything visited is actually in the graph.
            for module in &order {
                prop_assert!(graph.mentioned().contains(module.as_str()));
            }
        }
    }

    /// Arch gating is monotone: an IA-64 traversal never sees modules an
    /// IA-32 traversal (which follows a superset of edges) does not.
    #[test]
    fn gated_traversal_is_subset(graph in graph_strategy()) {
        for root in graph.mentioned() {
            let ia32 = graph.traverse(root, Arch::I686).unwrap();
            let ia64 = graph.traverse(root, Arch::Ia64).unwrap();
            let ia32_set: std::collections::BTreeSet<&String> = ia32.iter().collect();
            for module in &ia64 {
                prop_assert!(ia32_set.contains(module),
                    "IA-64 reached {module} but IA-32 did not");
            }
        }
    }

    /// Every visited module (except the root) is reachable through at
    /// least one applicable edge from another visited module.
    #[test]
    fn visited_modules_are_edge_reachable(graph in graph_strategy()) {
        for root in graph.mentioned() {
            let order = graph.traverse(root, Arch::I686).unwrap();
            let visited: std::collections::BTreeSet<&str> =
                order.iter().map(String::as_str).collect();
            for module in order.iter().skip(1) {
                let reachable = graph.edges.iter().any(|e| {
                    e.to == *module
                        && e.applies_to(Arch::I686)
                        && visited.contains(e.from.as_str())
                });
                prop_assert!(reachable, "{module} visited without an edge");
            }
        }
    }

    /// XML round-trip preserves the graph exactly.
    #[test]
    fn graph_xml_round_trip(graph in graph_strategy()) {
        let xml = graph.to_xml();
        let reparsed = Graph::parse(&xml).unwrap();
        prop_assert_eq!(graph.edges, reparsed.edges);
    }

    /// Roots never appear as edge targets.
    #[test]
    fn roots_have_no_incoming_edges(graph in graph_strategy()) {
        for root in graph.roots() {
            prop_assert!(graph.edges.iter().all(|e| e.to != root));
        }
    }
}
