//! The CGI-script equivalent: on-the-fly Kickstart generation (paper §6.1).
//!
//! "At installation time, a machine requests its kickstart file via HTTP
//! from a CGI script on the frontend server. This script uses the
//! requesting node's IP address to drive a series of SQL queries that
//! determine the appliance type, software distribution, and localization
//! of the node. The script then parses the XML graph file and traverses
//! it, parsing all the node files based on the appliance type."

use crate::graph::ProfileSet;
use crate::kickstart::{base_commands, KickstartFile};
use crate::{KsError, Result};
use rocks_db::ClusterDb;
use rocks_rpm::Arch;

/// The generator: profile set plus the frontend parameters baked into
/// every generated file.
#[derive(Debug, Clone)]
pub struct KickstartGenerator {
    profiles: ProfileSet,
    /// Frontend address embedded in the `url` directive.
    frontend_ip: String,
    /// Distribution path under the web root (e.g. `install/rocks-dist`).
    dist_path: String,
}

impl KickstartGenerator {
    /// Build a generator around a profile set.
    pub fn new(profiles: ProfileSet, frontend_ip: &str, dist_path: &str) -> Self {
        KickstartGenerator {
            profiles,
            frontend_ip: frontend_ip.to_string(),
            dist_path: dist_path.to_string(),
        }
    }

    /// The profile set (site customization edits this, §6.2.3).
    pub fn profiles(&self) -> &ProfileSet {
        &self.profiles
    }

    /// Mutable profile set.
    pub fn profiles_mut(&mut self) -> &mut ProfileSet {
        &mut self.profiles
    }

    /// Generate for an explicit appliance root and architecture, without
    /// database involvement (used by the frontend's own install, whose
    /// Kickstart file "is built from a simple web form", §7).
    pub fn generate_for_appliance(&self, root: &str, arch: Arch) -> Result<KickstartFile> {
        let modules = self.profiles.modules_for(root, arch)?;
        let mut ks = KickstartFile::default();
        for (cmd, value) in base_commands(&self.frontend_ip, &self.dist_path, arch) {
            ks.add_command(&cmd, &value);
        }
        for module in &modules {
            for directive in &module.main {
                ks.add_command(&directive.command, &directive.value);
            }
        }
        for module in &modules {
            for pkg in module.packages_for(arch) {
                ks.add_package(pkg);
            }
        }
        for module in &modules {
            for post in module.posts_for(arch) {
                ks.add_post(&post.origin, &post.script);
            }
            // Declarative <file> elements become their own %post section.
            let file_shell: Vec<String> =
                module.files_for(arch).map(|f| f.render_shell()).collect();
            if !file_shell.is_empty() {
                ks.add_post(&format!("{}:files", module.name), &file_shell.join("\n"));
            }
        }
        Ok(ks)
    }

    /// The full CGI flow: resolve the requesting IP through the cluster
    /// database (node → membership → appliance → graph root), apply
    /// per-node localization, traverse, and render.
    ///
    /// Takes `&ClusterDb` — the lookups are pure reads, so any number of
    /// requests may be served concurrently against one shared database
    /// (this is what lets [`crate::service::GenerationService`] fan out
    /// across worker threads).
    pub fn generate_for_request(
        &self,
        db: &ClusterDb,
        requester_ip: &str,
        arch: Arch,
    ) -> Result<KickstartFile> {
        let (root, node, membership) = self.resolve_request(db, requester_ip)?;
        let mut ks = self.generate_for_appliance(&root, arch)?;
        self.localize(&mut ks, db, &node.name, &membership.name)?;
        Ok(ks)
    }

    /// SQL resolution half of the CGI flow: requesting IP → node row →
    /// membership → appliance graph root. Split out so the generation
    /// service can run it separately from (cacheable) graph traversal.
    pub fn resolve_request(
        &self,
        db: &ClusterDb,
        requester_ip: &str,
    ) -> Result<(String, rocks_db::NodeRecord, rocks_db::Membership)> {
        // SQL query 1: which node is this? (keyed on IP, as the paper says)
        let node = db.node_by_ip(requester_ip).map_err(|e| match e {
            rocks_db::DbError::NoSuchNode(_) => KsError::UnknownAddress(requester_ip.to_string()),
            other => KsError::Db(other.to_string()),
        })?;

        // SQL query 2: membership → appliance.
        let membership = db.membership(node.membership)?;

        // SQL query 3: appliance → graph root.
        let root = db.appliance_root(membership.appliance)?.ok_or_else(|| {
            KsError::Db(format!(
                "appliance {} has no kickstartable graph root",
                membership.appliance
            ))
        })?;
        Ok((root, node, membership))
    }

    /// Localization half of the CGI flow: node identity plus site globals
    /// become a `%post` environment block exported to every script, and
    /// the node's hostname lands in the `network` directive. Applied to a
    /// freshly traversed skeleton *or* to a cached copy of one — the two
    /// paths must stay byte-identical.
    pub fn localize(
        &self,
        ks: &mut KickstartFile,
        db: &ClusterDb,
        node_name: &str,
        membership_name: &str,
    ) -> Result<()> {
        let public = db.global("Kickstart_PublicHostname")?;
        self.localize_resolved(ks, node_name, membership_name, public.as_deref());
        Ok(())
    }

    /// [`localize`](Self::localize) with the site globals already fetched
    /// — the hot inner loop of mass generation, where one SQL lookup
    /// serves every node instead of one per node.
    pub fn localize_resolved(
        &self,
        ks: &mut KickstartFile,
        node_name: &str,
        membership_name: &str,
        public_hostname: Option<&str>,
    ) {
        let mut localization = format!(
            "# Node localization from the cluster database\nexport NODE_NAME={node_name}\nexport NODE_MEMBERSHIP='{membership_name}'\n"
        );
        if let Some(public) = public_hostname {
            localization.push_str(&format!("export PUBLIC_HOSTNAME={public}\n"));
        }
        ks.posts.insert(
            0,
            crate::kickstart::PostScript {
                script: localization,
                origin: "sql-localization".into(),
            },
        );
        ks.add_command("network", &format!("--bootproto dhcp --hostname {node_name}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::default_profiles;
    use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};

    fn generator() -> KickstartGenerator {
        KickstartGenerator::new(default_profiles(), "10.1.1.1", "install/rocks-dist")
    }

    fn populated_db() -> ClusterDb {
        let mut db = ClusterDb::new();
        register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
        let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        for i in 1..=2 {
            s.observe(&DhcpRequest { mac: format!("00:50:8b:e0:00:{i:02x}") }).unwrap();
        }
        db
    }

    #[test]
    fn compute_appliance_renders_full_kickstart() {
        let ks = generator().generate_for_appliance("compute", Arch::I686).unwrap();
        let text = ks.render();
        assert!(text.contains("url --url http://10.1.1.1/install/rocks-dist/i686"));
        assert!(text.contains("%packages"));
        assert!(text.contains("mpich"));
        assert!(text.contains("gcc"));
        assert!(text.contains("%post"));
        // The Myrinet rebuild script must be present for IA-32.
        assert!(text.contains("./configure && make && make install"));
    }

    #[test]
    fn compute_package_count_matches_figure7() {
        // The compute appliance resolves to exactly the paper's package
        // count (Figure 7: "Total: 162 packages").
        let ks = generator().generate_for_appliance("compute", Arch::I686).unwrap();
        assert_eq!(ks.package_count(), rocks_rpm::synth::COMPUTE_PACKAGE_COUNT);
    }

    #[test]
    fn ia64_compute_drops_myrinet() {
        let ks = generator().generate_for_appliance("compute", Arch::Ia64).unwrap();
        let text = ks.render();
        assert!(!text.contains("gm"));
        assert!(!text.contains("insmod"));
    }

    #[test]
    fn frontend_appliance_has_services() {
        let ks = generator().generate_for_appliance("frontend", Arch::I686).unwrap();
        let text = ks.render();
        for pkg in ["dhcp", "mysql-server", "httpd", "maui", "rocks-dist"] {
            assert!(text.contains(pkg), "frontend kickstart missing {pkg}");
        }
        assert!(text.contains("DHCPD_INTERFACES"), "Figure 2 post script missing");
    }

    #[test]
    fn request_flow_resolves_ip_to_appliance() {
        let db = populated_db();
        let gen = generator();
        // compute-0-0 got 10.255.255.254 (first allocation).
        let ks = gen.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        let text = ks.render();
        assert!(text.contains("--hostname compute-0-0"));
        assert!(text.contains("export NODE_NAME=compute-0-0"));
        assert!(text.contains("mpich"));
    }

    #[test]
    fn unknown_ip_is_denied() {
        let db = populated_db();
        let err = generator().generate_for_request(&db, "10.9.9.9", Arch::I686).unwrap_err();
        assert!(matches!(err, KsError::UnknownAddress(_)));
    }

    #[test]
    fn localization_includes_site_globals() {
        let mut db = populated_db();
        db.set_global("Kickstart_PublicHostname", "meteor.sdsc.edu").unwrap();
        let ks = generator().generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        assert!(ks.render().contains("export PUBLIC_HOSTNAME=meteor.sdsc.edu"));
    }

    #[test]
    fn frontend_request_uses_frontend_graph_root() {
        let db = populated_db();
        let ks = generator().generate_for_request(&db, "10.1.1.1", Arch::I686).unwrap();
        let text = ks.render();
        assert!(text.contains("--hostname frontend-0"));
        assert!(text.contains("mysql-server"));
    }

    #[test]
    fn file_elements_land_in_post() {
        let mut gen = generator();
        let custom = crate::nodefile::NodeFile::parse(
            "banner",
            r#"<kickstart><file name="/etc/motd">Meteor cluster node</file></kickstart>"#,
        )
        .unwrap();
        gen.profiles_mut().add_node_file(custom);
        gen.profiles_mut().graph.add_edge("compute", "banner");
        let text = gen.generate_for_appliance("compute", Arch::I686).unwrap().render();
        assert!(text.contains("begin banner:files"));
        assert!(text.contains("cat > /etc/motd << 'EOF_ROCKS_FILE'"));
        assert!(text.contains("Meteor cluster node"));
    }

    #[test]
    fn site_customization_changes_output() {
        // §6.2.3: users edit the XML modules to tailor the cluster.
        let mut gen = generator();
        let custom = crate::nodefile::NodeFile::parse(
            "site-custom",
            "<kickstart><package>intel-mkl</package></kickstart>",
        )
        .unwrap();
        gen.profiles_mut().add_node_file(custom);
        gen.profiles_mut().graph.add_edge("compute", "site-custom");
        let ks = gen.generate_for_appliance("compute", Arch::I686).unwrap();
        assert!(ks.render().contains("intel-mkl"));
    }
}
