//! The default Rocks profile set: the graph and node files that ship on
//! the Rocks CD ("We develop and distribute the default set of node and
//! graph files that are automatically installed when a user creates a
//! frontend node", §6.1 footnote).
//!
//! The module names and graph shape follow Figures 3 and 4; the DHCP
//! server node file is the paper's Figure 2 verbatim. The `base` module's
//! package list is generated to match the synthetic Red Hat 7.2 base set,
//! so a compute appliance resolves to exactly the 162-package / ~225 MB
//! install the paper measures (Figure 7, §6.3).

use crate::graph::{Graph, ProfileSet};
use crate::nodefile::NodeFile;
use rocks_rpm::synth;

/// Figure 2, verbatim (modulo OCR quote repair): the DHCP server module.
pub const DHCP_SERVER_XML: &str = r#"<?XML VERSION="1.0" STANDALONE="no"?>
<KICKSTART>
        <DESCRIPTION>Setup the DHCP server for the cluster</DESCRIPTION>
        <PACKAGE>dhcp</PACKAGE>
        <POST>
                <!-- tell dhcp just to listen to eth0 -->
                awk '
                        /^DHCPD_INTERFACES/ {
                                printf("DHCPD_INTERFACES=\"eth0\"\n");
                                next;
                        }
                        {
                                print $0;
                        } ' /etc/sysconfig/dhcpd &gt; /tmp/dhcpd
                mv /tmp/dhcpd /etc/sysconfig/dhcpd
        </POST>
</KICKSTART>
"#;

/// The default graph (Figure 3 is an excerpt of this shape; Figure 4
/// visualizes it): appliances `compute`, `frontend`, and `nfs-server`
/// compose shared modules. The Myrinet edge is IA-32-only, matching the
/// Meteor cluster where "most compute nodes have Myrinet adapters, but
/// not all" and IA-64 boxes did not.
pub const DEFAULT_GRAPH_XML: &str = r#"<?xml version="1.0" standalone="no"?>
<graph>
  <description>NPACI Rocks default appliance graph</description>
  <edge from="compute" to="base"/>
  <edge from="compute" to="mpi"/>
  <edge from="compute" to="pvm"/>
  <edge from="compute" to="nis-client"/>
  <edge from="compute" to="nfs-client"/>
  <edge from="compute" to="pbs-mom"/>
  <edge from="compute" to="rexec"/>
  <edge from="compute" to="ekv"/>
  <edge from="compute" to="myrinet" arch="i386,i686,athlon"/>
  <edge from="mpi" to="c-development"/>
  <edge from="frontend" to="base"/>
  <edge from="frontend" to="mpi"/>
  <edge from="frontend" to="pvm"/>
  <edge from="frontend" to="dhcp-server"/>
  <edge from="frontend" to="mysql"/>
  <edge from="frontend" to="apache"/>
  <edge from="frontend" to="nis-server"/>
  <edge from="frontend" to="nfs-export"/>
  <edge from="frontend" to="pbs-server"/>
  <edge from="frontend" to="rexec"/>
  <edge from="frontend" to="rocks-tools"/>
  <edge from="nfs-server" to="base"/>
  <edge from="nfs-server" to="nfs-export"/>
  <edge from="nfs-server" to="nis-client"/>
</graph>
"#;

/// Static node files: `(name, xml)`.
const STATIC_NODE_FILES: &[(&str, &str)] = &[
    ("dhcp-server", DHCP_SERVER_XML),
    (
        "compute",
        r#"<kickstart>
  <description>Compute appliance root: a minimal container for parallel jobs</description>
  <main>
    <lang>en_US</lang>
    <timezone>--utc GMT</timezone>
  </main>
  <post>
/sbin/chkconfig --del gpm
echo "compute appliance" &gt; /etc/motd
  </post>
</kickstart>"#,
    ),
    (
        "frontend",
        r#"<kickstart>
  <description>Frontend appliance root: cluster services and login host</description>
  <main>
    <lang>en_US</lang>
    <timezone>--utc GMT</timezone>
  </main>
  <post>
echo "frontend appliance" &gt; /etc/motd
  </post>
</kickstart>"#,
    ),
    (
        "nfs-server",
        r#"<kickstart>
  <description>Dedicated NFS server appliance (e.g. nfs-0-0 in Table II)</description>
  <post>
echo "nfs appliance" &gt; /etc/motd
  </post>
</kickstart>"#,
    ),
    (
        "c-development",
        r#"<kickstart>
  <description>Compilers and build tools for application development</description>
  <package>gcc</package>
  <package>gcc-g77</package>
  <package>binutils</package>
  <package>make</package>
  <package>cpp</package>
</kickstart>"#,
    ),
    (
        "mpi",
        r#"<kickstart>
  <description>MPICH message passing (Ethernet and Myrinet devices)</description>
  <package>mpich</package>
  <package arch="i386,i686,athlon">mpich-gm</package>
  <package>atlas</package>
  <post>
echo '/opt/mpich/bin' &gt; /etc/profile.d/mpich-path.sh
  </post>
</kickstart>"#,
    ),
    (
        "pvm",
        r#"<kickstart>
  <description>PVM message passing (Ethernet device)</description>
  <package>pvm</package>
</kickstart>"#,
    ),
    (
        "nis-client",
        r#"<kickstart>
  <description>NIS client: user accounts synchronized from the frontend</description>
  <package>ypbind</package>
  <post>
/usr/bin/ypdomainname rocks
echo "domain rocks server 10.1.1.1" &gt; /etc/yp.conf
  </post>
</kickstart>"#,
    ),
    (
        "nis-server",
        r#"<kickstart>
  <description>NIS master: exports passwd/group maps to compute nodes</description>
  <package>ypserv</package>
  <post>
/usr/bin/ypdomainname rocks
make -C /var/yp
  </post>
</kickstart>"#,
    ),
    (
        "nfs-client",
        r#"<kickstart>
  <description>NFS client: home directories automounted from the frontend</description>
  <package>nfs-utils</package>
  <post>
echo "/home/*  10.1.1.1:/export/home/&amp;" &gt; /etc/auto.home
  </post>
</kickstart>"#,
    ),
    (
        "nfs-export",
        r#"<kickstart>
  <description>NFS server: exports user home directories (the one unscalable service, §5)</description>
  <package>nfs-utils</package>
  <post>
echo "/export/home 10.0.0.0/255.0.0.0(rw)" &gt;&gt; /etc/exports
exportfs -a
  </post>
</kickstart>"#,
    ),
    (
        "mysql",
        r#"<kickstart>
  <description>MySQL: the cluster configuration database (Section 6.4)</description>
  <package>mysql-server</package>
  <post>
/sbin/chkconfig --add mysqld
/opt/rocks/sbin/create-cluster-schema
  </post>
</kickstart>"#,
    ),
    (
        "apache",
        r#"<kickstart>
  <description>HTTP server: serves kickstart files and RPMs to installing nodes</description>
  <package>httpd</package>
  <post>
ln -s /opt/rocks/cgi-bin/kickstart.cgi /var/www/cgi-bin/kickstart.cgi
  </post>
</kickstart>"#,
    ),
    (
        "pbs-mom",
        r#"<kickstart>
  <description>PBS execution daemon for compute nodes</description>
  <package>pbs</package>
  <post>
echo '$clienthost frontend-0' &gt; /opt/pbs/mom_priv/config
  </post>
</kickstart>"#,
    ),
    (
        "pbs-server",
        r#"<kickstart>
  <description>PBS server plus the Maui scheduler; a default queue is created at install time (Section 4.1)</description>
  <package>pbs</package>
  <package>maui</package>
  <post>
/opt/pbs/bin/qmgr -c "create queue default queue_type=execution"
/opt/pbs/bin/qmgr -c "set queue default enabled=true started=true"
/opt/pbs/bin/qmgr -c "set server default_queue=default"
  </post>
</kickstart>"#,
    ),
    (
        "rexec",
        r#"<kickstart>
  <description>UC Berkeley REXEC: transparent, secure remote execution (Section 4.1)</description>
  <package>rexec</package>
  <post>
/sbin/chkconfig --add rexecd
  </post>
</kickstart>"#,
    ),
    (
        "ekv",
        r#"<kickstart>
  <description>eKV: Ethernet keyboard and video for watching installs (Section 6.3)</description>
  <package>rocks-ekv</package>
  <package>anaconda-ekv</package>
</kickstart>"#,
    ),
    (
        "myrinet",
        r#"<kickstart>
  <description>Myrinet GM driver, rebuilt from source on first boot (Section 6.3)</description>
  <package>gm</package>
  <package>mpich-gm</package>
  <post arch="i386,i686,athlon">
cd /usr/src/gm
./configure &amp;&amp; make &amp;&amp; make install
/sbin/insmod gm
  </post>
</kickstart>"#,
    ),
    (
        "rocks-tools",
        r#"<kickstart>
  <description>NPACI Rocks cluster tools (rocks-dist, insert-ethers, shoot-node)</description>
  <package>rocks-dist</package>
  <package>rocks-insert-ethers</package>
  <package>rocks-shoot-node</package>
  <package>rocks-sql-config</package>
  <package>rocks-kickstart-profiles</package>
</kickstart>"#,
    ),
];

/// Build the `base` node file: named base packages, the kernel, plus the
/// generated filler set so the compute install matches the paper's
/// 162-package / 225 MB measurement.
fn base_node_file() -> NodeFile {
    let mut xml = String::from(
        "<kickstart>\n  <description>Minimal Red Hat base for every appliance</description>\n",
    );
    xml.push_str("  <main>\n    <rootpw>--iscrypted a1b2c3d4e5</rootpw>\n  </main>\n");
    for name in [
        "glibc",
        "glibc-common",
        "dev",
        "fileutils",
        "bash",
        "openssh-server",
        "portmap",
        "xinetd",
        "perl",
        "python",
        "kernel",
    ] {
        xml.push_str(&format!("  <package>{name}</package>\n"));
    }
    // Filler packages from the synthetic distribution. compute_package_names
    // returns named + kernel + gm + filler; strip the ones other modules own.
    for name in synth::compute_package_names() {
        if name.starts_with("base-pkg-") {
            xml.push_str(&format!("  <package>{name}</package>\n"));
        }
    }
    // bind is in the named base set but owned by no service module.
    xml.push_str("  <package>bind</package>\n");
    xml.push_str("  <post>\n/usr/sbin/useradd -m rocks\n  </post>\n</kickstart>\n");
    NodeFile::parse("base", &xml).expect("generated base node file is valid")
}

/// Parse and assemble the complete default profile set.
pub fn default_profiles() -> ProfileSet {
    let graph = Graph::parse(DEFAULT_GRAPH_XML).expect("default graph is valid");
    let mut nodes: Vec<NodeFile> = STATIC_NODE_FILES
        .iter()
        .map(|(name, xml)| {
            NodeFile::parse(name, xml)
                .unwrap_or_else(|e| panic!("default node file {name} invalid: {e}"))
        })
        .collect();
    nodes.push(base_node_file());
    let set = ProfileSet::new(graph, nodes);
    debug_assert!(set.validate().is_empty(), "default profiles must be closed");
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use rocks_rpm::Arch;

    #[test]
    fn default_profiles_are_closed() {
        let set = default_profiles();
        assert!(set.validate().is_empty());
    }

    #[test]
    fn roots_match_paper_appliances() {
        let set = default_profiles();
        let roots = set.graph.roots();
        assert!(roots.contains(&"compute"));
        assert!(roots.contains(&"frontend"));
        assert!(roots.contains(&"nfs-server"));
    }

    #[test]
    fn compute_traversal_includes_mpi_and_cdev() {
        // The Figure 4 walk: compute → mpi → c-development.
        let set = default_profiles();
        let order = set.graph.traverse("compute", Arch::I686).unwrap();
        assert_eq!(order[0], "compute");
        let mpi_pos = order.iter().position(|m| m == "mpi").unwrap();
        let cdev_pos = order.iter().position(|m| m == "c-development").unwrap();
        assert!(mpi_pos < cdev_pos);
    }

    #[test]
    fn myrinet_excluded_on_ia64() {
        let set = default_profiles();
        let ia32 = set.graph.traverse("compute", Arch::I686).unwrap();
        let ia64 = set.graph.traverse("compute", Arch::Ia64).unwrap();
        assert!(ia32.contains(&"myrinet".to_string()));
        assert!(!ia64.contains(&"myrinet".to_string()));
    }

    #[test]
    fn figure2_file_is_in_the_set() {
        let set = default_profiles();
        let dhcp = &set.nodes["dhcp-server"];
        assert_eq!(dhcp.description, "Setup the DHCP server for the cluster");
        assert_eq!(dhcp.packages[0].name, "dhcp");
        assert!(dhcp.posts[0].script.contains("DHCPD_INTERFACES"));
    }

    #[test]
    fn frontend_gets_services_compute_does_not() {
        let set = default_profiles();
        let frontend = set.graph.traverse("frontend", Arch::I686).unwrap();
        let compute = set.graph.traverse("compute", Arch::I686).unwrap();
        for service in ["dhcp-server", "mysql", "apache", "pbs-server"] {
            assert!(frontend.contains(&service.to_string()), "frontend missing {service}");
            assert!(!compute.contains(&service.to_string()), "compute must not have {service}");
        }
    }

    #[test]
    fn base_contains_filler_set() {
        let set = default_profiles();
        let base = &set.nodes["base"];
        let count = base.packages_for(Arch::I686).count();
        assert!(count > 100, "base should carry the bulk of the 162 packages, got {count}");
    }
}
