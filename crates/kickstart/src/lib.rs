#![warn(missing_docs)]

//! The Rocks description-driven installation framework (paper §6.1).
//!
//! This is the paper's central technical contribution: instead of cloning
//! disk images or hand-maintaining monolithic Kickstart files, every node
//! behaviour is *described* by a framework of XML files —
//!
//! * **node files** ([`nodefile::NodeFile`]): small single-purpose modules
//!   listing packages and post-configuration scripts for one service
//!   (Figure 2 shows the DHCP server module),
//! * a **graph file** ([`graph::Graph`]): directed edges composing modules
//!   into *appliances* (`compute`, `frontend`, ... — Figures 3 and 4),
//!
//! and a generator ([`generator::KickstartGenerator`]) plays the role of
//! the CGI script: given a requesting node's IP address it queries the
//! cluster database for the appliance type and localization, traverses the
//! graph, and emits a Red Hat–compliant text Kickstart file
//! ([`kickstart::KickstartFile`]).
//!
//! The default Rocks graph and node files ship in [`profiles`], [`dot`]
//! renders the graph in Graphviz format (Figure 4), and [`form`]
//! implements the §7 web form that builds the frontend's own Kickstart.
//!
//! For mass reinstalls, [`service::GenerationService`] wraps the
//! generator in a thread-safe memoizing layer: appliance skeletons are
//! cached against the cluster-DB revision and rocks-dist epoch, and
//! [`service::GenerationService::generate_all`] fans per-node generation
//! out across a worker pool.

pub mod dot;
pub mod form;
pub mod generator;
pub mod graph;
pub mod kickstart;
pub mod nodefile;
pub mod profiles;
pub mod service;

pub use form::FrontendForm;
pub use generator::KickstartGenerator;
pub use graph::{Edge, Graph, ProfileSet};
pub use kickstart::{KickstartFile, PostScript};
pub use nodefile::NodeFile;
pub use service::{GeneratedProfile, GenerationService, Stats};

/// Errors from profile parsing, graph traversal, or generation.
#[derive(Debug, Clone, PartialEq)]
pub enum KsError {
    /// Malformed XML.
    Xml(String),
    /// A node file is missing a required part or has a bad attribute.
    BadNodeFile {
        /// Node-file name.
        file: String,
        /// What was wrong.
        reason: String,
    },
    /// The graph references a node file that does not exist.
    UndefinedNode {
        /// The missing module name.
        referenced: String,
        /// The edge or traversal that referenced it.
        by: String,
    },
    /// Traversal started from an unknown root.
    UnknownRoot(String),
    /// Database lookups failed during generation.
    Db(String),
    /// The requesting address is not registered.
    UnknownAddress(String),
}

impl std::fmt::Display for KsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KsError::Xml(m) => write!(f, "xml: {m}"),
            KsError::BadNodeFile { file, reason } => write!(f, "node file {file}: {reason}"),
            KsError::UndefinedNode { referenced, by } => {
                write!(f, "edge references undefined node {referenced:?} (from {by:?})")
            }
            KsError::UnknownRoot(r) => write!(f, "unknown appliance root: {r}"),
            KsError::Db(m) => write!(f, "database: {m}"),
            KsError::UnknownAddress(ip) => {
                write!(f, "no node registered with address {ip} (kickstart request denied)")
            }
        }
    }
}

impl std::error::Error for KsError {}

impl From<rocks_xml::XmlError> for KsError {
    fn from(e: rocks_xml::XmlError) -> Self {
        KsError::Xml(e.to_string())
    }
}

impl From<rocks_db::DbError> for KsError {
    fn from(e: rocks_db::DbError) -> Self {
        KsError::Db(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, KsError>;
