//! A shared, thread-safe Kickstart generation service.
//!
//! The paper's CGI script (§6.1) regenerates every Kickstart file from
//! scratch on each HTTP request. That is correct but wasteful: within one
//! mass reinstall, the expensive half of the work — parsing the XML graph
//! and traversing it for an appliance type — produces the *same* skeleton
//! for every node of that appliance; only the final SQL localization pass
//! (hostname, membership, site globals) differs per node.
//!
//! [`GenerationService`] exploits that split. It memoizes the rendered
//! appliance skeleton keyed by `(graph root, architecture)` *plus* the
//! inputs that could silently change it:
//!
//! * the cluster database's monotonic [`ClusterDb::revision`] counter,
//!   bumped by every mutation (`insert-ethers` registering nodes, new
//!   memberships, site-global edits, raw SQL writes), and
//! * a distribution *epoch* bumped by [`notify_dist_rebuilt`] whenever
//!   `rocks-dist` rebuilds the software repository (§6.2) — new RPMs mean
//!   regenerated `%packages` sections.
//!
//! Any stale entry is evicted on the next lookup, so explicit cache
//! invalidation falls out of key comparison; no mutation path needs to
//! reach into the cache. Cache behaviour is observable through [`Stats`].
//!
//! [`generate_all`](GenerationService::generate_all) is the mass-reinstall
//! entry point: it shards the cluster's kickstartable nodes across a
//! worker pool of OS threads. Every worker performs read-only SQL lookups
//! against the *shared* `&ClusterDb` concurrently (see
//! [`rocks_sql::Database::query_ref`]) and localizes a cached skeleton per
//! node. Output is byte-identical to the sequential cold path.
//!
//! [`notify_dist_rebuilt`]: GenerationService::notify_dist_rebuilt

use crate::generator::KickstartGenerator;
use crate::kickstart::KickstartFile;
use crate::Result;
use rocks_db::{ClusterDb, KickstartTarget};
use rocks_rpm::Arch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Cache key: everything that can change a rendered appliance skeleton.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct SkeletonKey {
    root: String,
    arch: Arch,
    db_revision: u64,
    dist_epoch: u64,
}

/// Monotonic counters describing the service's behaviour since creation
/// (or the last [`Stats::reset`]). All counters are atomics: workers
/// update them lock-free from inside the pool.
#[derive(Debug, Default)]
pub struct Stats {
    /// Requests served from a cached skeleton.
    hits: AtomicU64,
    /// Requests that had to traverse the graph.
    misses: AtomicU64,
    /// Cached skeletons evicted because the database revision or dist
    /// epoch moved on.
    invalidations: AtomicU64,
    /// Nanoseconds spent resolving IP → appliance through SQL.
    lookup_ns: AtomicU64,
    /// Nanoseconds spent traversing the graph and assembling skeletons
    /// (cache misses only).
    skeleton_ns: AtomicU64,
    /// Nanoseconds spent on per-node localization.
    localize_ns: AtomicU64,
}

impl Stats {
    /// Requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that rebuilt a skeleton.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Stale skeletons evicted.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Cumulative SQL-resolution time in nanoseconds.
    pub fn lookup_ns(&self) -> u64 {
        self.lookup_ns.load(Ordering::Relaxed)
    }

    /// Cumulative graph-traversal/skeleton-assembly time in nanoseconds.
    pub fn skeleton_ns(&self) -> u64 {
        self.skeleton_ns.load(Ordering::Relaxed)
    }

    /// Cumulative localization time in nanoseconds.
    pub fn localize_ns(&self) -> u64 {
        self.localize_ns.load(Ordering::Relaxed)
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for counter in [
            &self.hits,
            &self.misses,
            &self.invalidations,
            &self.lookup_ns,
            &self.skeleton_ns,
            &self.localize_ns,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }

    fn add_ns(counter: &AtomicU64, since: Instant) {
        counter.fetch_add(since.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} invalidations={} lookup={}us skeleton={}us localize={}us",
            self.hits(),
            self.misses(),
            self.invalidations(),
            self.lookup_ns() / 1_000,
            self.skeleton_ns() / 1_000,
            self.localize_ns() / 1_000,
        )
    }
}

/// One generated profile from [`GenerationService::generate_all`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneratedProfile {
    /// Node hostname (`compute-0-0`, ...).
    pub node: String,
    /// The node's private address, as the CGI script would have seen it.
    pub ip: String,
    /// The rendered profile.
    pub kickstart: KickstartFile,
}

/// The shared generation service. `&GenerationService` is all a worker
/// thread needs: the profile set is immutable, the skeleton cache sits
/// behind a mutex, and [`Stats`] is atomic.
#[derive(Debug)]
pub struct GenerationService {
    generator: KickstartGenerator,
    cache: Mutex<HashMap<SkeletonKey, Arc<KickstartFile>>>,
    dist_epoch: AtomicU64,
    stats: Stats,
}

impl GenerationService {
    /// Wrap a generator in the caching service.
    pub fn new(generator: KickstartGenerator) -> Self {
        GenerationService {
            generator,
            cache: Mutex::new(HashMap::new()),
            dist_epoch: AtomicU64::new(0),
            stats: Stats::default(),
        }
    }

    /// The wrapped generator, read-only.
    pub fn generator(&self) -> &KickstartGenerator {
        &self.generator
    }

    /// Mutable access to the generator, for site customization (§6.2.3:
    /// editing the XML profiles). Requires `&mut self` — no worker can be
    /// in flight — and conservatively drops every cached skeleton, since
    /// any profile edit may change any appliance's output.
    pub fn generator_mut(&mut self) -> &mut KickstartGenerator {
        self.invalidate_all();
        &mut self.generator
    }

    /// The cached appliance skeleton for `(root, arch)` — the profile
    /// *before* per-node localization, which is what consistency checks
    /// and install-image computations want. Shares the request cache.
    pub fn appliance_profile(
        &self,
        db: &ClusterDb,
        root: &str,
        arch: Arch,
    ) -> Result<Arc<KickstartFile>> {
        self.skeleton(db, root, arch)
    }

    /// Cache and timing counters.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Rocks-dist invalidation hook: call after `rocks-dist` rebuilds the
    /// distribution tree (§6.2). Bumps the epoch so every cached skeleton
    /// — whose `%packages` section may now be stale — misses on next use.
    pub fn notify_dist_rebuilt(&self) {
        self.dist_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Drop every cached skeleton immediately, counting the evictions.
    pub fn invalidate_all(&self) {
        let mut cache = self.cache.lock().unwrap();
        let evicted = cache.len() as u64;
        cache.clear();
        self.stats.invalidations.fetch_add(evicted, Ordering::Relaxed);
    }

    /// Number of live (possibly stale) cache entries, for tests/inspection.
    pub fn cached_skeletons(&self) -> usize {
        self.cache.lock().unwrap().len()
    }

    /// Cached equivalent of
    /// [`KickstartGenerator::generate_for_request`]: same output, bytes
    /// for bytes, but the graph traversal is amortized across all nodes
    /// of an appliance.
    pub fn generate_for_request(
        &self,
        db: &ClusterDb,
        requester_ip: &str,
        arch: Arch,
    ) -> Result<KickstartFile> {
        let t = Instant::now();
        let (root, node, membership) = self.generator.resolve_request(db, requester_ip)?;
        Stats::add_ns(&self.stats.lookup_ns, t);

        let skeleton = self.skeleton(db, &root, arch)?;

        let t = Instant::now();
        let mut ks = (*skeleton).clone();
        self.generator.localize(&mut ks, db, &node.name, &membership.name)?;
        Stats::add_ns(&self.stats.localize_ns, t);
        Ok(ks)
    }

    /// Fetch or build the cached skeleton for `(root, arch)` under the
    /// current database revision and dist epoch.
    fn skeleton(&self, db: &ClusterDb, root: &str, arch: Arch) -> Result<Arc<KickstartFile>> {
        let key = SkeletonKey {
            root: root.to_string(),
            arch,
            db_revision: db.revision(),
            dist_epoch: self.dist_epoch.load(Ordering::Relaxed),
        };

        {
            let mut cache = self.cache.lock().unwrap();
            // Evict entries left behind by older revisions/epochs: they
            // can never hit again, and counting them here is what makes
            // invalidation observable through `Stats`.
            let before = cache.len();
            cache.retain(|k, _| k.db_revision == key.db_revision && k.dist_epoch == key.dist_epoch);
            let evicted = (before - cache.len()) as u64;
            if evicted > 0 {
                self.stats.invalidations.fetch_add(evicted, Ordering::Relaxed);
            }
            if let Some(hit) = cache.get(&key) {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(hit));
            }
        }

        // Miss: build outside the lock so other appliances' workers are
        // not serialized behind this traversal. Two threads may race to
        // build the same skeleton; both produce identical bytes and the
        // second insert is a harmless overwrite.
        self.stats.misses.fetch_add(1, Ordering::Relaxed);
        let t = Instant::now();
        let built = Arc::new(self.generator.generate_for_appliance(root, arch)?);
        Stats::add_ns(&self.stats.skeleton_ns, t);

        let mut cache = self.cache.lock().unwrap();
        cache.insert(key, Arc::clone(&built));
        Ok(built)
    }

    /// [`generate_all`](Self::generate_all) with the worker count sized
    /// to the host: one worker per available core, which degenerates to
    /// the zero-overhead sequential loop on a single-core machine.
    pub fn generate_all_auto(&self, db: &ClusterDb, arch: Arch) -> Result<Vec<GeneratedProfile>> {
        let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.generate_all(db, arch, workers)
    }

    /// Mass generation: one profile per kickstartable node in the
    /// database (nodes whose appliance has no graph root — switches,
    /// power controllers — are skipped, exactly as they never issue a
    /// kickstart request). Results are sorted by node name and
    /// byte-identical to calling the cold generator per node.
    ///
    /// `threads = 1` degenerates to a sequential loop on the calling
    /// thread; larger values shard the node list across a worker pool of
    /// scoped OS threads, every worker reading the shared `db` through
    /// the lock-free `query_ref` path.
    pub fn generate_all(
        &self,
        db: &ClusterDb,
        arch: Arch,
        threads: usize,
    ) -> Result<Vec<GeneratedProfile>> {
        // Bulk SQL resolution through the database's indexed lookup path:
        // `kickstart_targets` resolves every node's graph root and
        // membership name up front (point lookups against the lazily
        // built hash indexes), so the fan-out loop touches no SQL.
        let t = Instant::now();
        let targets = db.kickstart_targets()?;
        let public = db.global("Kickstart_PublicHostname")?;
        Stats::add_ns(&self.stats.lookup_ns, t);

        // Resolve each distinct appliance skeleton once through the
        // shared cache, then hand the Arcs straight to the workers: the
        // per-node loop touches no lock at all.
        let mut skeletons: HashMap<&str, Arc<KickstartFile>> = HashMap::new();
        for target in &targets {
            if !skeletons.contains_key(target.root.as_str()) {
                skeletons.insert(&target.root, self.skeleton(db, &target.root, arch)?);
            }
        }

        let generate_one = |target: &KickstartTarget| -> Result<GeneratedProfile> {
            // Present by construction; logically a cache hit per node.
            let skeleton = &skeletons[target.root.as_str()];
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            let t = Instant::now();
            let mut ks = (**skeleton).clone();
            self.generator.localize_resolved(
                &mut ks,
                &target.name,
                &target.membership,
                public.as_deref(),
            );
            Stats::add_ns(&self.stats.localize_ns, t);
            Ok(GeneratedProfile { node: target.name.clone(), ip: target.ip.clone(), kickstart: ks })
        };

        let threads = threads.max(1).min(targets.len().max(1));
        if threads == 1 {
            return targets.iter().map(generate_one).collect();
        }

        // Shard round-robin so a rack of identical compute nodes spreads
        // evenly. Each worker returns (original index, profile) and the
        // final sort restores node-name order deterministically.
        let mut results: Vec<Result<Vec<(usize, GeneratedProfile)>>> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let targets = &targets;
                let generate_one = &generate_one;
                let handle = scope.spawn(move || -> Result<Vec<(usize, GeneratedProfile)>> {
                    let mut local = Vec::new();
                    for (idx, target) in targets.iter().enumerate().skip(worker).step_by(threads) {
                        local.push((idx, generate_one(target)?));
                    }
                    Ok(local)
                });
                handles.push(handle);
            }
            for handle in handles {
                results.push(handle.join().expect("generation worker panicked"));
            }
        });

        let mut indexed = Vec::with_capacity(targets.len());
        for shard in results {
            indexed.extend(shard?);
        }
        indexed.sort_by_key(|(idx, _)| *idx);
        Ok(indexed.into_iter().map(|(_, profile)| profile).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::default_profiles;
    use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};

    fn service() -> GenerationService {
        GenerationService::new(KickstartGenerator::new(
            default_profiles(),
            "10.1.1.1",
            "install/rocks-dist",
        ))
    }

    fn cluster(computes: usize) -> ClusterDb {
        let mut db = ClusterDb::new();
        register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
        let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        for i in 0..computes {
            s.observe(&DhcpRequest { mac: format!("00:50:8b:e0:{:02x}:{:02x}", i / 256, i % 256) })
                .unwrap();
        }
        db
    }

    #[test]
    fn cached_request_matches_cold_generator() {
        let db = cluster(2);
        let svc = service();
        for ip in ["10.255.255.254", "10.255.255.253", "10.1.1.1"] {
            let cold = svc.generator().generate_for_request(&db, ip, Arch::I686).unwrap();
            let warm = svc.generate_for_request(&db, ip, Arch::I686).unwrap();
            assert_eq!(cold.render(), warm.render(), "divergence for {ip}");
        }
    }

    #[test]
    fn second_request_hits_cache() {
        let db = cluster(2);
        let svc = service();
        svc.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        assert_eq!(svc.stats().misses(), 1);
        assert_eq!(svc.stats().hits(), 0);
        svc.generate_for_request(&db, "10.255.255.253", Arch::I686).unwrap();
        assert_eq!(svc.stats().misses(), 1, "same appliance skeleton must be reused");
        assert_eq!(svc.stats().hits(), 1);
    }

    #[test]
    fn db_mutation_invalidates() {
        let mut db = cluster(1);
        let svc = service();
        svc.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        db.set_global("Kickstart_PublicHostname", "meteor.sdsc.edu").unwrap();
        let ks = svc.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        assert!(ks.render().contains("meteor.sdsc.edu"));
        assert_eq!(svc.stats().misses(), 2);
        assert_eq!(svc.stats().invalidations(), 1);
    }

    #[test]
    fn dist_rebuild_invalidates() {
        let db = cluster(1);
        let svc = service();
        svc.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        svc.notify_dist_rebuilt();
        svc.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap();
        assert_eq!(svc.stats().misses(), 2);
        assert_eq!(svc.stats().invalidations(), 1);
    }

    #[test]
    fn generate_all_covers_kickstartable_nodes_only() {
        let mut db = cluster(3);
        // A switch: membership 4 maps to an appliance with no graph root.
        db.add_node(&rocks_db::NodeRecord::new(
            99,
            "aa:bb:cc:dd:ee:ff",
            "switch-0-0",
            4,
            0,
            99,
            rocks_db::Ipv4::new(10, 255, 1, 1),
        ))
        .unwrap();
        let svc = service();
        let profiles = svc.generate_all(&db, Arch::I686, 4).unwrap();
        let names: Vec<&str> = profiles.iter().map(|p| p.node.as_str()).collect();
        assert_eq!(names, vec!["compute-0-0", "compute-0-1", "compute-0-2", "frontend-0"]);
    }

    #[test]
    fn parallel_equals_sequential() {
        let db = cluster(8);
        let svc = service();
        let seq = svc.generate_all(&db, Arch::I686, 1).unwrap();
        let par = service().generate_all(&db, Arch::I686, 4).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(par.iter()) {
            assert_eq!(a.node, b.node);
            assert_eq!(a.kickstart.render(), b.kickstart.render());
        }
    }
}
