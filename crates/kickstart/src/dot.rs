//! Graphviz DOT export of the configuration graph — the tooling behind
//! the paper's Figure 4 ("A visualization of the XML graph description").

use crate::graph::{Graph, ProfileSet};

/// Render a graph in DOT format. Appliance roots draw as boxes (the way
/// Figure 4 highlights `compute` and `frontend`), ordinary modules as
/// ellipses; arch-gated edges are labelled.
pub fn to_dot(graph: &Graph) -> String {
    let mut out = String::new();
    out.push_str("digraph rocks_profiles {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=ellipse, fontname=\"Helvetica\"];\n");
    for root in graph.roots() {
        out.push_str(&format!("  \"{root}\" [shape=box, style=bold];\n"));
    }
    for edge in &graph.edges {
        if edge.arches.is_empty() {
            out.push_str(&format!("  \"{}\" -> \"{}\";\n", edge.from, edge.to));
        } else {
            let label = edge.arches.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(",");
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"{label}\", style=dashed];\n",
                edge.from, edge.to
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Render a profile set with node descriptions as tooltips.
pub fn profile_set_to_dot(set: &ProfileSet) -> String {
    let mut out = String::new();
    out.push_str("digraph rocks_profiles {\n");
    out.push_str("  rankdir=TB;\n");
    out.push_str("  node [shape=ellipse, fontname=\"Helvetica\"];\n");
    let roots = set.graph.roots();
    for (name, node) in &set.nodes {
        let shape = if roots.contains(&name.as_str()) { "box" } else { "ellipse" };
        out.push_str(&format!(
            "  \"{name}\" [shape={shape}, tooltip=\"{}\"];\n",
            node.description.replace('"', "'")
        ));
    }
    for edge in &set.graph.edges {
        out.push_str(&format!("  \"{}\" -> \"{}\";\n", edge.from, edge.to));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::default_profiles;

    #[test]
    fn dot_output_contains_roots_as_boxes() {
        let set = default_profiles();
        let dot = to_dot(&set.graph);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"compute\" [shape=box"));
        assert!(dot.contains("\"frontend\" [shape=box"));
        assert!(dot.contains("\"compute\" -> \"mpi\";"));
    }

    #[test]
    fn arch_gated_edges_are_labelled() {
        let set = default_profiles();
        let dot = to_dot(&set.graph);
        assert!(dot.contains("\"compute\" -> \"myrinet\" [label=\"i386,i686,athlon\""));
    }

    #[test]
    fn profile_dot_has_tooltips() {
        let set = default_profiles();
        let dot = profile_set_to_dot(&set);
        assert!(dot.contains("tooltip=\"Setup the DHCP server for the cluster\""));
    }

    #[test]
    fn every_edge_appears_exactly_once() {
        let set = default_profiles();
        let dot = to_dot(&set.graph);
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(arrow_count, set.graph.edges.len());
    }
}
