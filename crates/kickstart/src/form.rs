//! The frontend installation form (paper §7).
//!
//! "Rocks is installed with a floppy and a CD and the frontend Kickstart
//! file is built from a simple web form." The form collects the site
//! parameters a frontend cannot autodetect — identity, public networking,
//! passwords — validates them, and produces the frontend's Kickstart file
//! through the same XML framework every other node uses.

use crate::generator::KickstartGenerator;
use crate::kickstart::KickstartFile;
use crate::{KsError, Result};
use rocks_rpm::Arch;

/// The web form's fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendForm {
    /// Cluster name, used for the NIS domain and default hostnames.
    pub cluster_name: String,
    /// Public fully-qualified hostname of the frontend.
    pub public_hostname: String,
    /// Public IP address (dotted quad) on eth1.
    pub public_ip: String,
    /// Public netmask.
    pub public_netmask: String,
    /// Default gateway.
    pub gateway: String,
    /// DNS server.
    pub dns: String,
    /// Crypted root password (the form crypts before submit).
    pub root_password_crypted: String,
    /// Timezone, e.g. `America/Los_Angeles`.
    pub timezone: String,
    /// Frontend architecture.
    pub arch: Arch,
}

impl Default for FrontendForm {
    fn default() -> Self {
        FrontendForm {
            cluster_name: "rocks".into(),
            public_hostname: "frontend-0.local".into(),
            public_ip: "198.202.88.1".into(),
            public_netmask: "255.255.255.0".into(),
            gateway: "198.202.88.254".into(),
            dns: "198.202.75.26".into(),
            root_password_crypted: "--iscrypted a1b2c3d4e5".into(),
            timezone: "--utc GMT".into(),
            arch: Arch::I686,
        }
    }
}

impl FrontendForm {
    /// Validate the form the way the web page would before generating.
    pub fn validate(&self) -> Result<()> {
        let field_err = |field: &str, reason: &str| {
            Err(KsError::BadNodeFile {
                file: format!("frontend form field {field}"),
                reason: reason.to_string(),
            })
        };
        if self.cluster_name.is_empty()
            || !self.cluster_name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return field_err("cluster_name", "must be non-empty [A-Za-z0-9_-]");
        }
        if !self.public_hostname.contains('.') {
            return field_err("public_hostname", "must be fully qualified");
        }
        for (field, value) in [
            ("public_ip", &self.public_ip),
            ("public_netmask", &self.public_netmask),
            ("gateway", &self.gateway),
            ("dns", &self.dns),
        ] {
            if !is_dotted_quad(value) {
                return field_err(field, "must be a dotted-quad IPv4 address");
            }
        }
        if self.root_password_crypted.trim().is_empty() {
            return field_err("root_password_crypted", "must not be empty");
        }
        Ok(())
    }

    /// Produce the frontend's Kickstart file: the `frontend` appliance
    /// traversal plus the form's site-specific command directives.
    pub fn generate(&self, generator: &KickstartGenerator) -> Result<KickstartFile> {
        self.validate()?;
        let mut ks = generator.generate_for_appliance("frontend", self.arch)?;
        ks.add_command("rootpw", &self.root_password_crypted);
        ks.add_command("timezone", &self.timezone);
        // eth1 is the public interface; eth0 stays on the cluster network.
        ks.add_command(
            "network",
            &format!(
                "--device eth1 --bootproto static --ip {} --netmask {} --gateway {} --nameserver {} --hostname {}",
                self.public_ip, self.public_netmask, self.gateway, self.dns, self.public_hostname
            ),
        );
        // Site identity lands in %post for the services to read.
        ks.posts.insert(
            0,
            crate::kickstart::PostScript {
                script: format!(
                    "# Frontend site configuration from the install form\n\
                     export CLUSTER_NAME={}\n\
                     export PUBLIC_HOSTNAME={}\n\
                     /usr/bin/ypdomainname {}\n",
                    self.cluster_name, self.public_hostname, self.cluster_name
                ),
                origin: "frontend-form".into(),
            },
        );
        Ok(ks)
    }
}

fn is_dotted_quad(s: &str) -> bool {
    let parts: Vec<&str> = s.split('.').collect();
    parts.len() == 4 && parts.iter().all(|p| p.parse::<u8>().is_ok() && !p.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::default_profiles;

    fn generator() -> KickstartGenerator {
        KickstartGenerator::new(default_profiles(), "10.1.1.1", "install/rocks-dist")
    }

    #[test]
    fn default_form_generates_frontend_kickstart() {
        let ks = FrontendForm::default().generate(&generator()).unwrap();
        let text = ks.render();
        assert!(text.contains("--device eth1 --bootproto static --ip 198.202.88.1"));
        assert!(text.contains("--hostname frontend-0.local"));
        assert!(text.contains("CLUSTER_NAME=rocks"));
        // Frontend services are all present.
        for pkg in ["dhcp", "mysql-server", "httpd", "pbs", "maui"] {
            assert!(text.contains(pkg), "missing {pkg}");
        }
    }

    #[test]
    fn form_overrides_profile_defaults() {
        let form = FrontendForm {
            timezone: "America/Los_Angeles".into(),
            root_password_crypted: "--iscrypted sdsc123".into(),
            ..Default::default()
        };
        let ks = form.generate(&generator()).unwrap();
        assert_eq!(ks.command("timezone"), Some("America/Los_Angeles"));
        assert_eq!(ks.command("rootpw"), Some("--iscrypted sdsc123"));
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let bad_ip = FrontendForm { public_ip: "not-an-ip".into(), ..Default::default() };
        assert!(bad_ip.validate().is_err());
        let bad_name = FrontendForm { cluster_name: "has space".into(), ..Default::default() };
        assert!(bad_name.validate().is_err());
        let unqualified = FrontendForm { public_hostname: "frontend".into(), ..Default::default() };
        assert!(unqualified.validate().is_err());
        let empty_pw = FrontendForm { root_password_crypted: "  ".into(), ..Default::default() };
        assert!(empty_pw.validate().is_err());
        let bad_octet = FrontendForm { gateway: "1.2.3.256".into(), ..Default::default() };
        assert!(bad_octet.validate().is_err());
    }

    #[test]
    fn ia64_frontend_gets_efi_layout() {
        let form = FrontendForm { arch: Arch::Ia64, ..Default::default() };
        let ks = form.generate(&generator()).unwrap();
        assert!(ks.render().contains("/boot/efi"));
    }
}
