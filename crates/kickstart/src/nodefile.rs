//! Node files: the single-purpose XML modules of paper Figure 2.
//!
//! A node file "specifies the packages and per-package post configuration
//! commands for a specific service". The vocabulary (all tags matched
//! case-insensitively, since the paper's own example is uppercase):
//!
//! ```xml
//! <?xml version="1.0" standalone="no"?>
//! <kickstart>
//!   <description>Setup the DHCP server for the cluster</description>
//!   <package>dhcp</package>
//!   <package arch="i386,i686,athlon">kernel</package>
//!   <post>
//!     <!-- shell commands run at the end of installation -->
//!     ...
//!   </post>
//!   <file name="/etc/motd" mode="create">
//!     Rocks compute node
//!   </file>
//!   <main>
//!     <lang>en_US</lang>
//!   </main>
//! </kickstart>
//! ```
//!
//! `<file>` elements declare configuration files to write during `%post`
//! — the declarative alternative to hand-written `cat` heredocs that the
//! Rocks framework grew for exactly this purpose.

use crate::{KsError, Result};
use rocks_rpm::Arch;
use rocks_xml::Document;

/// One `<package>` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageEntry {
    /// RPM package name.
    pub name: String,
    /// Restrict to these node architectures (empty = all).
    pub arches: Vec<Arch>,
}

impl PackageEntry {
    /// Whether this entry applies to a node of the given architecture.
    pub fn applies_to(&self, arch: Arch) -> bool {
        self.arches.is_empty() || self.arches.contains(&arch)
    }
}

/// One `<post>` script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PostEntry {
    /// Shell text, whitespace-trimmed at the ends but internally verbatim.
    pub script: String,
    /// Restrict to these node architectures (empty = all).
    pub arches: Vec<Arch>,
    /// Name of the node file that contributed the script (for the header
    /// comments Rocks writes into generated kickstarts).
    pub origin: String,
}

/// How a `<file>` element lands on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FileMode {
    /// Replace the file (default).
    #[default]
    Create,
    /// Append to it (e.g. extra lines in /etc/exports).
    Append,
}

/// One `<file>` element: a configuration file written during `%post`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileEntry {
    /// Absolute path on the installed node.
    pub path: String,
    /// File contents (leading/trailing blank space trimmed).
    pub contents: String,
    /// Create or append.
    pub mode: FileMode,
    /// Restrict to these node architectures (empty = all).
    pub arches: Vec<Arch>,
}

impl FileEntry {
    /// Render the shell fragment that writes this file — a quoted heredoc
    /// so the contents are never shell-expanded.
    pub fn render_shell(&self) -> String {
        let redirect = match self.mode {
            FileMode::Create => ">",
            FileMode::Append => ">>",
        };
        format!(
            "cat {redirect} {} << 'EOF_ROCKS_FILE'\n{}\nEOF_ROCKS_FILE",
            self.path, self.contents
        )
    }
}

/// One `<main>` directive, e.g. `lang` → `en_US`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MainDirective {
    /// Kickstart command name (`lang`, `rootpw`, `timezone`, ...).
    pub command: String,
    /// Argument text.
    pub value: String,
}

/// A parsed node file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeFile {
    /// Module name (the graph refers to node files by name).
    pub name: String,
    /// Human description.
    pub description: String,
    /// Packages contributed by this module.
    pub packages: Vec<PackageEntry>,
    /// Post scripts contributed by this module.
    pub posts: Vec<PostEntry>,
    /// Declarative configuration files written during %post.
    pub files: Vec<FileEntry>,
    /// Kickstart main-section directives.
    pub main: Vec<MainDirective>,
}

impl NodeFile {
    /// Parse a node file from XML text. `name` is the module name the
    /// graph will use (in real Rocks this is the file's basename).
    pub fn parse(name: &str, xml: &str) -> Result<NodeFile> {
        let doc = Document::parse(xml)?;
        let root = doc.root();
        if !root.name().eq_ignore_ascii_case("kickstart") {
            return Err(KsError::BadNodeFile {
                file: name.to_string(),
                reason: format!("root element is <{}>, expected <kickstart>", root.name()),
            });
        }

        let description =
            root.child("description").map(|d| d.text().trim().to_string()).unwrap_or_default();

        let mut packages = Vec::new();
        for pkg in root.elements("package") {
            let pkg_name = pkg.text().trim().to_string();
            if pkg_name.is_empty() {
                return Err(KsError::BadNodeFile {
                    file: name.to_string(),
                    reason: "empty <package> element".to_string(),
                });
            }
            packages.push(PackageEntry {
                name: pkg_name,
                arches: parse_arches(name, pkg.attr("arch"))?,
            });
        }

        let mut posts = Vec::new();
        for post in root.elements("post") {
            let script = post.text().trim().to_string();
            if script.is_empty() {
                continue; // an empty post contributes nothing
            }
            posts.push(PostEntry {
                script,
                arches: parse_arches(name, post.attr("arch"))?,
                origin: name.to_string(),
            });
        }

        let mut files = Vec::new();
        for file in root.elements("file") {
            let path = file
                .attr("name")
                .ok_or_else(|| KsError::BadNodeFile {
                    file: name.to_string(),
                    reason: "<file> missing name attribute".to_string(),
                })?
                .to_string();
            let mode = match file.attr("mode") {
                None | Some("create") => FileMode::Create,
                Some("append") => FileMode::Append,
                Some(other) => {
                    return Err(KsError::BadNodeFile {
                        file: name.to_string(),
                        reason: format!("unknown file mode {other:?}"),
                    })
                }
            };
            files.push(FileEntry {
                path,
                contents: file.text().trim().to_string(),
                mode,
                arches: parse_arches(name, file.attr("arch"))?,
            });
        }

        let mut main = Vec::new();
        if let Some(main_el) = root.child("main") {
            for directive in main_el.all_elements() {
                main.push(MainDirective {
                    command: directive.name().to_ascii_lowercase(),
                    value: directive.text().trim().to_string(),
                });
            }
        }

        Ok(NodeFile { name: name.to_string(), description, packages, posts, files, main })
    }

    /// Package names applicable to `arch`.
    pub fn packages_for(&self, arch: Arch) -> impl Iterator<Item = &str> {
        self.packages.iter().filter(move |p| p.applies_to(arch)).map(|p| p.name.as_str())
    }

    /// Post scripts applicable to `arch`.
    pub fn posts_for(&self, arch: Arch) -> impl Iterator<Item = &PostEntry> {
        self.posts.iter().filter(move |p| p.arches.is_empty() || p.arches.contains(&arch))
    }

    /// Declarative files applicable to `arch`.
    pub fn files_for(&self, arch: Arch) -> impl Iterator<Item = &FileEntry> {
        self.files.iter().filter(move |f| f.arches.is_empty() || f.arches.contains(&arch))
    }
}

fn parse_arches(file: &str, attr: Option<&str>) -> Result<Vec<Arch>> {
    let Some(attr) = attr else { return Ok(Vec::new()) };
    attr.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            Arch::parse(s).ok_or_else(|| KsError::BadNodeFile {
                file: file.to_string(),
                reason: format!("unknown arch {s:?} in arch attribute"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Figure 2, transcribed (awk quoting normalized; the
    /// figure's OCR mangled the single quotes).
    pub const FIG2_DHCP_SERVER: &str = r#"<?XML VERSION="1.0" STANDALONE="no"?>
<KICKSTART>
        <DESCRIPTION>Setup the DHCP server for the cluster</DESCRIPTION>
        <PACKAGE>dhcp</PACKAGE>
        <POST>
                <!-- tell dhcp just to listen to eth0 -->
                awk '
                        /^DHCPD_INTERFACES/ {
                                printf("DHCPD_INTERFACES=\"eth0\"\n");
                                next;
                        }
                        {
                                print $0;
                        } ' /etc/sysconfig/dhcpd &gt; /tmp/dhcpd
                mv /tmp/dhcpd /etc/sysconfig/dhcpd
        </POST>
</KICKSTART>
"#;

    #[test]
    fn parses_figure_2() {
        let nf = NodeFile::parse("dhcp-server", FIG2_DHCP_SERVER).unwrap();
        assert_eq!(nf.description, "Setup the DHCP server for the cluster");
        assert_eq!(nf.packages.len(), 1);
        assert_eq!(nf.packages[0].name, "dhcp");
        assert_eq!(nf.posts.len(), 1);
        let script = &nf.posts[0].script;
        assert!(script.contains("DHCPD_INTERFACES"));
        assert!(script.contains("> /tmp/dhcpd"), "entity must decode: {script}");
        assert!(script.contains("mv /tmp/dhcpd /etc/sysconfig/dhcpd"));
        assert!(!script.contains("tell dhcp"), "comments are not script text");
        assert_eq!(nf.posts[0].origin, "dhcp-server");
    }

    #[test]
    fn arch_gated_packages() {
        let nf = NodeFile::parse(
            "kernel",
            r#"<kickstart>
                <package arch="i686,athlon">kernel-smp</package>
                <package arch="ia64">kernel-ia64</package>
                <package>kernel-doc</package>
               </kickstart>"#,
        )
        .unwrap();
        let i686: Vec<_> = nf.packages_for(Arch::I686).collect();
        assert_eq!(i686, vec!["kernel-smp", "kernel-doc"]);
        let ia64: Vec<_> = nf.packages_for(Arch::Ia64).collect();
        assert_eq!(ia64, vec!["kernel-ia64", "kernel-doc"]);
    }

    #[test]
    fn arch_gated_posts() {
        let nf = NodeFile::parse(
            "myri",
            r#"<kickstart>
                <post arch="i386,i686,athlon">rebuild-gm-driver</post>
                <post>echo done</post>
               </kickstart>"#,
        )
        .unwrap();
        assert_eq!(nf.posts_for(Arch::I686).count(), 2);
        assert_eq!(nf.posts_for(Arch::Ia64).count(), 1);
    }

    #[test]
    fn main_directives() {
        let nf = NodeFile::parse(
            "base",
            r#"<kickstart>
                <main>
                  <lang>en_US</lang>
                  <timezone>America/Los_Angeles</timezone>
                  <rootpw>--iscrypted xyz</rootpw>
                </main>
               </kickstart>"#,
        )
        .unwrap();
        assert_eq!(nf.main.len(), 3);
        assert_eq!(nf.main[0].command, "lang");
        assert_eq!(nf.main[2].value, "--iscrypted xyz");
    }

    #[test]
    fn bad_root_and_empty_package_rejected() {
        assert!(matches!(NodeFile::parse("x", "<graph/>"), Err(KsError::BadNodeFile { .. })));
        assert!(matches!(
            NodeFile::parse("x", "<kickstart><package>  </package></kickstart>"),
            Err(KsError::BadNodeFile { .. })
        ));
        assert!(matches!(
            NodeFile::parse("x", r#"<kickstart><package arch="sparc">y</package></kickstart>"#),
            Err(KsError::BadNodeFile { .. })
        ));
    }

    #[test]
    fn cdata_posts_preserve_shell_specials() {
        let nf = NodeFile::parse(
            "x",
            "<kickstart><post><![CDATA[if [ $a < $b ]; then echo \"x&y\"; fi]]></post></kickstart>",
        )
        .unwrap();
        assert_eq!(nf.posts[0].script, "if [ $a < $b ]; then echo \"x&y\"; fi");
    }

    #[test]
    fn file_elements_parse_and_render() {
        let nf = NodeFile::parse(
            "exports",
            r#"<kickstart>
                <file name="/etc/exports" mode="append">/export/home 10.0.0.0/255.0.0.0(rw)</file>
                <file name="/etc/motd">Rocks compute node</file>
               </kickstart>"#,
        )
        .unwrap();
        assert_eq!(nf.files.len(), 2);
        assert_eq!(nf.files[0].mode, FileMode::Append);
        assert_eq!(nf.files[1].mode, FileMode::Create);
        let shell = nf.files[0].render_shell();
        assert!(shell.starts_with("cat >> /etc/exports"));
        assert!(shell.contains("/export/home"));
        assert!(shell.contains("EOF_ROCKS_FILE"));
        let shell = nf.files[1].render_shell();
        assert!(shell.starts_with("cat > /etc/motd"));
    }

    #[test]
    fn file_element_validation() {
        assert!(matches!(
            NodeFile::parse("x", "<kickstart><file>no name</file></kickstart>"),
            Err(KsError::BadNodeFile { .. })
        ));
        assert!(matches!(
            NodeFile::parse(
                "x",
                r#"<kickstart><file name="/x" mode="sideways">y</file></kickstart>"#
            ),
            Err(KsError::BadNodeFile { .. })
        ));
    }

    #[test]
    fn arch_gated_files() {
        let nf = NodeFile::parse(
            "x",
            r#"<kickstart><file name="/etc/gm.conf" arch="i386,i686,athlon">port 4</file></kickstart>"#,
        )
        .unwrap();
        assert_eq!(nf.files_for(Arch::I686).count(), 1);
        assert_eq!(nf.files_for(Arch::Ia64).count(), 0);
    }

    #[test]
    fn empty_post_is_dropped() {
        let nf = NodeFile::parse("x", "<kickstart><post>   </post></kickstart>").unwrap();
        assert!(nf.posts.is_empty());
    }
}
