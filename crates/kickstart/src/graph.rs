//! Graph files and traversal (paper Figures 3 and 4).
//!
//! "An XML-based graph file links all the defined modules together with
//! directed edges. An edge represents a relation between two modules. The
//! roots of the graph represent 'appliances', such as compute and
//! frontend." Traversal collects the set of node files that describe one
//! appliance; edges may be gated by architecture, which is how a single
//! graph supports IA-32, Athlon, and IA-64 nodes simultaneously (§6.1).

use crate::nodefile::NodeFile;
use crate::{KsError, Result};
use rocks_rpm::Arch;
use rocks_xml::Document;
use std::collections::{BTreeMap, BTreeSet};

/// A directed edge `from → to` in the configuration graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    /// Source module (or appliance root).
    pub from: String,
    /// Destination module.
    pub to: String,
    /// Restrict the edge to these node architectures (empty = all).
    pub arches: Vec<Arch>,
}

impl Edge {
    /// Whether this edge is followed for a node of `arch`.
    pub fn applies_to(&self, arch: Arch) -> bool {
        self.arches.is_empty() || self.arches.contains(&arch)
    }
}

/// A parsed graph file: edges in declaration order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Graph {
    /// Edges in document order (traversal order is deterministic).
    pub edges: Vec<Edge>,
    /// Optional description.
    pub description: String,
}

impl Graph {
    /// Parse a graph file:
    ///
    /// ```xml
    /// <graph>
    ///   <description>...</description>
    ///   <edge from="compute" to="mpi"/>
    ///   <edge from="mpi" to="c-development"/>
    /// </graph>
    /// ```
    pub fn parse(xml: &str) -> Result<Graph> {
        let doc = Document::parse(xml)?;
        let root = doc.root();
        if !root.name().eq_ignore_ascii_case("graph") {
            return Err(KsError::Xml(format!(
                "root element is <{}>, expected <graph>",
                root.name()
            )));
        }
        let description =
            root.child("description").map(|d| d.text().trim().to_string()).unwrap_or_default();
        let mut edges = Vec::new();
        for edge in root.elements("edge") {
            let from = edge
                .attr("from")
                .ok_or_else(|| KsError::Xml("<edge> missing from attribute".into()))?
                .to_string();
            let to = edge
                .attr("to")
                .ok_or_else(|| KsError::Xml("<edge> missing to attribute".into()))?
                .to_string();
            let arches = match edge.attr("arch") {
                Some(attr) => attr
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(|s| {
                        Arch::parse(s)
                            .ok_or_else(|| KsError::Xml(format!("unknown arch {s:?} on edge")))
                    })
                    .collect::<Result<Vec<Arch>>>()?,
                None => Vec::new(),
            };
            edges.push(Edge { from, to, arches });
        }
        Ok(Graph { edges, description })
    }

    /// Serialize back to XML (used when a customized distribution saves
    /// its build directory, §6.2.3).
    pub fn to_xml(&self) -> String {
        let mut root = rocks_xml::Element::new("graph");
        if !self.description.is_empty() {
            root.push(rocks_xml::Node::Element(
                rocks_xml::Element::new("description").with_text(self.description.clone()),
            ));
        }
        for edge in &self.edges {
            let mut el = rocks_xml::Element::new("edge")
                .with_attr("from", edge.from.clone())
                .with_attr("to", edge.to.clone());
            if !edge.arches.is_empty() {
                let list = edge.arches.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(",");
                el.set_attr("arch", list);
            }
            root.push(rocks_xml::Node::Element(el));
        }
        rocks_xml::write_document(
            &rocks_xml::Document::from_root(root),
            rocks_xml::WriteStyle::Pretty,
        )
    }

    /// Add an edge programmatically (used by site customization, §6.2.3).
    pub fn add_edge(&mut self, from: &str, to: &str) {
        self.edges.push(Edge { from: from.to_string(), to: to.to_string(), arches: Vec::new() });
    }

    /// All module names mentioned anywhere in the graph.
    pub fn mentioned(&self) -> BTreeSet<&str> {
        self.edges.iter().flat_map(|e| [e.from.as_str(), e.to.as_str()]).collect()
    }

    /// Root names: modules that appear as `from` but never as `to`.
    /// "The roots of the graph represent appliances."
    pub fn roots(&self) -> Vec<&str> {
        let targets: BTreeSet<&str> = self.edges.iter().map(|e| e.to.as_str()).collect();
        let mut roots: Vec<&str> =
            self.edges.iter().map(|e| e.from.as_str()).filter(|f| !targets.contains(f)).collect();
        roots.dedup();
        let mut seen = BTreeSet::new();
        roots.retain(|r| seen.insert(*r));
        roots
    }

    /// Depth-first pre-order traversal from `root`, following edges that
    /// apply to `arch`, visiting each module once. The result always
    /// starts with `root` itself — the paper's example traversal for a
    /// compute appliance is "compute, mpi, c-development".
    pub fn traverse(&self, root: &str, arch: Arch) -> Result<Vec<String>> {
        if !self.mentioned().contains(root) {
            return Err(KsError::UnknownRoot(root.to_string()));
        }
        let mut adjacency: BTreeMap<&str, Vec<&Edge>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency.entry(edge.from.as_str()).or_default().push(edge);
        }
        let mut order = Vec::new();
        let mut visited = BTreeSet::new();
        let mut stack = vec![root.to_string()];
        // Explicit stack DFS; push children in reverse so document order
        // pops first.
        while let Some(current) = stack.pop() {
            if !visited.insert(current.clone()) {
                continue;
            }
            order.push(current.clone());
            if let Some(edges) = adjacency.get(current.as_str()) {
                for edge in edges.iter().rev() {
                    if edge.applies_to(arch) && !visited.contains(&edge.to) {
                        stack.push(edge.to.clone());
                    }
                }
            }
        }
        Ok(order)
    }

    /// Whether the graph contains a directed cycle (legal for traversal —
    /// the visited set breaks loops — but worth reporting to users).
    pub fn has_cycle(&self) -> bool {
        let mut adjacency: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency.entry(edge.from.as_str()).or_default().push(edge.to.as_str());
        }
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            InProgress,
            Done,
        }
        let mut marks: BTreeMap<&str, Mark> = BTreeMap::new();
        fn visit<'a>(
            node: &'a str,
            adjacency: &BTreeMap<&'a str, Vec<&'a str>>,
            marks: &mut BTreeMap<&'a str, Mark>,
        ) -> bool {
            match marks.get(node) {
                Some(Mark::Done) => return false,
                Some(Mark::InProgress) => return true,
                None => {}
            }
            marks.insert(node, Mark::InProgress);
            if let Some(next) = adjacency.get(node) {
                for n in next {
                    if visit(n, adjacency, marks) {
                        return true;
                    }
                }
            }
            marks.insert(node, Mark::Done);
            false
        }
        let nodes: Vec<&str> = self.mentioned().into_iter().collect();
        nodes.iter().any(|n| visit(n, &adjacency, &mut marks))
    }
}

/// A complete profile set: the graph plus the node files it composes.
/// This is the content of a distribution's `build/` directory (§6.2.3) —
/// what users edit to customize their cluster.
#[derive(Debug, Clone, Default)]
pub struct ProfileSet {
    /// The composition graph.
    pub graph: Graph,
    /// Node files keyed by module name.
    pub nodes: BTreeMap<String, NodeFile>,
}

impl ProfileSet {
    /// Build from parts.
    pub fn new(graph: Graph, nodes: Vec<NodeFile>) -> ProfileSet {
        ProfileSet { graph, nodes: nodes.into_iter().map(|n| (n.name.clone(), n)).collect() }
    }

    /// Add or replace a node file (site customization).
    pub fn add_node_file(&mut self, node: NodeFile) {
        self.nodes.insert(node.name.clone(), node);
    }

    /// Validate that every module the graph mentions has a node file,
    /// returning one error per missing module (first referencing edge
    /// reported).
    pub fn validate(&self) -> Vec<KsError> {
        let mut missing: BTreeMap<&str, String> = BTreeMap::new();
        for edge in &self.graph.edges {
            for referenced in [&edge.from, &edge.to] {
                if !self.nodes.contains_key(referenced) {
                    missing
                        .entry(referenced.as_str())
                        .or_insert_with(|| format!("{} -> {}", edge.from, edge.to));
                }
            }
        }
        missing
            .into_iter()
            .map(|(referenced, by)| KsError::UndefinedNode {
                referenced: referenced.to_string(),
                by,
            })
            .collect()
    }

    /// Traverse and return the node files for an appliance, in order.
    pub fn modules_for(&self, root: &str, arch: Arch) -> Result<Vec<&NodeFile>> {
        let order = self.graph.traverse(root, arch)?;
        order
            .iter()
            .map(|name| {
                self.nodes.get(name).ok_or_else(|| KsError::UndefinedNode {
                    referenced: name.clone(),
                    by: format!("traversal from {root}"),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_graph() -> Graph {
        // The shape of Figures 3/4: compute and frontend appliances
        // sharing modules.
        Graph::parse(
            r#"<graph>
                <description>Rocks default appliance graph</description>
                <edge from="compute" to="mpi"/>
                <edge from="mpi" to="c-development"/>
                <edge from="frontend" to="mpi"/>
                <edge from="frontend" to="dhcp-server"/>
               </graph>"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_traversal_compute_mpi_cdev() {
        // §6.1: "if the machine was configured to be a compute appliance,
        // the traversal of the graph would be the compute, mpi, and
        // c-development node files."
        let graph = paper_graph();
        let order = graph.traverse("compute", Arch::I686).unwrap();
        assert_eq!(order, vec!["compute", "mpi", "c-development"]);
    }

    #[test]
    fn roots_are_appliances() {
        let graph = paper_graph();
        assert_eq!(graph.roots(), vec!["compute", "frontend"]);
    }

    #[test]
    fn shared_modules_visited_once() {
        let graph = Graph::parse(
            r#"<graph>
                <edge from="compute" to="a"/>
                <edge from="compute" to="b"/>
                <edge from="a" to="shared"/>
                <edge from="b" to="shared"/>
               </graph>"#,
        )
        .unwrap();
        let order = graph.traverse("compute", Arch::I386).unwrap();
        assert_eq!(order, vec!["compute", "a", "shared", "b"]);
    }

    #[test]
    fn arch_gated_edges() {
        let graph = Graph::parse(
            r#"<graph>
                <edge from="compute" to="myrinet" arch="i386,i686,athlon"/>
                <edge from="compute" to="base"/>
               </graph>"#,
        )
        .unwrap();
        assert_eq!(
            graph.traverse("compute", Arch::I686).unwrap(),
            vec!["compute", "myrinet", "base"]
        );
        assert_eq!(graph.traverse("compute", Arch::Ia64).unwrap(), vec!["compute", "base"]);
    }

    #[test]
    fn cycles_do_not_hang_traversal() {
        let graph = Graph::parse(
            r#"<graph>
                <edge from="a" to="b"/>
                <edge from="b" to="a"/>
               </graph>"#,
        )
        .unwrap();
        assert!(graph.has_cycle());
        let order = graph.traverse("a", Arch::I386).unwrap();
        assert_eq!(order, vec!["a", "b"]);
        assert!(!paper_graph().has_cycle());
    }

    #[test]
    fn unknown_root_errors() {
        let graph = paper_graph();
        assert!(matches!(graph.traverse("toaster", Arch::I386), Err(KsError::UnknownRoot(_))));
    }

    #[test]
    fn missing_attrs_rejected() {
        assert!(Graph::parse(r#"<graph><edge from="a"/></graph>"#).is_err());
        assert!(Graph::parse(r#"<graph><edge to="a"/></graph>"#).is_err());
        assert!(Graph::parse(r#"<notgraph/>"#).is_err());
        assert!(Graph::parse(r#"<graph><edge from="a" to="b" arch="vax"/></graph>"#).is_err());
    }

    #[test]
    fn xml_round_trip() {
        let graph = paper_graph();
        let xml = graph.to_xml();
        let reparsed = Graph::parse(&xml).unwrap();
        assert_eq!(graph, reparsed);
    }

    #[test]
    fn profile_set_validation_finds_dangling_references() {
        let graph = paper_graph();
        let nodes = vec![
            NodeFile::parse("compute", "<kickstart><package>x</package></kickstart>").unwrap(),
            NodeFile::parse("mpi", "<kickstart><package>mpich</package></kickstart>").unwrap(),
        ];
        let set = ProfileSet::new(graph, nodes);
        let errors = set.validate();
        // Missing: c-development, frontend, dhcp-server.
        assert_eq!(errors.len(), 3);
        assert!(errors.iter().all(|e| matches!(e, KsError::UndefinedNode { .. })));
    }
}
