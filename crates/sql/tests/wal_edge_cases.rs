//! WAL and recovery edge cases: empty logs, logs cut exactly on frame
//! boundaries, duplicated commit records, checkpoints interrupted
//! mid-write, recovery idempotence — and the plan-cache regression
//! guard (a cached plan must never serve rolled-back rows).

use rocks_sql::disk::CrashPlan;
use rocks_sql::durable::DurableDatabase;
use rocks_sql::wal::{self, WalRecord};
use rocks_sql::{DurableError, MemVfs};

const SETUP: &[&str] = &[
    "create table nodes (id int, name text, rack int)",
    "insert into nodes values (1, 'compute-0-0', 0)",
    "insert into nodes values (2, 'compute-0-1', 0)",
    "insert into nodes values (3, 'compute-1-0', 1)",
];

fn populated(vfs: &MemVfs) -> DurableDatabase {
    let mut db = DurableDatabase::open(vfs).unwrap();
    for sql in SETUP {
        db.execute(sql).unwrap();
    }
    db
}

fn wal_image(vfs: &MemVfs) -> Vec<u8> {
    use rocks_sql::Vfs;
    let file = vfs.open("wal").unwrap();
    let len = file.len().unwrap() as usize;
    let mut bytes = vec![0u8; len];
    file.read_exact_at(0, &mut bytes).unwrap();
    bytes
}

/// Build a vfs whose WAL holds exactly `image` (and nothing else).
fn vfs_with_wal(image: &[u8]) -> MemVfs {
    use rocks_sql::Vfs;
    let vfs = MemVfs::new();
    let mut file = vfs.open("wal").unwrap();
    file.write_at(0, image).unwrap();
    file.sync().unwrap();
    vfs
}

#[test]
fn empty_wal_file_opens_clean() {
    use rocks_sql::Vfs;
    let vfs = MemVfs::new();
    // Zero-length files present on disk (a crash right after creation).
    vfs.open("wal").unwrap().sync().unwrap();
    vfs.open("data").unwrap().sync().unwrap();
    let db = DurableDatabase::open(&vfs).unwrap();
    assert_eq!(db.seq(), 0);
    assert!(db.recovery_report().anomalies.is_empty());
    assert_eq!(db.recovery_report().commits_replayed, 0);
    assert!(db.reader().table_names().is_empty());
}

/// Truncating the log at EXACTLY a frame boundary is the one damage
/// shape that leaves no forensic residue. Every anomaly-free cut must
/// recover the clean committed prefix — no spurious anomalies, and a
/// state identical to an engine that only ever ran that prefix.
#[test]
fn truncation_at_every_frame_boundary_recovers_a_clean_prefix() {
    let vfs = MemVfs::new();
    populated(&vfs);
    let image = wal_image(&vfs);

    let mut boundaries = 0;
    for cut in 0..=image.len() {
        let scan = wal::scan_bytes(&image[..cut]);
        if !scan.anomalies.is_empty() {
            continue; // mid-frame or mid-transaction cut, covered elsewhere
        }
        boundaries += 1;
        let committed = scan.txns.len();

        let recovered = DurableDatabase::open(&vfs_with_wal(&image[..cut])).unwrap();
        assert!(
            recovered.recovery_report().anomalies.is_empty(),
            "clean cut at {cut} produced anomalies: {:?}",
            recovered.recovery_report().anomalies
        );
        assert_eq!(recovered.recovery_report().commits_replayed as usize, committed);

        // Same state as an engine that executed only the prefix.
        let fresh_vfs = MemVfs::new();
        let mut fresh = DurableDatabase::open(&fresh_vfs).unwrap();
        for sql in &SETUP[..committed] {
            fresh.execute(sql).unwrap();
        }
        assert_eq!(recovered.state_fingerprint(), fresh.state_fingerprint(), "cut at {cut}");
    }
    // One boundary per committed statement, plus the empty log.
    assert_eq!(boundaries, SETUP.len() + 1);
}

/// A crash between the checkpoint's header flip and the log truncation
/// can leave already-applied commits in the log — and a torn rewrite can
/// duplicate a commit record outright. Replay must treat duplicates as
/// no-ops, not corruption.
#[test]
fn duplicate_commit_records_are_skipped_on_replay() {
    let vfs = MemVfs::new();
    populated(&vfs);
    let mut image = wal_image(&vfs);

    let last = wal::scan_bytes(&image).txns.last().cloned().unwrap();
    // Duplicate the final commit record (twice, for good measure).
    for _ in 0..2 {
        image.extend(wal::encode_frame(&WalRecord::Commit {
            seq: last.seq,
            revision: last.revision,
            schema_gen: last.schema_gen,
        }));
    }

    let db = DurableDatabase::open(&vfs_with_wal(&image)).unwrap();
    assert_eq!(db.recovery_report().commits_replayed as usize, SETUP.len());
    assert_eq!(db.recovery_report().commits_skipped, 2);
    assert_eq!(db.seq(), last.seq);
    let rows = db.reader().query_ref("select id from nodes order by id").unwrap();
    assert_eq!(rows.rows.len(), 3);
}

/// Out-of-order duplicates (an old commit reappearing after newer ones)
/// are also skipped — only a forward gap is corruption.
#[test]
fn stale_commit_after_newer_ones_is_skipped() {
    let vfs = MemVfs::new();
    populated(&vfs);
    let mut image = wal_image(&vfs);
    image.extend(wal::encode_frame(&WalRecord::Commit { seq: 1, revision: 1, schema_gen: 1 }));
    let db = DurableDatabase::open(&vfs_with_wal(&image)).unwrap();
    assert_eq!(db.recovery_report().commits_skipped, 1);
    assert_eq!(db.seq(), SETUP.len() as u64);
}

/// A forward sequence gap means a committed transaction vanished from
/// the middle of the log: that is NOT survivable damage.
#[test]
fn sequence_gap_is_corruption() {
    let vfs = MemVfs::new();
    populated(&vfs);
    let mut image = wal_image(&vfs);
    image.extend(wal::encode_frame(&WalRecord::Begin { seq: 99 }));
    image.extend(wal::encode_frame(&WalRecord::Commit { seq: 99, revision: 99, schema_gen: 1 }));
    let err = DurableDatabase::open(&vfs_with_wal(&image)).unwrap_err();
    assert!(matches!(err, DurableError::Recovery(_)), "got {err:?}");
}

/// Kill the engine at every disk operation inside checkpoint().
/// Whatever the kill point, the survivor must recover the full
/// pre-checkpoint state, and a second recovery must be a no-op.
#[test]
fn checkpoint_interrupted_at_every_write_recovers() {
    // Golden state the interrupted checkpoint must never lose.
    let golden_vfs = MemVfs::new();
    let golden = populated(&golden_vfs);
    let golden_fp = golden.state_fingerprint();

    let mut kill_points = 0;
    for at in 1..200u64 {
        let vfs = MemVfs::new();
        let mut db = populated(&vfs);
        // arm() restarts the op counter, so `at` counts mutating disk
        // ops from the start of the checkpoint itself.
        vfs.arm(CrashPlan { at_op: at, seed: 0xBAD_5EED ^ at });
        match db.checkpoint() {
            Err(DurableError::Disk(rocks_sql::DiskError::Crashed)) => kill_points += 1,
            Ok(()) => {
                assert!(!vfs.crashed(), "checkpoint returned Ok after the crash fired");
                break; // armed past the last checkpoint op: sweep complete
            }
            Err(other) => panic!("checkpoint failed without a crash: {other}"),
        }
        drop(db);

        let survivor = vfs.survivor();
        let recovered = DurableDatabase::open(&survivor).unwrap();
        assert_eq!(
            recovered.state_fingerprint(),
            golden_fp,
            "state lost when checkpoint died at relative op {at}"
        );
        drop(recovered);
        // Idempotence: recovery already repaired the disk; a second open
        // must see a clean database and change nothing.
        let again = DurableDatabase::open(&survivor).unwrap();
        assert_eq!(again.state_fingerprint(), golden_fp);
        assert!(
            again.recovery_report().anomalies.is_empty(),
            "second recovery still sees damage at relative op {at}: {:?}",
            again.recovery_report().anomalies
        );
    }
    assert!(kill_points >= 5, "checkpoint performed only {kill_points} interruptible ops");
}

/// Recovery is idempotent after mid-commit crashes too: opening the
/// survivor twice yields identical states and the second open sees a
/// repaired, anomaly-free disk.
#[test]
fn recovery_is_idempotent_after_mid_commit_crash() {
    for at in 1..40u64 {
        let vfs = MemVfs::new();
        let mut db = populated(&vfs);
        vfs.arm(CrashPlan { at_op: at, seed: at });
        match db.execute("insert into nodes values (4, 'compute-1-1', 1)") {
            Err(DurableError::Disk(rocks_sql::DiskError::Crashed)) => {}
            Ok(_) => continue, // armed past this commit's ops
            Err(other) => panic!("unexpected failure: {other}"),
        }
        drop(db);
        let survivor = vfs.survivor();
        let first = DurableDatabase::open(&survivor).unwrap();
        let fp = first.state_fingerprint();
        drop(first);
        let second = DurableDatabase::open(&survivor).unwrap();
        assert_eq!(second.state_fingerprint(), fp, "kill at relative op {at}");
        assert!(second.recovery_report().anomalies.is_empty(), "kill at relative op {at}");
    }
}

/// Regression (plan cache vs rollback): warm the plan cache inside a
/// transaction, roll the transaction back, and re-issue the same query
/// text. The cached plan must never serve the rolled-back rows — in
/// process, and after a recovery.
#[test]
fn stale_cached_plan_never_serves_rolled_back_rows() {
    let vfs = MemVfs::new();
    let mut db = populated(&vfs);
    let probe = "select name from nodes where rack = 1 order by id";
    // Warm the cache against pre-transaction contents too.
    assert_eq!(db.reader().query_ref(probe).unwrap().rows.len(), 1);

    db.begin().unwrap();
    db.execute("insert into nodes values (40, 'ghost-1-9', 1)").unwrap();
    // Re-warm the cache against the provisional contents.
    let provisional = db.reader().query_ref(probe).unwrap();
    assert_eq!(provisional.rows.len(), 2, "transaction contents visible before rollback");
    db.rollback().unwrap();

    let after = db.reader().query_ref(probe).unwrap();
    assert_eq!(after.rows.len(), 1, "cached plan served rolled-back rows");
    assert!(!format!("{after:?}").contains("ghost"), "rolled-back row leaked: {after:?}");

    drop(db);
    let recovered = DurableDatabase::open(&vfs).unwrap();
    let replayed = recovered.reader().query_ref(probe).unwrap();
    assert_eq!(replayed.rows.len(), 1, "rolled-back row survived recovery");
}
