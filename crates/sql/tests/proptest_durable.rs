//! Differential property tests for the durable engine: a
//! [`DurableDatabase`] fed the same statements as a plain in-memory
//! [`Database`] must answer every query byte-identically — including
//! after being closed and reopened (recovered) at every commit
//! boundary, after checkpoints at arbitrary points, and after rolled
//! back transactions (which must leave no trace on either side).
//!
//! The table/query shapes mirror the planner's differential suite
//! (`proptest_plan.rs`): tiny collision-heavy domains and coercion
//! pitfalls, so recovery is exercised against exactly the states the
//! planner tests consider adversarial.

use proptest::prelude::*;
use rocks_sql::{Database, DurableDatabase, MemVfs};

/// Rows: (id, name-ish tag, membership, rack, tricky text tag).
type NodeRow = (i64, String, i64, i64, &'static str);

fn tag_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("'5'"),
        Just("'05'"),
        Just("' 5'"),
        Just("'x'"),
        Just("'compute'"),
        Just("NULL"),
        Just("'6'"),
    ]
}

fn node_rows() -> impl Strategy<Value = Vec<NodeRow>> {
    proptest::collection::vec((0i64..12, "[a-z]{1,6}", 0i64..5, 0i64..3, tag_strategy()), 0..16)
}

fn mutation_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..12, 0i64..5, 0i64..3).prop_map(|(id, m, r)| {
            format!("insert into nodes values ({id}, 'new', {m}, {r}, '5')")
        }),
        (0i64..5, 0i64..5).prop_map(|(from, to)| {
            format!("update nodes set membership = {to} where membership = {from}")
        }),
        (0i64..12).prop_map(|id| format!("delete from nodes where id = {id}")),
    ]
}

/// The statement stream both engines execute: schema, then inserts,
/// then random mutations.
fn statements(nodes: &[NodeRow], mutations: &[String]) -> Vec<String> {
    let mut stmts =
        vec!["create table nodes (id int, name text, membership int, rack int, tag text)"
            .to_string()];
    for (id, name, membership, rack, tag) in nodes {
        stmts.push(format!(
            "insert into nodes values ({id}, '{}', {membership}, {rack}, {tag})",
            name.replace('\'', "''")
        ));
    }
    stmts.extend(mutations.iter().cloned());
    stmts
}

/// Queries diffed after the streams finish. Includes index-friendly
/// point lookups (the recovered engine warms hash indexes from its
/// secondary trees) and order-sensitive shapes.
const PROBES: &[&str] = &[
    "select * from nodes",
    "select * from nodes where id = 5",
    "select id from nodes where tag = '5'",
    "select id from nodes where tag = ' 5'",
    "select id from nodes where tag is null",
    "select id, name from nodes where membership = 2 order by id",
    "select rack, count(*) from nodes group by rack",
    "select id, name, rack from nodes order by rack desc, id limit 4",
];

fn assert_engines_agree(mem: &Database, durable: &DurableDatabase) {
    for sql in PROBES {
        let m = mem.query_ref(sql);
        let d = durable.reader().query_ref(sql);
        match (m, d) {
            (Ok(m), Ok(d)) => assert_eq!(m, d, "results diverged for {sql}"),
            (Err(m), Err(d)) => assert_eq!(m, d, "errors diverged for {sql}"),
            (m, d) => panic!("one engine failed for {sql}: memory={m:?} durable={d:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same statements, same answers — with checkpoints sprinkled in on
    /// the durable side (they must be invisible to query results).
    #[test]
    fn durable_equals_memory(
        nodes in node_rows(),
        mutations in proptest::collection::vec(mutation_strategy(), 0..6),
        checkpoint_mask in 0i64..(1i64 << 32),
    ) {
        let vfs = MemVfs::new();
        let mut durable = DurableDatabase::open(&vfs).unwrap();
        let mut mem = Database::new();
        for (i, sql) in statements(&nodes, &mutations).iter().enumerate() {
            let m = mem.execute(sql);
            let d = durable.execute(sql);
            prop_assert_eq!(m.is_ok(), d.is_ok(), "acceptance diverged for {}", sql);
            if checkpoint_mask >> (i % 32) & 1 == 1 {
                durable.checkpoint().unwrap();
            }
        }
        assert_engines_agree(&mem, &durable);
    }

    /// Close and reopen the durable engine after EVERY commit: each
    /// prefix of the statement stream must recover to exactly the state
    /// the in-memory engine reaches by re-execution.
    #[test]
    fn reopen_at_every_commit_boundary(
        nodes in node_rows(),
        mutations in proptest::collection::vec(mutation_strategy(), 0..4),
        checkpoint_mask in 0i64..(1i64 << 32),
    ) {
        let vfs = MemVfs::new();
        let mut mem = Database::new();
        for (i, sql) in statements(&nodes, &mutations).iter().enumerate() {
            // Reopen from disk, replaying the whole history so far.
            let mut durable = DurableDatabase::open(&vfs).unwrap();
            assert_engines_agree(&mem, &durable);
            let m = mem.execute(sql);
            let d = durable.execute(sql);
            prop_assert_eq!(m.is_ok(), d.is_ok(), "acceptance diverged for {}", sql);
            if checkpoint_mask >> (i % 32) & 1 == 1 {
                durable.checkpoint().unwrap();
            }
        }
        let durable = DurableDatabase::open(&vfs).unwrap();
        assert_engines_agree(&mem, &durable);
    }

    /// Rolled-back transactions leave no trace: contents, recovered
    /// state, and cached-plan answers all match an engine that never saw
    /// the transaction.
    #[test]
    fn rollback_leaves_no_trace(
        nodes in node_rows(),
        txn_stmts in proptest::collection::vec(mutation_strategy(), 1..5),
    ) {
        let vfs = MemVfs::new();
        let mut durable = DurableDatabase::open(&vfs).unwrap();
        let mut mem = Database::new();
        for sql in statements(&nodes, &[]) {
            let m = mem.execute(&sql);
            let d = durable.execute(&sql);
            prop_assert_eq!(m.is_ok(), d.is_ok());
        }
        // Warm the plan cache against pre-transaction contents.
        assert_engines_agree(&mem, &durable);
        durable.begin().unwrap();
        for sql in &txn_stmts {
            let _ = durable.execute(sql);
        }
        durable.rollback().unwrap();
        // In-process state, cached plans included, matches the engine
        // that never ran the transaction...
        assert_engines_agree(&mem, &durable);
        // ...and so does a recovery from disk.
        drop(durable);
        let recovered = DurableDatabase::open(&vfs).unwrap();
        assert_engines_agree(&mem, &recovered);
    }
}
