//! Property tests for the SQL engine: the parser/executor must never
//! panic on arbitrary input (administrators type raw `--query` strings,
//! paper §6.4), and basic relational invariants must hold.

use proptest::prelude::*;
use rocks_sql::{Database, Value};

fn seeded_db(rows: &[(i64, String, i64)]) -> Database {
    let mut db = Database::new();
    db.execute("create table nodes (id int, name text, rack int)").unwrap();
    for (id, name, rack) in rows {
        db.execute(&format!(
            "insert into nodes values ({id}, '{}', {rack})",
            name.replace('\'', "''")
        ))
        .unwrap();
    }
    db
}

proptest! {
    #[test]
    fn parser_never_panics(sql in ".{0,120}") {
        let mut db = Database::new();
        let _ = db.execute(&sql);
    }

    #[test]
    fn sqlish_input_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("select".to_string()), Just("from".to_string()),
                Just("where".to_string()), Just("and".to_string()),
                Just("or".to_string()), Just("not".to_string()),
                Just("insert".to_string()), Just("into".to_string()),
                Just("values".to_string()), Just("like".to_string()),
                Just("order by".to_string()), Just("*".to_string()),
                Just(",".to_string()), Just("(".to_string()), Just(")".to_string()),
                Just("=".to_string()), Just("<".to_string()), Just("'x'".to_string()),
                Just("nodes".to_string()), Just("name".to_string()),
                Just("1".to_string()),
            ],
            0..16,
        )
    ) {
        let mut db = seeded_db(&[(1, "a".into(), 0)]);
        let _ = db.execute(&parts.join(" "));
    }

    #[test]
    fn insert_then_count_matches(
        rows in proptest::collection::vec((0i64..1000, "[a-z]{1,8}", 0i64..8), 0..20)
    ) {
        let mut db = seeded_db(&rows);
        let count = db.query_column("select count(*) from nodes").unwrap();
        prop_assert_eq!(count, vec![rows.len().to_string()]);
    }

    #[test]
    fn where_partition_is_complete(
        rows in proptest::collection::vec((0i64..1000, "[a-z]{1,8}", 0i64..8), 0..20),
        pivot in 0i64..8,
    ) {
        let mut db = seeded_db(&rows);
        let lo = db.query(&format!("select id from nodes where rack < {pivot}")).unwrap();
        let hi = db.query(&format!("select id from nodes where rack >= {pivot}")).unwrap();
        prop_assert_eq!(lo.rows.len() + hi.rows.len(), rows.len());
    }

    #[test]
    fn order_by_sorts(
        rows in proptest::collection::vec((0i64..1000, "[a-z]{1,8}", 0i64..8), 0..20)
    ) {
        let mut db = seeded_db(&rows);
        let result = db.query("select id from nodes order by id").unwrap();
        let ids: Vec<i64> = result.rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        prop_assert_eq!(ids, sorted);
    }

    #[test]
    fn delete_plus_remaining_equals_total(
        rows in proptest::collection::vec((0i64..1000, "[a-z]{1,8}", 0i64..8), 0..20),
        pivot in 0i64..8,
    ) {
        let mut db = seeded_db(&rows);
        let before = rows.len();
        let deleted = match db.execute(&format!("delete from nodes where rack = {pivot}")).unwrap() {
            rocks_sql::ExecOutcome::Written { affected } => affected,
            _ => unreachable!(),
        };
        let after = db.table("nodes").unwrap().len();
        prop_assert_eq!(deleted + after, before);
    }

    #[test]
    fn join_count_is_product_of_matching(
        left in proptest::collection::vec(0i64..4, 0..10),
        right in proptest::collection::vec(0i64..4, 0..10),
    ) {
        let mut db = Database::new();
        db.execute("create table l (k int)").unwrap();
        db.execute("create table r (k int)").unwrap();
        for k in &left { db.execute(&format!("insert into l values ({k})")).unwrap(); }
        for k in &right { db.execute(&format!("insert into r values ({k})")).unwrap(); }
        let joined = db.query("select l.k from l, r where l.k = r.k").unwrap();
        let expected: usize = left
            .iter()
            .map(|lk| right.iter().filter(|rk| *rk == lk).count())
            .sum();
        prop_assert_eq!(joined.rows.len(), expected);
    }

    #[test]
    fn text_round_trips_through_storage(name in "[ -~]{0,24}") {
        let mut db = Database::new();
        db.execute("create table t (s text)").unwrap();
        let escaped = name.replace('\'', "''");
        db.execute(&format!("insert into t values ('{escaped}')")).unwrap();
        let rows = db.query("select s from t").unwrap();
        prop_assert_eq!(rows.rows[0][0].clone(), Value::Text(name));
    }
}
