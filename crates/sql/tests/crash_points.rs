//! Crash-point sweep acceptance test: kill the durable engine at every
//! mutating disk operation across a family of seeded workloads, recover
//! each survivor, and hold the recovery invariants (recovered state is a
//! committed prefix; replay is idempotent). The sweep must cover at
//! least a thousand distinct kill points and report zero violations.

use rocks_sql::crashtest;

#[test]
fn thousand_crash_points_zero_violations() {
    let report = crashtest::sweep(0xC1A5_5E5D, 10);

    assert!(
        report.crash_points >= 1000,
        "sweep must cover >= 1000 kill points, got {}",
        report.crash_points
    );
    assert!(
        report.violations.is_empty(),
        "recovery invariant violations:\n{}",
        report.violations.join("\n")
    );
    assert!(report.recovered_commits > 0, "sweep never recovered a committed transaction");
    // The fault model must actually be biting: the sweep should observe
    // real damage (torn frames / bad checksums / uncommitted tails), and
    // some survivors should recover through a checkpoint snapshot rather
    // than pure log replay.
    let anomalies = report.torn_writes + report.checksum_mismatches + report.partial_commits;
    assert!(anomalies > 0, "sweep observed no disk damage at all; fault injection is dead");
    assert!(
        report.recoveries_from_snapshot > 0,
        "no survivor recovered via a checkpoint snapshot; checkpoint path is untested"
    );
}
