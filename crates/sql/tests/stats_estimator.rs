//! Estimator edge cases and plan-cache staleness: the corners where
//! cost-based planning could silently go wrong — empty tables, all-NULL
//! and single-value columns, Int↔Text coercion keys, tables that grow
//! 100x under a cached plan, and a crash landing mid-checkpoint while
//! statistics were warm.

use rocks_sql::disk::{CrashPlan, DiskError, MemVfs};
use rocks_sql::durable::{DurableDatabase, DurableError};
use rocks_sql::{Database, JoinAlgo, PlannerConfig, PlannerMode, Value};

fn explain_text(db: &mut Database, sql: &str) -> Vec<String> {
    db.query(&format!("explain {sql}")).unwrap().rows.iter().map(|row| row[0].render()).collect()
}

#[test]
fn empty_table_plans_and_estimates_zero() {
    let mut db = Database::new();
    db.execute("create table t (x int, tag text)").unwrap();
    let stats = db.table("t").unwrap().stats();
    assert_eq!(stats.rows, 0);
    assert_eq!(stats.est_eq_rows(0, &Value::Int(5)), 0.0);
    assert_eq!(stats.ndv(0), 0.0);
    // Planning on an empty table still runs and agrees with the scan.
    let sql = "select x from t where x = 5";
    assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap());
    let text = explain_text(&mut db, sql);
    assert!(text.iter().any(|l| l.contains("est 0 rows")), "plan was {text:?}");
}

#[test]
fn all_null_column_estimates_and_matches_scan() {
    let mut db = Database::new();
    db.execute("create table t (id int, tag text)").unwrap();
    for i in 0..50 {
        db.execute(&format!("insert into t values ({i}, NULL)")).unwrap();
    }
    let stats = db.table("t").unwrap().stats();
    assert_eq!(stats.null_fraction(1), 1.0);
    assert_eq!(stats.non_null(1), 0.0);
    // Equality on an all-NULL column matches nothing; IS NULL everything.
    for sql in [
        "select id from t where tag = 'x'",
        "select id from t where tag is null",
        "select id from t where tag is not null",
        "select count(*) from t where tag = 'x' or id < 10",
    ] {
        assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap(), "for {sql}");
    }
}

#[test]
fn single_value_column_scans_while_selective_column_probes() {
    let mut db = Database::new();
    db.execute("create table t (uniq int, same text)").unwrap();
    for i in 0..512 {
        db.execute(&format!("insert into t values ({i}, 'hot')")).unwrap();
    }
    // Every row matches `same = 'hot'`: probing an index would fetch the
    // whole table through candidate verification — scan instead.
    let broad = explain_text(&mut db, "select uniq from t where same = 'hot'");
    assert!(broad.iter().any(|l| l.contains("t: scan")), "plan was {broad:?}");
    // `uniq` is distinct per row: a point probe touches ~1 candidate.
    let narrow = explain_text(&mut db, "select same from t where uniq = 37");
    assert!(narrow.iter().any(|l| l.contains("index(uniq = 37)")), "plan was {narrow:?}");
    // Both choices stay correct.
    for sql in ["select uniq from t where same = 'hot'", "select same from t where uniq = 37"] {
        assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap(), "for {sql}");
    }
}

#[test]
fn int_text_coercion_keys_stay_exact_under_all_join_algorithms() {
    // '5' = 5 = '05' under sql_cmp, but '5' ≠ '05' — the histogram's
    // normalized keys group them together, and execution must re-verify.
    let mut db = Database::new();
    db.execute("create table l (id int, tag text)").unwrap();
    db.execute("create table r (id int, tag text)").unwrap();
    let spellings = ["'5'", "'05'", "' 5'", "'x'", "NULL", "'6'", "'007'"];
    for (i, tag) in spellings.iter().enumerate() {
        db.execute(&format!("insert into l values ({i}, {tag})")).unwrap();
        db.execute(&format!("insert into r values ({}, {tag})", 10 + i)).unwrap();
    }
    db.execute("insert into l values (100, '7')").unwrap();
    let sql = "select l.id, r.id from l, r where l.tag = r.tag";
    let scanned = db.query_ref_scan(sql).unwrap();
    for (label, config) in [
        ("cost-based", PlannerConfig::default()),
        (
            "forced merge",
            PlannerConfig { mode: PlannerMode::CostBased, force_join: Some(JoinAlgo::SortMerge) },
        ),
        (
            "forced hash",
            PlannerConfig { mode: PlannerMode::CostBased, force_join: Some(JoinAlgo::Hash) },
        ),
        ("heuristic", PlannerConfig { mode: PlannerMode::Heuristic, force_join: None }),
    ] {
        assert_eq!(db.query_ref_config(sql, &config).unwrap(), scanned, "{label} diverged");
    }
}

#[test]
fn plan_cache_recosts_after_100x_growth_with_hysteresis() {
    let mut db = Database::new();
    db.execute("create table t (id int, tag text)").unwrap();
    for i in 0..8 {
        db.execute(&format!("insert into t values ({i}, 'hot')")).unwrap();
    }
    let sql = "select id from t where tag = 'hot'";
    // Small table, predicate matching every row: the cached plan scans.
    db.query_ref(sql).unwrap();
    assert_eq!(db.stats().scan_executions(), 1);
    assert_eq!(db.stats().plan_cache_misses(), 1);

    // 100x growth with distinct tags turns 'hot' into a needle. The
    // size-band epoch evicts the stale scan plan and re-costing flips it
    // to an index probe — without any schema change.
    for i in 8..808 {
        db.execute(&format!("insert into t values ({i}, 'cold-{i}')")).unwrap();
    }
    db.query_ref(sql).unwrap();
    assert_eq!(db.stats().plan_cache_misses(), 2, "growth must re-plan");
    assert_eq!(db.stats().indexed_executions(), 1, "re-costed plan probes the index");
    assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap());

    // Hysteresis: one more single-row INSERT stays inside the same size
    // band, so the freshly cached plan survives and the next query hits.
    let hits_before = db.stats().plan_cache_hits();
    db.execute("insert into t values (808, 'cold-808')").unwrap();
    db.query_ref(sql).unwrap();
    assert_eq!(db.stats().plan_cache_misses(), 2, "single-row insert must not evict");
    assert!(db.stats().plan_cache_hits() > hits_before);
}

/// Build the durable workload used by the mid-checkpoint crash test:
/// rows inserted, statistics warmed through the reader, then an explicit
/// checkpoint (which journals the stats-warm flag in the catalog).
fn run_stats_workload(db: &mut DurableDatabase) -> Result<(), DurableError> {
    db.execute("create table nodes (id int, tag text)")?;
    for i in 0..40 {
        db.execute(&format!("insert into nodes values ({i}, 'tag-{}')", i % 5))?;
    }
    // Planning through the reader builds (warms) nodes' statistics.
    let _ = db.reader().query_ref("select id from nodes where id = 7");
    db.checkpoint()?;
    // Post-checkpoint writes land in the WAL on top of the snapshot.
    for i in 40..48 {
        db.execute(&format!("insert into nodes values ({i}, 'late')"))?;
    }
    Ok(())
}

#[test]
fn stats_recover_after_crash_mid_checkpoint() {
    // Golden run: find the op range the checkpoint occupies.
    let vfs = MemVfs::new();
    let mut db = DurableDatabase::open(&vfs).unwrap();
    db.execute("create table nodes (id int, tag text)").unwrap();
    for i in 0..40 {
        db.execute(&format!("insert into nodes values ({i}, 'tag-{}')", i % 5)).unwrap();
    }
    let _ = db.reader().query_ref("select id from nodes where id = 7");
    let before_checkpoint = vfs.ops();
    db.checkpoint().unwrap();
    let after_checkpoint = vfs.ops();
    assert!(after_checkpoint > before_checkpoint, "checkpoint must write");
    drop(db);

    // Crash at every op inside (and just after) the checkpoint window.
    for at_op in before_checkpoint + 1..=after_checkpoint + 2 {
        let vfs = MemVfs::new();
        vfs.arm(CrashPlan { at_op, seed: at_op });
        let crashed = match DurableDatabase::open(&vfs) {
            Ok(mut db) => match run_stats_workload(&mut db) {
                Ok(()) => false,
                Err(DurableError::Disk(DiskError::Crashed)) => true,
                Err(e) => panic!("unexpected workload error at op {at_op}: {e}"),
            },
            Err(DurableError::Disk(DiskError::Crashed)) => true,
            Err(e) => panic!("unexpected open error at op {at_op}: {e}"),
        };
        assert!(crashed, "crash plan at op {at_op} never fired");

        let survivor = vfs.survivor();
        let db = DurableDatabase::open(&survivor).unwrap();
        // Whatever prefix survived, planning with recovered (or absent)
        // statistics must agree with the scan path exactly.
        if db.reader().table("nodes").is_some() {
            for sql in [
                "select id from nodes where id = 7",
                "select count(*) from nodes where tag = 'tag-3'",
                "select id from nodes where tag = 'late' and id > 41",
            ] {
                assert_eq!(
                    db.reader().query_ref(sql).unwrap(),
                    db.reader().query_ref_scan(sql).unwrap(),
                    "planned ≡ scan broke after crash at op {at_op} for {sql}"
                );
            }
        }
        // And recovery itself is deterministic: a second open of the
        // same survivor lands on the identical state.
        let fp = db.state_fingerprint();
        drop(db);
        assert_eq!(DurableDatabase::open(&survivor).unwrap().state_fingerprint(), fp);
    }
}
