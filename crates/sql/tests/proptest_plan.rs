//! Differential property tests for the query planner: every query the
//! planner accepts must return results **byte-identical** to the naive
//! scan path — same rows, same values, same order — and identical errors
//! when it cannot run. `Database::query_ref` (planned, cached) is diffed
//! against `Database::query_ref_scan` (forced full scan) over random
//! tables, random queries, and random interleaved mutations.
//!
//! Value domains are deliberately tiny and collision-heavy, and the text
//! column mixes integer-shaped spellings (`'5'`, `'05'`, `' 5'`) with
//! plain text and NULLs, to stress the Int↔Text coercion corners of
//! `Value::sql_cmp` that make index probes supersets.

use proptest::prelude::*;
use rocks_sql::{Database, JoinAlgo, PlannerConfig, PlannerMode};

/// Rows: (id, name-ish tag, membership, rack, tricky text tag).
type NodeRow = (i64, String, i64, i64, &'static str);

fn tag_strategy() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("'5'"),
        Just("'05'"),
        Just("' 5'"),
        Just("'x'"),
        Just("'compute'"),
        Just("NULL"),
        Just("'6'"),
    ]
}

fn node_rows() -> impl Strategy<Value = Vec<NodeRow>> {
    proptest::collection::vec((0i64..12, "[a-z]{1,6}", 0i64..5, 0i64..3, tag_strategy()), 0..24)
}

fn membership_rows() -> impl Strategy<Value = Vec<(i64, String)>> {
    proptest::collection::vec((0i64..5, "[a-z]{1,6}"), 0..6)
}

/// Third table keyed by the same tricky text domain as `nodes.tag`, so
/// text equi-joins hit the Int↔Text coercion corners on *both* sides.
fn app_rows() -> impl Strategy<Value = Vec<(i64, &'static str)>> {
    proptest::collection::vec((0i64..8, tag_strategy()), 0..10)
}

fn build_db(
    nodes: &[NodeRow],
    memberships: &[(i64, String)],
    apps: &[(i64, &'static str)],
) -> Database {
    let mut db = Database::new();
    db.execute("create table nodes (id int, name text, membership int, rack int, tag text)")
        .unwrap();
    db.execute("create table memberships (id int, name text)").unwrap();
    db.execute("create table apps (aid int, tag text)").unwrap();
    for (id, name, membership, rack, tag) in nodes {
        db.execute(&format!(
            "insert into nodes values ({id}, '{}', {membership}, {rack}, {tag})",
            name.replace('\'', "''")
        ))
        .unwrap();
    }
    for (id, name) in memberships {
        db.execute(&format!(
            "insert into memberships values ({id}, '{}')",
            name.replace('\'', "''")
        ))
        .unwrap();
    }
    for (aid, tag) in apps {
        db.execute(&format!("insert into apps values ({aid}, {tag})")).unwrap();
    }
    db
}

/// A pool of query shapes covering: index point lookups (int and text
/// literals, hit and miss), residual conjuncts, OR filters, hash joins
/// with pushdown and extra equi keys, coercion pitfalls on `tag`,
/// LIKE/IN/IS NULL residuals, ORDER BY + LIMIT (top-k), aggregates, and
/// fallback cases (ambiguous columns resolve to errors on both paths).
fn query_strategy() -> impl Strategy<Value = String> {
    let lit = 0i64..12;
    prop_oneof![
        lit.clone().prop_map(|n| format!("select * from nodes where id = {n}")),
        lit.clone().prop_map(|n| format!("select name from nodes where id = {n} and rack > 0")),
        lit.clone()
            .prop_map(|n| format!("select name from nodes where id = {n} or membership = 2")),
        Just("select id from nodes where tag = '5'".to_string()),
        Just("select id from nodes where tag = '05'".to_string()),
        Just("select id from nodes where tag = ' 5'".to_string()),
        Just("select id from nodes where tag = 5".to_string()),
        Just("select id from nodes where id = '05'".to_string()),
        Just("select id from nodes where tag = 'x' and rack = 1".to_string()),
        Just("select id from nodes where tag is null".to_string()),
        Just("select id from nodes where tag in ('5', 'x') and id < 9".to_string()),
        Just("select id from nodes where name like 'a%' and membership = 1".to_string()),
        Just(
            "select nodes.name from nodes, memberships where \
             nodes.membership = memberships.id"
                .to_string()
        ),
        Just(
            "select nodes.name, memberships.name from nodes, memberships where \
             nodes.membership = memberships.id and memberships.name like 'b%'"
                .to_string()
        ),
        lit.clone().prop_map(|n| {
            format!(
                "select * from nodes, memberships where \
                 nodes.membership = memberships.id and nodes.id = {n}"
            )
        }),
        Just(
            "select nodes.id from nodes, memberships where \
             memberships.id = nodes.membership and nodes.id = memberships.id"
                .to_string()
        ),
        Just(
            "select nodes.id from nodes, memberships where \
             nodes.membership = memberships.id and nodes.rack < memberships.id"
                .to_string()
        ),
        // Cross join with only single-table filters (no equi key).
        Just(
            "select nodes.id, memberships.id from nodes, memberships where \
             nodes.rack = 1 and memberships.id > 1"
                .to_string()
        ),
        // Text equi-joins: histogram keys and merge-join runs group
        // '5'/'05'/' 5'/5 together and must re-verify with sql_cmp.
        Just("select nodes.id, apps.aid from nodes, apps where nodes.tag = apps.tag".to_string()),
        Just(
            "select nodes.id from nodes, apps where \
             apps.tag = nodes.tag and apps.aid < 4 and nodes.rack = 1"
                .to_string()
        ),
        // Three-table joins: join-order enumeration (DP) with range
        // predicates that stay residual on the reordered pipeline.
        Just(
            "select nodes.name from nodes, memberships, apps where \
             nodes.membership = memberships.id and nodes.tag = apps.tag"
                .to_string()
        ),
        (0i64..8).prop_map(|n| {
            format!(
                "select nodes.id, apps.aid from nodes, memberships, apps where \
                 nodes.membership = memberships.id and nodes.tag = apps.tag \
                 and apps.aid = {n} and nodes.rack < 2"
            )
        }),
        Just(
            "select count(*) from nodes, memberships, apps where \
             nodes.membership = memberships.id and nodes.tag = apps.tag \
             and memberships.id < apps.aid"
                .to_string()
        ),
        // Range predicates over the planned row set.
        (0i64..12, 0i64..12).prop_map(|(lo, hi)| {
            format!("select id from nodes where id > {lo} and id < {hi} and rack >= 1")
        }),
        // Constant predicates.
        Just("select id from nodes where 1 = 1 and rack = 0".to_string()),
        Just("select id from nodes where 1 = 2".to_string()),
        // ORDER BY + LIMIT exercises the top-k path on both sides.
        (lit.clone(), 0usize..6).prop_map(|(n, k)| {
            format!("select id, name from nodes where membership = {n} order by id limit {k}")
        }),
        (0usize..6).prop_map(|k| {
            format!("select id, name, rack from nodes order by rack desc, id limit {k}")
        }),
        // Aggregates and grouping downstream of the planned row set.
        lit.clone().prop_map(|n| format!("select count(*) from nodes where membership = {n}")),
        Just("select rack, count(*) from nodes where membership = 2 group by rack".to_string()),
        // Error cases: both paths must fail identically.
        Just("select id from nodes, memberships where name = 'x'".to_string()),
        Just("select id from nodes where ghost = 1".to_string()),
    ]
}

/// A random mutation to run between differential checks, exercising
/// incremental index maintenance (INSERT) and invalidation (UPDATE,
/// DELETE).
fn mutation_strategy() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..12, 0i64..5, 0i64..3).prop_map(|(id, m, r)| {
            format!("insert into nodes values ({id}, 'new', {m}, {r}, '5')")
        }),
        (0i64..5, 0i64..5).prop_map(|(from, to)| format!(
            "update nodes set membership = {to} where \
                                            membership = {from}"
        )),
        (0i64..12).prop_map(|id| format!("delete from nodes where id = {id}")),
        (0i64..8, tag_strategy())
            .prop_map(|(aid, tag)| format!("insert into apps values ({aid}, {tag})")),
        (0i64..8).prop_map(|aid| format!("delete from apps where aid = {aid}")),
    ]
}

/// Every planner configuration the engine exposes: the default
/// cost-based planner, the PR2-era heuristic baseline, and both join
/// algorithms forced — all must agree with the scan, byte for byte.
const CONFIGS: [(&str, PlannerConfig); 3] = [
    ("heuristic", PlannerConfig { mode: PlannerMode::Heuristic, force_join: None }),
    (
        "force-hash",
        PlannerConfig { mode: PlannerMode::CostBased, force_join: Some(JoinAlgo::Hash) },
    ),
    (
        "force-merge",
        PlannerConfig { mode: PlannerMode::CostBased, force_join: Some(JoinAlgo::SortMerge) },
    ),
];

/// Assert planned and scan execution agree exactly — result or error —
/// for the cached cost-based path and every explicit configuration.
fn assert_differential(db: &Database, sql: &str) {
    let scanned = db.query_ref_scan(sql);
    match (db.query_ref(sql), &scanned) {
        (Ok(planned), Ok(scanned)) => {
            assert_eq!(&planned, scanned, "planned rows diverged for {sql}");
        }
        (Err(planned), Err(scanned)) => {
            assert_eq!(&planned, scanned, "planned error diverged for {sql}");
        }
        (planned, scanned) => {
            panic!("one path failed for {sql}: planned={planned:?} scanned={scanned:?}");
        }
    }
    for (label, config) in &CONFIGS {
        match (db.query_ref_config(sql, config), &scanned) {
            (Ok(planned), Ok(scanned)) => {
                assert_eq!(&planned, scanned, "{label} rows diverged for {sql}");
            }
            (Err(planned), Err(scanned)) => {
                assert_eq!(&planned, scanned, "{label} error diverged for {sql}");
            }
            (planned, scanned) => {
                panic!("{label}: one path failed for {sql}: {planned:?} vs {scanned:?}");
            }
        }
    }
}

proptest! {
    #[test]
    fn planned_equals_scan(
        nodes in node_rows(),
        memberships in membership_rows(),
        apps in app_rows(),
        queries in proptest::collection::vec(query_strategy(), 1..8),
    ) {
        let db = build_db(&nodes, &memberships, &apps);
        for sql in &queries {
            assert_differential(&db, sql);
        }
    }

    #[test]
    fn planned_equals_scan_across_mutations(
        nodes in node_rows(),
        memberships in membership_rows(),
        apps in app_rows(),
        queries in proptest::collection::vec(query_strategy(), 1..4),
        mutations in proptest::collection::vec(mutation_strategy(), 1..4),
    ) {
        let mut db = build_db(&nodes, &memberships, &apps);
        // Warm the indexes and plan cache, then interleave writes with
        // re-checks: stale index or plan state would diverge here.
        for sql in &queries {
            assert_differential(&db, sql);
        }
        for mutation in &mutations {
            db.execute(mutation).unwrap();
            for sql in &queries {
                assert_differential(&db, sql);
            }
        }
    }

    #[test]
    fn lookup_eq_equals_sql_select(
        nodes in node_rows(),
        memberships in membership_rows(),
        probe in 0i64..12,
    ) {
        let db = build_db(&nodes, &memberships, &[]);
        let direct = db.lookup_eq("nodes", "id", &rocks_sql::Value::Int(probe)).unwrap();
        let sql = db.query_ref_scan(&format!("select * from nodes where id = {probe}")).unwrap();
        prop_assert_eq!(direct, sql);
        let direct = db
            .lookup_eq("nodes", "tag", &rocks_sql::Value::Text("5".into()))
            .unwrap();
        let sql = db.query_ref_scan("select * from nodes where tag = '5'").unwrap();
        prop_assert_eq!(direct, sql);
    }
}
