//! Crash recovery: typed anomaly classification, snapshot loading, and
//! WAL replay.
//!
//! Recovery is a pure function of the bytes on disk: open the data
//! file, pick the live snapshot (highest valid header generation),
//! rebuild the in-memory tables from its B-trees, then re-execute every
//! WAL transaction with `seq > checkpoint_seq`. Damage in the WAL tail
//! is *expected* (that is what a crash leaves behind) and is reported as
//! typed anomalies rather than errors; damage to the snapshot region or
//! replay divergence is a hard error, because it means the committed
//! prefix itself cannot be reconstructed.

use crate::btree::DiskBTree;
use crate::codec::{self, Reader};
use crate::pager::{Pager, SnapshotMeta};
use crate::table::{ColumnType, Table};
use crate::wal::WalScan;
use crate::Database;

/// What recovery found wrong with the bytes it read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoveryError {
    /// A frame or page was only partially written (truncated tail, bad
    /// magic, length running past end of file).
    TornWrite(String),
    /// Bytes are structurally present but fail their CRC (bit flips,
    /// torn writes that happened to preserve lengths).
    ChecksumMismatch(String),
    /// A transaction reached the log but never committed; its statements
    /// are discarded.
    PartialCommit(String),
    /// An internal inconsistency that valid checksums cannot explain
    /// (malformed catalog, replay divergence) — an engine bug or
    /// deliberate tampering, never an expected crash outcome.
    Corrupt(String),
}

impl std::fmt::Display for RecoveryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryError::TornWrite(m) => write!(f, "torn write: {m}"),
            RecoveryError::ChecksumMismatch(m) => write!(f, "checksum mismatch: {m}"),
            RecoveryError::PartialCommit(m) => write!(f, "partial commit: {m}"),
            RecoveryError::Corrupt(m) => write!(f, "corrupt: {m}"),
        }
    }
}

impl std::error::Error for RecoveryError {}

/// What recovery did, kept by the opened engine for inspection (and
/// asserted on heavily by the crash-point sweep).
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Tail anomalies, in the order encountered. Non-empty after most
    /// crashes; empty after a clean shutdown.
    pub anomalies: Vec<RecoveryError>,
    /// Committed transactions re-executed from the WAL.
    pub commits_replayed: u64,
    /// Commits skipped because the snapshot already contained them
    /// (duplicate commit records, checkpoint/truncate races).
    pub commits_skipped: u64,
    /// `checkpoint_seq` of the snapshot recovery started from (0 when
    /// starting fresh).
    pub checkpoint_seq: u64,
    /// Bytes of damaged/uncommitted WAL tail discarded by the repair
    /// truncation.
    pub wal_tail_discarded: u64,
    /// Secondary-index entries verified against the recovered rows.
    pub index_entries_verified: u64,
}

impl RecoveryReport {
    /// Count anomalies of each kind: `(torn, checksum, partial)`.
    pub fn anomaly_counts(&self) -> (u64, u64, u64) {
        let mut c = (0, 0, 0);
        for a in &self.anomalies {
            match a {
                RecoveryError::TornWrite(_) => c.0 += 1,
                RecoveryError::ChecksumMismatch(_) => c.1 += 1,
                RecoveryError::PartialCommit(_) | RecoveryError::Corrupt(_) => c.2 += 1,
            }
        }
        c
    }
}

/// The catalog: one entry per table, written at checkpoint time.
pub(crate) struct CatalogTable {
    pub name: String,
    pub columns: Vec<(String, ColumnType)>,
    pub rows: u64,
    pub root: u32,
    /// `(column index, secondary-tree root)`.
    pub indexes: Vec<(u32, u32)>,
    /// Whether the table had warm planner statistics at checkpoint time.
    /// Stats are derived state — cheap to rebuild from the recovered
    /// rows — so only this flag is persisted, and recovery re-warms
    /// flagged tables so the first post-restart planning pass costs the
    /// same as it did before the crash.
    pub stats_warm: bool,
}

pub(crate) fn encode_catalog(tables: &[CatalogTable]) -> Vec<u8> {
    let mut out = Vec::new();
    codec::put_u32(&mut out, tables.len() as u32);
    for t in tables {
        codec::put_str(&mut out, &t.name);
        codec::put_u32(&mut out, t.columns.len() as u32);
        for (name, ty) in &t.columns {
            codec::put_str(&mut out, name);
            codec::put_u8(
                &mut out,
                match ty {
                    ColumnType::Int => 0,
                    ColumnType::Text => 1,
                },
            );
        }
        codec::put_u64(&mut out, t.rows);
        codec::put_u32(&mut out, t.root);
        codec::put_u32(&mut out, t.indexes.len() as u32);
        for (col, root) in &t.indexes {
            codec::put_u32(&mut out, *col);
            codec::put_u32(&mut out, *root);
        }
        codec::put_u8(&mut out, u8::from(t.stats_warm));
    }
    out
}

fn decode_catalog(bytes: &[u8]) -> Result<Vec<CatalogTable>, RecoveryError> {
    let bad = |m: String| RecoveryError::Corrupt(format!("catalog: {m}"));
    let mut r = Reader::new(bytes);
    let mut tables = Vec::new();
    let n = r.u32().map_err(|e| bad(e.0))?;
    for _ in 0..n {
        let name = r.str().map_err(|e| bad(e.0))?;
        let ncols = r.u32().map_err(|e| bad(e.0))?;
        let mut columns = Vec::with_capacity(ncols as usize);
        for _ in 0..ncols {
            let cname = r.str().map_err(|e| bad(e.0))?;
            let ty = match r.u8().map_err(|e| bad(e.0))? {
                0 => ColumnType::Int,
                1 => ColumnType::Text,
                t => return Err(bad(format!("unknown column type {t}"))),
            };
            columns.push((cname, ty));
        }
        let rows = r.u64().map_err(|e| bad(e.0))?;
        let root = r.u32().map_err(|e| bad(e.0))?;
        let nix = r.u32().map_err(|e| bad(e.0))?;
        let mut indexes = Vec::with_capacity(nix as usize);
        for _ in 0..nix {
            let col = r.u32().map_err(|e| bad(e.0))?;
            let iroot = r.u32().map_err(|e| bad(e.0))?;
            indexes.push((col, iroot));
        }
        let stats_warm = match r.u8().map_err(|e| bad(e.0))? {
            0 => false,
            1 => true,
            v => return Err(bad(format!("bad stats-warm flag {v}"))),
        };
        tables.push(CatalogTable { name, columns, rows, root, indexes, stats_warm });
    }
    Ok(tables)
}

/// Rebuild the in-memory database from the live snapshot. Returns the
/// database (schema generation realigned with the snapshot's record) and
/// the count of secondary-index entries verified.
pub(crate) fn load_snapshot(
    pager: &Pager,
    meta: &SnapshotMeta,
) -> Result<(Database, u64), RecoveryError> {
    let catalog = decode_catalog(&pager.read_catalog(meta)?)?;
    let mut db = Database::new();
    let mut verified = 0u64;
    for entry in &catalog {
        let mut table = Table::new(entry.name.clone(), entry.columns.clone());
        let tree = DiskBTree::new(pager, meta, entry.root);
        let mut expect_rowid = 0u64;
        tree.for_each(&mut |key, value| {
            let rowid = u64::from_be_bytes(key.try_into().map_err(|_| {
                RecoveryError::Corrupt(format!("table {}: non-u64 rowid key", entry.name))
            })?);
            if rowid != expect_rowid {
                return Err(RecoveryError::Corrupt(format!(
                    "table {}: rowid gap (expected {expect_rowid}, found {rowid})",
                    entry.name
                )));
            }
            expect_rowid += 1;
            let row = Reader::new(value).row().map_err(|e| {
                RecoveryError::Corrupt(format!("table {} row {rowid}: {}", entry.name, e.0))
            })?;
            // Rows were coerced before the checkpoint; re-inserting them
            // through the public path re-validates for free.
            if let Err(e) = table.insert_row(row) {
                return Err(RecoveryError::Corrupt(format!(
                    "table {} row {rowid} rejected on reload: {e}",
                    entry.name
                )));
            }
            Ok(())
        })?;
        if expect_rowid != entry.rows {
            return Err(RecoveryError::Corrupt(format!(
                "table {}: catalog claims {} rows, tree held {expect_rowid}",
                entry.name, entry.rows
            )));
        }
        // Verify every secondary-index entry against the recovered rows,
        // then warm the in-memory hash index for the same column — a
        // recovered frontend answers its first kickstart burst at full
        // speed.
        for &(col, iroot) in &entry.indexes {
            let col = col as usize;
            if col >= table.columns().len() {
                return Err(RecoveryError::Corrupt(format!(
                    "table {}: index on out-of-range column {col}",
                    entry.name
                )));
            }
            let itree = DiskBTree::new(pager, meta, iroot);
            let mut entries = 0u64;
            itree.for_each(&mut |key, _| {
                entries += 1;
                if key.len() < 8 {
                    return Err(RecoveryError::Corrupt(format!(
                        "table {} index {col}: key shorter than a rowid",
                        entry.name
                    )));
                }
                let (val_part, rowid_part) = key.split_at(key.len() - 8);
                let rowid = u64::from_be_bytes(rowid_part.try_into().expect("8 bytes")) as usize;
                let row = table.rows().get(rowid).ok_or_else(|| {
                    RecoveryError::Corrupt(format!(
                        "table {} index {col}: rowid {rowid} out of range",
                        entry.name
                    ))
                })?;
                let mut expect = Vec::new();
                codec::put_index_key(&mut expect, &row[col]);
                if expect != val_part {
                    return Err(RecoveryError::Corrupt(format!(
                        "table {} index {col}: entry for row {rowid} does not match the row",
                        entry.name
                    )));
                }
                Ok(())
            })?;
            if entries != table.len() as u64 {
                return Err(RecoveryError::Corrupt(format!(
                    "table {} index {col}: {entries} entries for {} rows",
                    entry.name,
                    table.len()
                )));
            }
            verified += entries;
            let _ = table.eq_index(col);
        }
        // Re-warm planner statistics for tables that had them: they are
        // a pure function of the recovered rows, so rebuilding here is
        // always consistent, whatever instant the crash hit.
        if entry.stats_warm {
            let _ = table.stats();
        }
        db.add_table(table).map_err(|e| {
            RecoveryError::Corrupt(format!("duplicate table {} in catalog: {e}", entry.name))
        })?;
    }
    db.set_schema_generation(meta.schema_gen);
    Ok((db, verified))
}

/// Re-execute committed WAL transactions on top of `db`. Transactions at
/// or below `checkpoint_seq` — and duplicates — are skipped. Returns the
/// last applied `(seq, revision)` and updates `report`.
pub(crate) fn replay(
    db: &mut Database,
    scan: &WalScan,
    checkpoint_seq: u64,
    report: &mut RecoveryReport,
) -> Result<(u64, u64), RecoveryError> {
    let mut seq = checkpoint_seq;
    let mut revision = 0u64;
    for txn in &scan.txns {
        if txn.seq <= seq {
            report.commits_skipped += 1;
            continue;
        }
        if txn.seq != seq + 1 {
            return Err(RecoveryError::Corrupt(format!(
                "commit sequence jumped from {seq} to {}",
                txn.seq
            )));
        }
        for sql in &txn.stmts {
            db.execute(sql).map_err(|e| {
                RecoveryError::Corrupt(format!(
                    "replay of committed statement failed ({sql:?}): {e}"
                ))
            })?;
        }
        // Cross-check: the journaled schema generation must match what
        // replay produced, or the log does not describe this database.
        if db.schema_generation() != txn.schema_gen {
            return Err(RecoveryError::Corrupt(format!(
                "schema generation diverged on replay of commit {}: journal says {}, replay produced {}",
                txn.seq,
                txn.schema_gen,
                db.schema_generation()
            )));
        }
        seq = txn.seq;
        revision = txn.revision;
        report.commits_replayed += 1;
    }
    Ok((seq, revision))
}
