#![warn(missing_docs)]

//! An embedded mini-SQL engine: the reproduction's stand-in for MySQL.
//!
//! Rocks keeps all "global knowledge" of the cluster in a MySQL database
//! (paper §6.4) and deliberately exposes *raw SQL* to administrators:
//! management scripts accept `--query="select nodes.name from
//! nodes,memberships where ..."`, including multi-table joins. Faithfully
//! reproducing that interface requires an actual SQL engine, not a typed
//! key-value store — so this crate implements one, sized to the subset the
//! paper exercises:
//!
//! * `CREATE TABLE t (col INT, col TEXT, ...)`
//! * `INSERT INTO t [(cols)] VALUES (...), (...)`
//! * `SELECT cols FROM t1, t2, ... [WHERE expr] [GROUP BY cols]
//!   [ORDER BY col [DESC]] [LIMIT n]` with qualified names
//!   (`nodes.name`), comparison operators, `AND`/`OR`, `NOT`,
//!   parentheses, `LIKE` patterns, `IS [NOT] NULL`, and the aggregates
//!   `COUNT(*)`, `MIN(col)`, `MAX(col)`, `SUM(col)` — grouped or global
//! * `UPDATE t SET col = expr [WHERE expr]`
//! * `DELETE FROM t [WHERE expr]`
//!
//! # Example — the paper's own query (§6.4)
//!
//! ```
//! use rocks_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute("create table nodes (name text, membership int)").unwrap();
//! db.execute("create table memberships (id int, name text)").unwrap();
//! db.execute("insert into nodes values ('compute-0-0', 2)").unwrap();
//! db.execute("insert into memberships values (2, 'Compute')").unwrap();
//!
//! let rows = db.query(
//!     "select nodes.name from nodes,memberships where \
//!      nodes.membership = memberships.id and memberships.name = 'Compute'",
//! ).unwrap();
//! assert_eq!(rows.rows[0][0].as_text(), Some("compute-0-0"));
//! ```

pub mod ast;
pub mod btree;
pub(crate) mod codec;
pub mod cost;
pub mod crashtest;
pub mod disk;
pub mod durable;
pub mod exec;
pub mod index;
pub mod lexer;
pub mod pager;
pub mod parser;
pub mod plan;
pub mod recovery;
pub mod stats;
pub mod table;
pub mod value;
pub mod wal;

pub use ast::Statement;
pub use disk::{CrashPlan, DiskError, DiskFile, FileVfs, MemVfs, Vfs};
pub use durable::{DurableDatabase, DurableError};
pub use exec::{ExecOutcome, QueryResult};
pub use index::HashIndex;
pub use plan::{JoinAlgo, PlannerConfig, PlannerMode, SelectPlan};
pub use recovery::{RecoveryError, RecoveryReport};
pub use stats::TableStats;
pub use table::{Column, ColumnType, Table};
pub use value::Value;

use rocks_trace::{Counter, Histogram, Registry};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Errors from any stage of statement processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenizer-level problem (unterminated string, stray character).
    Lex(String),
    /// Grammar-level problem.
    Parse(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column, with the name as written.
    NoSuchColumn(String),
    /// Ambiguous unqualified column in a join.
    AmbiguousColumn(String),
    /// Table already exists.
    TableExists(String),
    /// Wrong arity or type in an INSERT/UPDATE.
    TypeMismatch(String),
    /// Anything else (e.g. aggregate misuse).
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

/// A parsed-and-planned statement held by the cache behind
/// [`Database::query_ref`]: parse once, plan once, execute many.
#[derive(Debug)]
struct Prepared {
    stmt: Statement,
    /// The plan for a SELECT with a WHERE clause; `None` records that
    /// planning declined (the executor then uses the scan path), which
    /// stays correct until the schema changes — and schema changes flush
    /// the whole cache via the generation check.
    plan: Option<SelectPlan>,
}

/// Statements cached beyond this point flush the whole cache; mass
/// generation uses a handful of distinct statements, so in practice the
/// cap only guards against unbounded `format!`-built SQL.
const PLAN_CACHE_CAP: usize = 512;

/// Interior-mutable statement cache. Lives behind a `Mutex` so the
/// read-only [`Database::query_ref`] path can fill it concurrently; the
/// lock is held only for lookup/insert, never during parse or execution.
#[derive(Debug, Default)]
struct PlanCache {
    /// Schema generation the entries were prepared under.
    schema_gen: u64,
    /// Stats epoch the entries were costed under — a hash over every
    /// table's size *band* (power-of-two bucket of its row count), not
    /// its exact row count. The band gives the cache hysteresis: a
    /// single-row INSERT almost never crosses a band boundary, so steady
    /// trickle writes keep their cached plans, while a table growing
    /// 100x crosses several bands and forces a re-cost.
    stats_epoch: u64,
    entries: HashMap<String, Arc<Prepared>>,
}

/// Planner/executor telemetry, backed by [`rocks_trace`] counter handles
/// so the same numbers surface in a cluster-wide metrics registry (see
/// DESIGN.md "Observability"). Every counter has exactly one source of
/// truth: the registry handle this struct holds a clone of.
#[derive(Debug, Clone)]
pub struct QueryStats {
    registry: Registry,
    plan_cache_hits: Counter,
    plan_cache_misses: Counter,
    indexed_exec: Counter,
    scan_exec: Counter,
    lookups: Counter,
    rows_examined: Counter,
    rows_returned: Counter,
    plans_costed: Counter,
    stats_builds: Counter,
    join_reorders: Counter,
    /// Estimated/actual joined-row ratio per costed execution, in
    /// percent: 100 = exact, <100 = underestimate, >100 = overestimate.
    est_actual_pct: Histogram,
}

/// Bucket bounds for the estimated-vs-actual ratio histogram (percent).
/// 100 is exact; the 80–125 band is "good enough to pick the same plan".
const EST_ACTUAL_BOUNDS: &[u64] = &[25, 50, 80, 95, 105, 125, 200, 400, 1600];

impl QueryStats {
    fn bound_to(registry: Registry) -> Self {
        QueryStats {
            plan_cache_hits: registry.counter("sql.plan.cache_hits"),
            plan_cache_misses: registry.counter("sql.plan.cache_misses"),
            indexed_exec: registry.counter("sql.plan.indexed"),
            scan_exec: registry.counter("sql.plan.scan"),
            lookups: registry.counter("sql.lookup_eq"),
            rows_examined: registry.counter("sql.rows.examined"),
            rows_returned: registry.counter("sql.rows.returned"),
            plans_costed: registry.counter("sql.opt.plans_costed"),
            stats_builds: registry.counter("sql.opt.stats_builds"),
            join_reorders: registry.counter("sql.opt.join_reorders"),
            est_actual_pct: registry.histogram("sql.opt.est_actual_pct", EST_ACTUAL_BOUNDS),
            registry,
        }
    }

    /// The registry the counters live in (for merging into a
    /// cluster-wide view).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Cached-plan lookups that hit (`Database::query_ref`).
    pub fn plan_cache_hits(&self) -> u64 {
        self.plan_cache_hits.get()
    }

    /// Cached-plan lookups that missed and had to parse + plan.
    pub fn plan_cache_misses(&self) -> u64 {
        self.plan_cache_misses.get()
    }

    /// SELECT executions that ran an index-using pipeline (a point
    /// lookup or hash join somewhere in the plan).
    pub fn indexed_executions(&self) -> u64 {
        self.indexed_exec.get()
    }

    /// SELECT executions that scanned (no plan, planning declined, or a
    /// plan with no index access).
    pub fn scan_executions(&self) -> u64 {
        self.scan_exec.get()
    }

    /// Calls to the SQL-free [`Database::lookup_eq`] fast path.
    pub fn lookups(&self) -> u64 {
        self.lookups.get()
    }

    /// Rows enumerated/probed while producing results.
    pub fn rows_examined(&self) -> u64 {
        self.rows_examined.get()
    }

    /// Rows returned to callers.
    pub fn rows_returned(&self) -> u64 {
        self.rows_returned.get()
    }

    /// SELECT plans priced by the cost-based planner.
    pub fn plans_costed(&self) -> u64 {
        self.plans_costed.get()
    }

    /// Table-statistics builds/rebuilds triggered by planning.
    pub fn stats_builds(&self) -> u64 {
        self.stats_builds.get()
    }

    /// Costed plans whose join order differs from the FROM order.
    pub fn join_reorders(&self) -> u64 {
        self.join_reorders.get()
    }

    /// The estimated-vs-actual joined-row ratio histogram (percent; 100
    /// means the estimate was exact).
    pub fn estimate_ratio(&self) -> &Histogram {
        &self.est_actual_pct
    }

    pub(crate) fn record_select(&self, examined: u64, returned: u64, used_index: bool) {
        self.rows_examined.add(examined);
        self.rows_returned.add(returned);
        if used_index {
            self.indexed_exec.incr();
        } else {
            self.scan_exec.incr();
        }
    }

    pub(crate) fn record_planning(&self, info: &plan::PlanInfo, reordered: bool) {
        if info.costed {
            self.plans_costed.incr();
        }
        self.stats_builds.add(info.stats_builds);
        if reordered {
            self.join_reorders.incr();
        }
    }

    /// Record one costed execution's estimate quality. `+1` on both
    /// sides keeps empty results meaningful (est 0 / actual 0 → 100%).
    pub(crate) fn record_estimate(&self, est_rows: f64, actual_rows: u64) {
        let pct = (est_rows + 1.0) / (actual_rows as f64 + 1.0) * 100.0;
        self.est_actual_pct.record(pct.round().clamp(0.0, 100_000.0) as u64);
    }
}

impl Default for QueryStats {
    fn default() -> Self {
        QueryStats::bound_to(Registry::new())
    }
}

/// An in-memory database: a set of named tables.
#[derive(Debug, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
    /// Bumped on CREATE/DROP TABLE; prepared statements from an older
    /// generation are discarded (their resolved column indices and plans
    /// may no longer match the schema).
    schema_gen: u64,
    cache: Mutex<PlanCache>,
    stats: QueryStats,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        // The cache is pure acceleration state; a clone starts cold —
        // and with fresh counters, so clones never double-count.
        Database {
            tables: self.tables.clone(),
            schema_gen: self.schema_gen,
            cache: Mutex::new(PlanCache::default()),
            stats: QueryStats::default(),
        }
    }
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Parse and execute one statement of any kind.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parser::parse(sql)?;
        exec::execute(self, stmt)
    }

    /// Execute a statement expected to produce rows (a `SELECT`); errors
    /// if the statement was a write.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        match self.execute(sql)? {
            ExecOutcome::Rows(result) => Ok(result),
            ExecOutcome::Written { .. } => {
                Err(SqlError::Unsupported("statement did not return rows".into()))
            }
        }
    }

    /// Convenience: run a query and return the first column of every row
    /// rendered as text. This is exactly how `cluster-kill --query=...`
    /// consumes results (paper §6.4): a list of node names.
    pub fn query_column(&mut self, sql: &str) -> Result<Vec<String>> {
        let result = self.query(sql)?;
        Ok(result.rows.iter().filter_map(|row| row.first()).map(|v| v.render()).collect())
    }

    /// Run a `SELECT` against a shared reference. Because nothing is
    /// mutated, any number of threads may call this concurrently on one
    /// database — the read path of the parallel Kickstart generation
    /// service. Write statements are rejected.
    ///
    /// Statements are parsed and planned once, then cached by SQL text:
    /// repeated queries (the per-node lookups of a mass reinstall) skip
    /// straight to execution against hash indexes. The cache is flushed
    /// whenever the schema generation changes and is capped at
    /// [`PLAN_CACHE_CAP`] entries.
    pub fn query_ref(&self, sql: &str) -> Result<QueryResult> {
        let prepared = self.prepare(sql)?;
        exec::execute_readonly_with(
            self,
            &prepared.stmt,
            exec::PlanChoice::Prepared(prepared.plan.as_ref()),
        )
    }

    /// [`query_ref`](Self::query_ref) with the planner disabled: parse
    /// and run the naive scan path. This is the differential baseline the
    /// planner is verified against (see `tests/proptest_plan.rs`) and the
    /// "before" side of the benchmark suite.
    pub fn query_ref_scan(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parser::parse(sql)?;
        exec::execute_readonly_with(self, &stmt, exec::PlanChoice::ForceScan)
    }

    /// [`query_ref`](Self::query_ref) with an explicit planner
    /// configuration — the heuristic baseline or a forced join
    /// algorithm. Parses and plans on every call and bypasses the
    /// statement cache: this is the benchmark's measurement path, not a
    /// fast path.
    pub fn query_ref_config(&self, sql: &str, config: &PlannerConfig) -> Result<QueryResult> {
        let stmt = parser::parse(sql)?;
        exec::execute_readonly_with(self, &stmt, exec::PlanChoice::Config(config))
    }

    /// Hash of every table's name and size *band* (power-of-two bucket
    /// of its row count). Part of the plan-cache key: when any table
    /// crosses a band boundary its cost tradeoffs may have flipped, so
    /// cached plans are re-costed. Banding (rather than the raw stats
    /// generation) is the hysteresis that keeps single-row INSERTs from
    /// evicting the cache on every write.
    fn stats_epoch(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for t in self.tables.values() {
            for b in t.name().as_bytes() {
                h ^= u64::from(*b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h ^= u64::from(t.stats_band());
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Fetch (or create) the cached parse+plan for `sql`.
    fn prepare(&self, sql: &str) -> Result<Arc<Prepared>> {
        let stats_epoch = self.stats_epoch();
        {
            let mut cache = self.cache.lock().expect("plan cache lock");
            if cache.schema_gen != self.schema_gen || cache.stats_epoch != stats_epoch {
                cache.entries.clear();
                cache.schema_gen = self.schema_gen;
                cache.stats_epoch = stats_epoch;
            }
            if let Some(hit) = cache.entries.get(sql) {
                self.stats.plan_cache_hits.incr();
                return Ok(Arc::clone(hit));
            }
        }
        self.stats.plan_cache_misses.incr();
        // Parse and plan outside the lock; a racing thread preparing the
        // same text produces an identical entry.
        let stmt = parser::parse(sql)?;
        let plan = match &stmt {
            Statement::Select { from, where_clause: Some(w), .. } => {
                // Planning needs every FROM table present; if one is
                // missing, record "no plan" — execution will raise the
                // same NoSuchTable the scan path would.
                let tables: Option<Vec<(&str, &Table)>> =
                    from.iter().map(|name| self.table(name).map(|t| (t.name(), t))).collect();
                tables.and_then(|tables| {
                    plan::plan_select_with(&tables, w, &PlannerConfig::default()).map(
                        |(p, info)| {
                            self.stats.record_planning(&info, p.reordered);
                            p
                        },
                    )
                })
            }
            _ => None,
        };
        let prepared = Arc::new(Prepared { stmt, plan });
        let mut cache = self.cache.lock().expect("plan cache lock");
        if cache.schema_gen == self.schema_gen && cache.stats_epoch == stats_epoch {
            if cache.entries.len() >= PLAN_CACHE_CAP {
                cache.entries.clear();
            }
            cache.entries.insert(sql.to_string(), Arc::clone(&prepared));
        }
        Ok(prepared)
    }

    /// Number of statements currently prepared (introspection for tests).
    pub fn prepared_statements(&self) -> usize {
        self.cache.lock().expect("plan cache lock").entries.len()
    }

    /// Would [`query_ref`](Self::query_ref) for this exact SQL text skip
    /// planning right now? A pure probe: no counters move, the cache is
    /// neither flushed nor populated. A cached entry only counts as warm
    /// if the whole cache is still valid (same schema generation and
    /// stats epoch), since the next real query would otherwise flush it.
    /// The serving frontend uses this to price a report query before
    /// executing it.
    pub fn plan_cached(&self, sql: &str) -> bool {
        let stats_epoch = self.stats_epoch();
        let cache = self.cache.lock().expect("plan cache lock");
        cache.schema_gen == self.schema_gen
            && cache.stats_epoch == stats_epoch
            && cache.entries.contains_key(sql)
    }

    /// Planner/executor telemetry for this database.
    pub fn stats(&self) -> &QueryStats {
        &self.stats
    }

    /// Rebind this database's [`QueryStats`] to an external registry
    /// (e.g. a [`rocks_trace::Tracer`]'s), so SQL counters land in the
    /// same cluster-wide view as everything else. Counters restart from
    /// the registry's current values.
    pub fn bind_stats_registry(&mut self, registry: &Registry) {
        self.stats = QueryStats::bound_to(registry.clone());
    }

    /// Prepared point lookup: all rows of `table` whose `column` equals
    /// `value` under SQL semantics, as a [`QueryResult`] shaped exactly
    /// like `SELECT * FROM table WHERE column = <value>`. Bypasses SQL
    /// text entirely — no parse, no plan, no per-call `format!` — so the
    /// hot rocks-db accessors (`node_by_ip`, `membership`, ...) resolve
    /// in one index probe.
    pub fn lookup_eq(&self, table: &str, column: &str, value: &Value) -> Result<QueryResult> {
        let t = self.table(table).ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
        let col = t
            .column_index(column)
            .ok_or_else(|| SqlError::NoSuchColumn(format!("{}.{column}", t.name())))?;
        let index = t.eq_index(col);
        let mut scratch = Vec::new();
        let candidates = index.probe(value, &mut scratch);
        self.stats.lookups.incr();
        self.stats.rows_examined.add(candidates.len() as u64);
        let rows: Vec<Vec<Value>> = candidates
            .iter()
            .map(|&r| &t.rows()[r as usize])
            // Candidates are a superset; keep only true equality.
            .filter(|row| row[col].sql_cmp(value) == Some(Ordering::Equal))
            .cloned()
            .collect();
        self.stats.rows_returned.add(rows.len() as u64);
        Ok(QueryResult { columns: t.columns().iter().map(|c| c.name.clone()).collect(), rows })
    }

    /// [`query_ref`](Self::query_ref) returning the first column rendered
    /// as text — the read-only twin of [`query_column`](Self::query_column).
    pub fn query_column_ref(&self, sql: &str) -> Result<Vec<String>> {
        let result = self.query_ref(sql)?;
        Ok(result.rows.iter().filter_map(|row| row.first()).map(|v| v.render()).collect())
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Register a table built programmatically.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::TableExists(table.name().to_string()));
        }
        self.tables.insert(key, table);
        self.schema_gen += 1;
        Ok(())
    }

    /// Remove a table (no-op if absent). Returns whether it existed.
    pub fn remove_table(&mut self, name: &str) -> bool {
        let removed = self.tables.remove(&name.to_ascii_lowercase()).is_some();
        if removed {
            self.schema_gen += 1;
        }
        removed
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }

    /// The current schema generation: bumped on every CREATE/DROP TABLE.
    /// The durable engine journals it with each commit and restores it on
    /// recovery so plan-cache keys survive a restart coherently.
    pub fn schema_generation(&self) -> u64 {
        self.schema_gen
    }

    /// Restore the schema generation recorded by a checkpoint or commit
    /// record (recovery only — the replayed CREATE TABLE statements bump
    /// the counter from zero, and this realigns it with the journal).
    pub(crate) fn set_schema_generation(&mut self, schema_gen: u64) {
        self.schema_gen = schema_gen;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_paper_join() {
        let mut db = Database::new();
        db.execute("create table nodes (id int, name text, membership int, rack int, rank int)")
            .unwrap();
        db.execute("create table memberships (id int, name text, compute text)").unwrap();
        db.execute("insert into nodes values (1, 'frontend-0', 1, 0, 0)").unwrap();
        db.execute("insert into nodes values (4, 'compute-0-0', 2, 0, 0)").unwrap();
        db.execute("insert into nodes values (5, 'compute-0-1', 2, 0, 1)").unwrap();
        db.execute("insert into memberships values (1, 'Frontend', 'no')").unwrap();
        db.execute("insert into memberships values (2, 'Compute', 'yes')").unwrap();

        // The exact query from §6.4's cluster-kill example.
        let names = db
            .query_column(
                "select nodes.name from nodes,memberships where \
                 nodes.membership = memberships.id and \
                 memberships.name = 'Compute'",
            )
            .unwrap();
        assert_eq!(names, vec!["compute-0-0", "compute-0-1"]);

        // And the simpler rack-targeted form.
        let names = db.query_column("select name from nodes where rack=0 and rank=1").unwrap();
        assert_eq!(names, vec!["compute-0-1"]);
    }

    #[test]
    fn query_on_write_statement_errors() {
        let mut db = Database::new();
        db.execute("create table t (x int)").unwrap();
        assert!(db.query("insert into t values (1)").is_err());
    }

    fn two_table_db() -> Database {
        let mut db = Database::new();
        db.execute("create table nodes (id int, name text, membership int, ip text)").unwrap();
        db.execute("create table memberships (id int, name text)").unwrap();
        db.execute(
            "insert into nodes values (1, 'frontend-0', 1, '10.1.1.1'), \
             (2, 'compute-0-0', 2, '10.1.1.2'), (3, 'compute-0-1', 2, '10.1.1.3')",
        )
        .unwrap();
        db.execute("insert into memberships values (1, 'Frontend'), (2, 'Compute')").unwrap();
        db
    }

    #[test]
    fn query_ref_caches_statements() {
        let db = two_table_db();
        assert_eq!(db.prepared_statements(), 0);
        let sql = "select name from nodes where ip = '10.1.1.2'";
        let first = db.query_ref(sql).unwrap();
        assert_eq!(db.prepared_statements(), 1);
        let second = db.query_ref(sql).unwrap();
        assert_eq!(db.prepared_statements(), 1, "second run must hit the cache");
        assert_eq!(first, second);
        // A different statement adds an entry.
        db.query_ref("select id from memberships where name = 'Compute'").unwrap();
        assert_eq!(db.prepared_statements(), 2);
    }

    #[test]
    fn plan_cached_probe_is_pure() {
        let mut db = two_table_db();
        let sql = "select name from nodes where ip = '10.1.1.2'";
        assert!(!db.plan_cached(sql), "cold cache");
        assert_eq!(db.prepared_statements(), 0, "probe must not populate");

        db.query_ref(sql).unwrap();
        assert!(db.plan_cached(sql));
        let hits = db.stats().plan_cache_hits();
        let misses = db.stats().plan_cache_misses();
        for _ in 0..5 {
            db.plan_cached(sql);
        }
        assert_eq!(db.stats().plan_cache_hits(), hits, "probes are free");
        assert_eq!(db.stats().plan_cache_misses(), misses);

        // A schema change makes every cached plan cold — the probe sees
        // it without flushing the (stale) entries itself.
        db.execute("create table extra (x int)").unwrap();
        assert!(!db.plan_cached(sql));
        assert_eq!(db.prepared_statements(), 1, "probe must not flush");
        db.query_ref(sql).unwrap();
        assert!(db.plan_cached(sql), "re-prepared after the flush");
    }

    #[test]
    fn schema_change_flushes_plan_cache() {
        let mut db = two_table_db();
        db.query_ref("select name from nodes where id = 1").unwrap();
        assert_eq!(db.prepared_statements(), 1);
        db.execute("create table extra (x int)").unwrap();
        // The stale entry is discarded on next use, and the query still
        // answers correctly against the new schema generation.
        let r = db.query_ref("select name from nodes where id = 1").unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("frontend-0"));
        assert_eq!(db.prepared_statements(), 1);
    }

    #[test]
    fn cached_plan_survives_row_changes() {
        let mut db = two_table_db();
        let sql = "select name from nodes where membership = 2";
        assert_eq!(db.query_ref(sql).unwrap().rows.len(), 2);
        db.execute("insert into nodes values (4, 'compute-0-2', 2, '10.1.1.4')").unwrap();
        assert_eq!(db.query_ref(sql).unwrap().rows.len(), 3, "cached plan must see new rows");
        db.execute("delete from nodes where membership = 2").unwrap();
        assert_eq!(db.query_ref(sql).unwrap().rows.len(), 0);
    }

    #[test]
    fn clone_starts_with_cold_cache() {
        let db = two_table_db();
        db.query_ref("select name from nodes where id = 1").unwrap();
        let copy = db.clone();
        assert_eq!(copy.prepared_statements(), 0);
        // And the clone still answers (and re-caches) independently.
        assert_eq!(copy.query_ref("select name from nodes where id = 1").unwrap().rows.len(), 1);
    }

    #[test]
    fn query_stats_track_cache_decisions_and_rows() {
        let db = two_table_db();
        let sql = "select name from nodes where ip = '10.1.1.2'";
        db.query_ref(sql).unwrap();
        db.query_ref(sql).unwrap();
        let s = db.stats();
        assert_eq!(s.plan_cache_misses(), 1);
        assert_eq!(s.plan_cache_hits(), 1);
        // On a 3-row table the cost model keeps the point lookup on the
        // scan path — a cold index build cannot pay off at that size.
        assert_eq!(s.scan_executions(), 2);
        assert_eq!(s.plans_costed(), 1, "the miss costed a plan; the hit reused it");
        assert_eq!(s.rows_returned(), 2);
        assert!(s.rows_examined() >= 2);
        // Estimate telemetry saw both executions of the costed plan.
        assert_eq!(s.estimate_ratio().count(), 2);
        // The scan baseline records a scan execution too.
        db.query_ref_scan(sql).unwrap();
        assert_eq!(s.scan_executions(), 3);
        // And the SQL-free fast path counts as a lookup.
        db.lookup_eq("nodes", "ip", &Value::Text("10.1.1.2".into())).unwrap();
        assert_eq!(s.lookups(), 1);
        // Registry view agrees with the typed getters: one source of truth.
        let snap = s.registry().snapshot();
        assert_eq!(snap.counter("sql.plan.cache_hits"), s.plan_cache_hits());
        assert_eq!(snap.counter("sql.rows.examined"), s.rows_examined());
    }

    #[test]
    fn lookup_eq_matches_sql() {
        let db = two_table_db();
        let direct = db.lookup_eq("nodes", "ip", &Value::Text("10.1.1.2".into())).unwrap();
        let via_sql = db.query_ref("select * from nodes where ip = '10.1.1.2'").unwrap();
        assert_eq!(direct, via_sql);
        // Int keys, multiple hits, preserving row order.
        let direct = db.lookup_eq("nodes", "membership", &Value::Int(2)).unwrap();
        let via_sql = db.query_ref("select * from nodes where membership = 2").unwrap();
        assert_eq!(direct, via_sql);
        // Misses and NULL probes return empty, not errors.
        assert!(db.lookup_eq("nodes", "ip", &Value::Text("none".into())).unwrap().rows.is_empty());
        assert!(db.lookup_eq("nodes", "ip", &Value::Null).unwrap().rows.is_empty());
        // Errors mirror SQL's.
        assert!(matches!(
            db.lookup_eq("ghost", "x", &Value::Int(1)),
            Err(SqlError::NoSuchTable(_))
        ));
        assert!(matches!(
            db.lookup_eq("nodes", "ghost", &Value::Int(1)),
            Err(SqlError::NoSuchColumn(_))
        ));
    }
}
