#![warn(missing_docs)]

//! An embedded mini-SQL engine: the reproduction's stand-in for MySQL.
//!
//! Rocks keeps all "global knowledge" of the cluster in a MySQL database
//! (paper §6.4) and deliberately exposes *raw SQL* to administrators:
//! management scripts accept `--query="select nodes.name from
//! nodes,memberships where ..."`, including multi-table joins. Faithfully
//! reproducing that interface requires an actual SQL engine, not a typed
//! key-value store — so this crate implements one, sized to the subset the
//! paper exercises:
//!
//! * `CREATE TABLE t (col INT, col TEXT, ...)`
//! * `INSERT INTO t [(cols)] VALUES (...), (...)`
//! * `SELECT cols FROM t1, t2, ... [WHERE expr] [GROUP BY cols]
//!   [ORDER BY col [DESC]] [LIMIT n]` with qualified names
//!   (`nodes.name`), comparison operators, `AND`/`OR`, `NOT`,
//!   parentheses, `LIKE` patterns, `IS [NOT] NULL`, and the aggregates
//!   `COUNT(*)`, `MIN(col)`, `MAX(col)`, `SUM(col)` — grouped or global
//! * `UPDATE t SET col = expr [WHERE expr]`
//! * `DELETE FROM t [WHERE expr]`
//!
//! # Example — the paper's own query (§6.4)
//!
//! ```
//! use rocks_sql::Database;
//!
//! let mut db = Database::new();
//! db.execute("create table nodes (name text, membership int)").unwrap();
//! db.execute("create table memberships (id int, name text)").unwrap();
//! db.execute("insert into nodes values ('compute-0-0', 2)").unwrap();
//! db.execute("insert into memberships values (2, 'Compute')").unwrap();
//!
//! let rows = db.query(
//!     "select nodes.name from nodes,memberships where \
//!      nodes.membership = memberships.id and memberships.name = 'Compute'",
//! ).unwrap();
//! assert_eq!(rows.rows[0][0].as_text(), Some("compute-0-0"));
//! ```

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod table;
pub mod value;

pub use ast::Statement;
pub use exec::{ExecOutcome, QueryResult};
pub use table::{Column, ColumnType, Table};
pub use value::Value;

use std::collections::BTreeMap;

/// Errors from any stage of statement processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// Tokenizer-level problem (unterminated string, stray character).
    Lex(String),
    /// Grammar-level problem.
    Parse(String),
    /// Unknown table.
    NoSuchTable(String),
    /// Unknown column, with the name as written.
    NoSuchColumn(String),
    /// Ambiguous unqualified column in a join.
    AmbiguousColumn(String),
    /// Table already exists.
    TableExists(String),
    /// Wrong arity or type in an INSERT/UPDATE.
    TypeMismatch(String),
    /// Anything else (e.g. aggregate misuse).
    Unsupported(String),
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SqlError::Lex(m) => write!(f, "lex error: {m}"),
            SqlError::Parse(m) => write!(f, "parse error: {m}"),
            SqlError::NoSuchTable(t) => write!(f, "no such table: {t}"),
            SqlError::NoSuchColumn(c) => write!(f, "no such column: {c}"),
            SqlError::AmbiguousColumn(c) => write!(f, "ambiguous column: {c}"),
            SqlError::TableExists(t) => write!(f, "table already exists: {t}"),
            SqlError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            SqlError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for SQL operations.
pub type Result<T> = std::result::Result<T, SqlError>;

/// An in-memory database: a set of named tables.
#[derive(Debug, Default, Clone)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Parse and execute one statement of any kind.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome> {
        let stmt = parser::parse(sql)?;
        exec::execute(self, stmt)
    }

    /// Execute a statement expected to produce rows (a `SELECT`); errors
    /// if the statement was a write.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        match self.execute(sql)? {
            ExecOutcome::Rows(result) => Ok(result),
            ExecOutcome::Written { .. } => {
                Err(SqlError::Unsupported("statement did not return rows".into()))
            }
        }
    }

    /// Convenience: run a query and return the first column of every row
    /// rendered as text. This is exactly how `cluster-kill --query=...`
    /// consumes results (paper §6.4): a list of node names.
    pub fn query_column(&mut self, sql: &str) -> Result<Vec<String>> {
        let result = self.query(sql)?;
        Ok(result.rows.iter().filter_map(|row| row.first()).map(|v| v.render()).collect())
    }

    /// Run a `SELECT` against a shared reference. Because nothing is
    /// mutated, any number of threads may call this concurrently on one
    /// database — the read path of the parallel Kickstart generation
    /// service. Write statements are rejected.
    pub fn query_ref(&self, sql: &str) -> Result<QueryResult> {
        let stmt = parser::parse(sql)?;
        exec::execute_readonly(self, stmt)
    }

    /// [`query_ref`](Self::query_ref) returning the first column rendered
    /// as text — the read-only twin of [`query_column`](Self::query_column).
    pub fn query_column_ref(&self, sql: &str) -> Result<Vec<String>> {
        let result = self.query_ref(sql)?;
        Ok(result.rows.iter().filter_map(|row| row.first()).map(|v| v.render()).collect())
    }

    /// Look up a table by (case-insensitive) name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Mutable table lookup.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(&name.to_ascii_lowercase())
    }

    /// Register a table built programmatically.
    pub fn add_table(&mut self, table: Table) -> Result<()> {
        let key = table.name().to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(SqlError::TableExists(table.name().to_string()));
        }
        self.tables.insert(key, table);
        Ok(())
    }

    /// Remove a table (no-op if absent). Returns whether it existed.
    pub fn remove_table(&mut self, name: &str) -> bool {
        self.tables.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// Names of all tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.values().map(|t| t.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_paper_join() {
        let mut db = Database::new();
        db.execute("create table nodes (id int, name text, membership int, rack int, rank int)")
            .unwrap();
        db.execute("create table memberships (id int, name text, compute text)").unwrap();
        db.execute("insert into nodes values (1, 'frontend-0', 1, 0, 0)").unwrap();
        db.execute("insert into nodes values (4, 'compute-0-0', 2, 0, 0)").unwrap();
        db.execute("insert into nodes values (5, 'compute-0-1', 2, 0, 1)").unwrap();
        db.execute("insert into memberships values (1, 'Frontend', 'no')").unwrap();
        db.execute("insert into memberships values (2, 'Compute', 'yes')").unwrap();

        // The exact query from §6.4's cluster-kill example.
        let names = db
            .query_column(
                "select nodes.name from nodes,memberships where \
                 nodes.membership = memberships.id and \
                 memberships.name = 'Compute'",
            )
            .unwrap();
        assert_eq!(names, vec!["compute-0-0", "compute-0-1"]);

        // And the simpler rack-targeted form.
        let names = db.query_column("select name from nodes where rack=0 and rank=1").unwrap();
        assert_eq!(names, vec!["compute-0-1"]);
    }

    #[test]
    fn query_on_write_statement_errors() {
        let mut db = Database::new();
        db.execute("create table t (x int)").unwrap();
        assert!(db.query("insert into t values (1)").is_err());
    }
}
