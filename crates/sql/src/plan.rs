//! Cost-based query planning: index point lookups, predicate pushdown,
//! hash and sort-merge joins, and join-order enumeration.
//!
//! The planner lowers a `SELECT ... WHERE ...` into a left-deep pipeline
//! of per-table steps. Unlike the original heuristic planner (kept as
//! [`PlannerMode::Heuristic`] — the benchmark baseline), the default
//! [`PlannerMode::CostBased`] planner:
//!
//! * estimates per-predicate selectivity from per-column
//!   [`TableStats`] (row counts, NDV, min/max, equi-depth histograms —
//!   see `stats.rs`);
//! * prices **scan vs. index point lookup** per table with the model in
//!   `cost.rs`, so a broad predicate (`arch = 'x86_64'` matching 90% of
//!   rows) scans while a selective one probes;
//! * prices **hash vs. sort-merge** per join — warm hash indexes always
//!   win, but a large *cold* text-keyed join is cheaper to sort (borrowed
//!   keys, no string clones) than to hash (clone every string);
//! * **enumerates join orders** — exact dynamic programming over subsets
//!   for ≤ [`DP_TABLE_LIMIT`] tables, greedy above — instead of taking
//!   FROM order.
//!
//! Byte-identical-to-scan guarantees (checked by the differential
//! proptest in `tests/proptest_plan.rs`):
//!
//! * **candidates are supersets** — index probes and merge-join key
//!   groups may contain rows not equal under [`Value::sql_cmp`]'s
//!   Int↔Text coercion, so the originating conjunct stays in the step
//!   filter / every group pair is re-verified with `sql_cmp`;
//! * **order is preserved** — the scan path enumerates the cross product
//!   lexicographically in FROM order. A plan that executes in FROM order
//!   with hash joins only reproduces that order for free (ascending
//!   candidates, accumulator-order extension); any plan that reorders
//!   tables or merge-joins sets [`SelectPlan::restore_order`], and the
//!   executor sorts surviving tuples by their FROM-order row indices
//!   (tuples are distinct, so the order is total and deterministic)
//!   before materializing;
//! * **errors are preserved** — the planner refuses (returns `None`, the
//!   executor falls back to the scan path) unless every column reference
//!   in the WHERE clause resolves uniquely.
//!
//! Tuples are carried as row *indices* per executed step and
//! materialized into value rows only at the end.

use crate::ast::{BinOp, ColumnRef, Expr};
use crate::cost;
use crate::exec::{eval, RowEnv};
use crate::stats::{KeyRef, TableStats};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::cmp::Ordering;
use std::sync::Arc;

/// Exact DP join-order enumeration up to this many FROM tables; greedy
/// beyond (2^n states stop being cheap).
pub const DP_TABLE_LIMIT: usize = 6;

/// How one FROM table's rows are enumerated.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Enumerate every row.
    Scan,
    /// Probe the table's hash index with a literal. Candidates are a
    /// superset; the originating conjunct stays in the step filter.
    IndexEq {
        /// Column index within the table.
        column: usize,
        /// The literal probed for.
        literal: Value,
    },
}

/// Physical join algorithm for one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Probe the right table's hash index with each accumulated tuple.
    Hash,
    /// Sort both sides by normalized key and merge equal-key runs.
    SortMerge,
}

/// Join linkage: equality between a column of an earlier *executed* step
/// and a column of this step's table.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinKey {
    /// Execution-step index of the earlier step supplying probe values.
    pub left_step: usize,
    /// Column index within that step's table.
    pub left_col: usize,
    /// Column index within this step's table.
    pub right_col: usize,
    /// Physical algorithm.
    pub algo: JoinAlgo,
}

/// One per-table step of the pipeline, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// FROM position of the table this step enumerates.
    pub table: usize,
    /// Row enumeration strategy (ignored for hash joins, which probe).
    pub access: Access,
    /// Join against the accumulated prefix (`None` for step 0 and for
    /// genuine cross joins).
    pub join: Option<JoinKey>,
    /// Pushed-down single-table conjuncts; a row must satisfy all.
    pub filter: Vec<Expr>,
    /// Estimated tuples alive after this step (0 when not costed).
    pub est_rows: f64,
    /// Estimated cumulative cost through this step (0 when not costed).
    pub est_cost: f64,
}

/// A planned SELECT pipeline. Plans reference tables by FROM position
/// and columns by index, so a plan stays valid as rows change and is
/// cached per statement (invalidated when the schema generation or the
/// stats epoch bumps — see `Database::query_ref`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// Steps in execution order (a permutation of the FROM tables).
    pub steps: Vec<Step>,
    /// Conjuncts not consumed above: `(ready_after, expr)` — evaluated on
    /// the accumulated row right after execution step `ready_after`.
    pub residual: Vec<(usize, Expr)>,
    /// Executor must re-sort surviving tuples into FROM-order
    /// lexicographic order (set when reordered or merge-joined).
    pub restore_order: bool,
    /// Execution order differs from FROM order (telemetry:
    /// `sql.opt.join_reorders`).
    pub reordered: bool,
    /// Whether cost estimation ran (false for heuristic plans).
    pub costed: bool,
    /// Estimated joined-row count before residual/projection (feeds the
    /// estimated-vs-actual telemetry histogram).
    pub est_rows: f64,
    /// Estimated total plan cost in `cost.rs` work units.
    pub est_cost: f64,
}

impl SelectPlan {
    /// Whether executing this plan touches a hash index anywhere — a
    /// point lookup or a hash join. Telemetry classifies executions as
    /// "indexed" vs "scan" with this.
    pub fn uses_index(&self) -> bool {
        self.steps.iter().any(|s| {
            matches!(s.access, Access::IndexEq { .. })
                || matches!(&s.join, Some(k) if k.algo == JoinAlgo::Hash)
        })
    }
}

/// Planner strategy selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlannerMode {
    /// Statistics-driven costing and join reordering (the default).
    #[default]
    CostBased,
    /// The original fixed-heuristic planner: FROM order, first
    /// `col = literal` becomes the index access, first connecting equi
    /// becomes a hash join. Kept as the benchmark/regression baseline.
    Heuristic,
}

/// Planner configuration, threaded through `Database::query_ref_config`
/// so benchmarks can pin the baseline or a join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlannerConfig {
    /// Strategy.
    pub mode: PlannerMode,
    /// Force every join step onto one algorithm (benchmark crossover
    /// measurements); `None` lets the cost model choose.
    pub force_join: Option<JoinAlgo>,
}

/// What planning did — telemetry inputs for `QueryStats`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PlanInfo {
    /// Table-statistics (re)builds triggered by this planning pass.
    pub stats_builds: u64,
    /// Whether cost estimation ran.
    pub costed: bool,
}

/// Split an expression into its top-level AND conjuncts.
fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// Visit every column reference in an expression.
fn walk_columns<'e>(expr: &'e Expr, f: &mut impl FnMut(&'e ColumnRef)) {
    match expr {
        Expr::Literal(_) => {}
        Expr::Column(c) => f(c),
        Expr::Binary { lhs, rhs, .. } => {
            walk_columns(lhs, f);
            walk_columns(rhs, f);
        }
        Expr::Not(inner) => walk_columns(inner, f),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } | Expr::InList { expr, .. } => {
            walk_columns(expr, f)
        }
    }
}

/// Resolve a column reference to `(from_position, column_index)`,
/// requiring a unique match (mirrors the scan path's resolution rules).
fn resolve_ref(tables: &[(&str, &Table)], col: &ColumnRef) -> Option<(usize, usize)> {
    let mut found = None;
    for (pos, (name, table)) in tables.iter().enumerate() {
        if let Some(t) = &col.table {
            if !t.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        if let Some(idx) = table.column_index(&col.column) {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some((pos, idx));
        }
    }
    found
}

/// Recognize `col = literal` (either side), resolved against `tables`.
fn literal_eq(expr: &Expr, tables: &[(&str, &Table)]) -> Option<(usize, usize, Value)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = expr else {
        return None;
    };
    let (col, lit) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => (c, v),
        _ => return None,
    };
    let (pos, idx) = resolve_ref(tables, col)?;
    Some((pos, idx, lit.clone()))
}

/// Recognize `t1.c1 = t2.c2` across two distinct tables.
fn column_eq(expr: &Expr, tables: &[(&str, &Table)]) -> Option<((usize, usize), (usize, usize))> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = expr else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) else {
        return None;
    };
    let ra = resolve_ref(tables, a)?;
    let rb = resolve_ref(tables, b)?;
    if ra.0 == rb.0 {
        return None;
    }
    Some((ra, rb))
}

/// Cross-table equality conjunct: `((ta, ca), (tb, cb), expr)`.
type EquiConjunct = ((usize, usize), (usize, usize), Expr);

/// The WHERE clause, classified per table — shared by both planner
/// modes.
struct Analysis {
    /// Pushed-down single-table conjuncts, per FROM position.
    filters: Vec<Vec<Expr>>,
    /// `col = literal` conjuncts per FROM position (conjunct order).
    literal_eqs: Vec<Vec<(usize, Value)>>,
    /// Cross-table equality conjuncts, see [`EquiConjunct`].
    equis: Vec<EquiConjunct>,
    /// Everything else: `(touched FROM positions, expr)`.
    other: Vec<(Vec<usize>, Expr)>,
}

fn analyze(tables: &[(&str, &Table)], where_clause: &Expr) -> Option<Analysis> {
    // Every referenced column must resolve uniquely, or planning is off.
    let mut all_resolve = true;
    walk_columns(where_clause, &mut |c| {
        if resolve_ref(tables, c).is_none() {
            all_resolve = false;
        }
    });
    if !all_resolve {
        return None;
    }

    let mut conjuncts = Vec::new();
    split_and(where_clause, &mut conjuncts);

    let n = tables.len();
    let mut a = Analysis {
        filters: vec![Vec::new(); n],
        literal_eqs: vec![Vec::new(); n],
        equis: Vec::new(),
        other: Vec::new(),
    };
    for conj in conjuncts {
        let mut touched: Vec<usize> = Vec::new();
        walk_columns(&conj, &mut |c| {
            let (pos, _) = resolve_ref(tables, c).expect("validated above");
            if !touched.contains(&pos) {
                touched.push(pos);
            }
        });
        match touched.len() {
            0 => a.other.push((Vec::new(), conj)), // constant predicate
            1 => {
                let t = touched[0];
                if let Some((pos, idx, lit)) = literal_eq(&conj, tables) {
                    debug_assert_eq!(pos, t);
                    a.literal_eqs[t].push((idx, lit));
                }
                // The conjunct itself always remains a filter: index
                // candidates are supersets and must be re-checked.
                a.filters[t].push(conj);
            }
            2 => match column_eq(&conj, tables) {
                Some((ra, rb)) => a.equis.push((ra, rb, conj)),
                None => a.other.push((touched, conj)),
            },
            _ => a.other.push((touched, conj)),
        }
    }
    Some(a)
}

/// Estimated fraction of a single table's rows satisfying one pushed
/// conjunct.
fn conjunct_selectivity(expr: &Expr, tables: &[(&str, &Table)], stats: &TableStats) -> f64 {
    // `col <op> literal` in either orientation (flipping the operator).
    fn col_op_lit<'e>(
        expr: &'e Expr,
        tables: &[(&str, &Table)],
    ) -> Option<(usize, BinOp, &'e Value)> {
        let Expr::Binary { op, lhs, rhs } = expr else {
            return None;
        };
        match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Column(c), Expr::Literal(v)) => Some((resolve_ref(tables, c)?.1, *op, v)),
            (Expr::Literal(v), Expr::Column(c)) => {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::LtEq => BinOp::GtEq,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::GtEq => BinOp::LtEq,
                    other => *other,
                };
                Some((resolve_ref(tables, c)?.1, flipped, v))
            }
            _ => None,
        }
    }

    match expr {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            conjunct_selectivity(lhs, tables, stats) * conjunct_selectivity(rhs, tables, stats)
        }
        Expr::Binary { op: BinOp::Or, lhs, rhs } => {
            let a = conjunct_selectivity(lhs, tables, stats);
            let b = conjunct_selectivity(rhs, tables, stats);
            (a + b - a * b).clamp(0.0, 1.0)
        }
        Expr::Binary { .. } => match col_op_lit(expr, tables) {
            Some((col, op, lit)) => stats.est_cmp_fraction(col, op, lit),
            None => 0.33,
        },
        Expr::Not(inner) => 1.0 - conjunct_selectivity(inner, tables, stats),
        Expr::IsNull { expr: inner, negated } => match inner.as_ref() {
            Expr::Column(c) => match resolve_ref(tables, c) {
                Some((_, col)) => {
                    let f = stats.null_fraction(col);
                    if *negated {
                        1.0 - f
                    } else {
                        f
                    }
                }
                None => 0.33,
            },
            _ => 0.33,
        },
        Expr::InList { expr: inner, list, negated } => match inner.as_ref() {
            Expr::Column(c) => match resolve_ref(tables, c) {
                Some((_, col)) => {
                    let rows = stats.rows.max(1) as f64;
                    let hit: f64 = list
                        .iter()
                        .map(|lit| stats.est_eq_rows(col, lit) / rows)
                        .sum::<f64>()
                        .clamp(0.0, 1.0);
                    if *negated {
                        1.0 - hit
                    } else {
                        hit
                    }
                }
                None => 0.33,
            },
            _ => 0.33,
        },
        Expr::Like { negated, .. } => {
            if *negated {
                0.75
            } else {
                0.25
            }
        }
        Expr::Literal(_) | Expr::Column(_) => 0.5,
    }
}

/// How the DP extends a partial join with one more table.
#[derive(Debug, Clone)]
struct Extension {
    table: usize,
    access: Access,
    /// `(index into Analysis::equis, algorithm)` when joined.
    join: Option<(usize, JoinAlgo)>,
}

/// Per-table planning facts gathered once.
struct TableFacts {
    stats: Arc<TableStats>,
    /// Estimated rows surviving this table's pushed filters.
    base_est: f64,
    /// Cheapest standalone access and its cost.
    access: Access,
    access_cost: f64,
}

/// Build a plan for a WHERE clause over the given FROM tables with the
/// default (cost-based) configuration, or `None` when any column
/// reference fails unique resolution.
pub fn plan_select(tables: &[(&str, &Table)], where_clause: &Expr) -> Option<SelectPlan> {
    plan_select_with(tables, where_clause, &PlannerConfig::default()).map(|(p, _)| p)
}

/// [`plan_select`] with an explicit configuration, also reporting what
/// planning did (for telemetry).
pub fn plan_select_with(
    tables: &[(&str, &Table)],
    where_clause: &Expr,
    config: &PlannerConfig,
) -> Option<(SelectPlan, PlanInfo)> {
    if tables.is_empty() || tables.len() > 32 {
        return None; // join-set masks are u32; the scan path handles it
    }
    let analysis = analyze(tables, where_clause)?;
    match config.mode {
        PlannerMode::Heuristic => Some(plan_heuristic(tables, analysis, config)),
        PlannerMode::CostBased => Some(plan_cost_based(tables, analysis, config)),
    }
}

/// The original PR-2 planner: FROM order, first literal-eq as access,
/// first connecting equi as a hash join.
fn plan_heuristic(
    tables: &[(&str, &Table)],
    analysis: Analysis,
    config: &PlannerConfig,
) -> (SelectPlan, PlanInfo) {
    let n = tables.len();
    let algo = config.force_join.unwrap_or(JoinAlgo::Hash);
    let mut steps: Vec<Step> = (0..n)
        .map(|t| Step {
            table: t,
            access: match analysis.literal_eqs[t].first() {
                Some((col, lit)) => Access::IndexEq { column: *col, literal: lit.clone() },
                None => Access::Scan,
            },
            join: None,
            filter: analysis.filters[t].clone(),
            est_rows: 0.0,
            est_cost: 0.0,
        })
        .collect();
    let mut used = vec![false; analysis.equis.len()];
    for (k, step) in steps.iter_mut().enumerate().skip(1) {
        for (i, (ra, rb, _)) in analysis.equis.iter().enumerate() {
            let (lo, hi) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
            if !used[i] && hi.0 == k {
                step.join =
                    Some(JoinKey { left_step: lo.0, left_col: lo.1, right_col: hi.1, algo });
                used[i] = true;
                break;
            }
        }
    }
    let mut residual: Vec<(usize, Expr)> = Vec::new();
    for (i, (ra, rb, expr)) in analysis.equis.iter().enumerate() {
        if !used[i] {
            residual.push((ra.0.max(rb.0), expr.clone()));
        }
    }
    for (touched, expr) in &analysis.other {
        residual.push((touched.iter().copied().max().unwrap_or(0), expr.clone()));
    }
    let restore_order = algo == JoinAlgo::SortMerge && n > 1;
    (
        SelectPlan {
            steps,
            residual,
            restore_order,
            reordered: false,
            costed: false,
            est_rows: 0.0,
            est_cost: 0.0,
        },
        PlanInfo::default(),
    )
}

/// The cost-based planner: per-table facts, then join-order enumeration.
fn plan_cost_based(
    tables: &[(&str, &Table)],
    analysis: Analysis,
    config: &PlannerConfig,
) -> (SelectPlan, PlanInfo) {
    let n = tables.len();
    let mut info = PlanInfo { stats_builds: 0, costed: true };

    // Gather stats and per-table access choices.
    let facts: Vec<TableFacts> = (0..n)
        .map(|t| {
            let (stats, built) = tables[t].1.stats_with_info();
            if built {
                info.stats_builds += 1;
            }
            let rows = stats.rows as f64;
            let nf = analysis.filters[t].len();
            let sel: f64 = analysis.filters[t]
                .iter()
                .map(|f| conjunct_selectivity(f, tables, &stats))
                .product();
            let base_est = rows * sel.clamp(0.0, 1.0);
            // Candidate accesses: a scan, or a probe on any literal-eq.
            let mut access = Access::Scan;
            let mut access_cost = cost::scan_access_cost(rows, nf);
            for (col, lit) in &analysis.literal_eqs[t] {
                let cand = stats.est_eq_rows(*col, lit);
                let build = cost::index_build_cost(
                    rows,
                    tables[t].1.columns()[*col].ty,
                    tables[t].1.has_eq_index(*col),
                );
                let c = cost::index_access_cost(cand, nf, build);
                if c < access_cost {
                    access_cost = c;
                    access = Access::IndexEq { column: *col, literal: lit.clone() };
                }
            }
            TableFacts { stats, base_est, access, access_cost }
        })
        .collect();

    // Price extending a partial join (`mask`, `cur_rows` tuples) with
    // table `t`. Returns (added cost, resulting rows, extension).
    let extend = |mask: u32, cur_rows: f64, t: usize| -> (f64, f64, Extension) {
        let f = &facts[t];
        let rows_t = f.stats.rows as f64;
        let nf = analysis.filters[t].len();
        // Equis connecting t to the current set, as (equi index, left
        // (pos, col) inside the set, right col on t).
        let connecting: Vec<(usize, (usize, usize), usize)> = analysis
            .equis
            .iter()
            .enumerate()
            .filter_map(|(i, (ra, rb, _))| {
                if ra.0 == t && mask & (1 << rb.0) != 0 {
                    Some((i, *rb, ra.1))
                } else if rb.0 == t && mask & (1 << ra.0) != 0 {
                    Some((i, *ra, rb.1))
                } else {
                    None
                }
            })
            .collect();
        if connecting.is_empty() {
            // Cross join: enumerate t's filtered rows once, multiply.
            let out = cur_rows * f.base_est;
            let added = f.access_cost + cost::emit_cost(out);
            return (added, out, Extension { table: t, access: f.access.clone(), join: None });
        }
        // Joint output estimate: every connecting equi applies its
        // selectivity (the first is the physical join key, the rest are
        // verified as residuals).
        let mut out = cur_rows * f.base_est;
        for &(i, (lpos, lcol), rcol) in &connecting {
            let _ = i;
            let ndv_l = facts[lpos].stats.ndv(lcol);
            let ndv_r = f.stats.ndv(rcol);
            out /= ndv_l.max(ndv_r).max(1.0);
        }
        // Pick the physical join key + algorithm by cost.
        let mut best: Option<(f64, usize, JoinAlgo)> = None;
        for &(i, (_lpos, _lcol), rcol) in &connecting {
            let ndv_r = f.stats.ndv(rcol).max(1.0);
            let raw_candidates = cur_rows * rows_t / ndv_r;
            let filtered_pairs = cur_rows * (f.base_est / ndv_r).max(0.0);
            let build = cost::index_build_cost(
                rows_t,
                tables[t].1.columns()[rcol].ty,
                tables[t].1.has_eq_index(rcol),
            );
            let hash = cost::hash_join_cost(cur_rows, raw_candidates, nf, build);
            let merge = cost::merge_join_cost(cur_rows, rows_t, f.base_est, nf, filtered_pairs);
            let choices: &[(JoinAlgo, f64)] = match config.force_join {
                Some(JoinAlgo::Hash) => &[(JoinAlgo::Hash, hash)],
                Some(JoinAlgo::SortMerge) => &[(JoinAlgo::SortMerge, merge)],
                None => &[(JoinAlgo::Hash, hash), (JoinAlgo::SortMerge, merge)],
            };
            for &(algo, c) in choices {
                if best.as_ref().is_none_or(|(bc, _, _)| c < *bc) {
                    best = Some((c, i, algo));
                }
            }
        }
        let (join_cost, equi_idx, algo) = best.expect("connecting is non-empty");
        let added = join_cost + cost::emit_cost(out);
        (added, out, Extension { table: t, access: Access::Scan, join: Some((equi_idx, algo)) })
    };

    // Enumerate the join order: exact DP over subsets when small, greedy
    // otherwise. Ties break toward FROM order (ascending t, strict <).
    let order: Vec<Extension> = if n == 1 {
        vec![Extension { table: 0, access: facts[0].access.clone(), join: None }]
    } else if n <= DP_TABLE_LIMIT {
        // best[mask] = (cost, rows, predecessor mask, extension taken).
        let full = (1u32 << n) - 1;
        let mut best: Vec<Option<(f64, f64, u32, Extension)>> = vec![None; (full + 1) as usize];
        for t in 0..n {
            let f = &facts[t];
            let c = f.access_cost + cost::emit_cost(f.base_est);
            best[1usize << t] = Some((
                c,
                f.base_est,
                0,
                Extension { table: t, access: f.access.clone(), join: None },
            ));
        }
        for mask in 1..=full {
            let Some((cur_cost, cur_rows, _, _)) = best[mask as usize].clone() else {
                continue;
            };
            for t in 0..n {
                if mask & (1 << t) != 0 {
                    continue;
                }
                let (added, out, ext) = extend(mask, cur_rows, t);
                let next = mask | (1 << t);
                let total = cur_cost + added;
                if best[next as usize].as_ref().is_none_or(|(c, ..)| total < *c) {
                    best[next as usize] = Some((total, out, mask, ext));
                }
            }
        }
        // Walk back from the full mask.
        let mut rev = Vec::with_capacity(n);
        let mut mask = full;
        while mask != 0 {
            let (_, _, prev, ext) = best[mask as usize].clone().expect("reachable");
            rev.push(ext);
            mask = prev;
        }
        rev.reverse();
        rev
    } else {
        // Greedy: cheapest first table, then cheapest extension.
        let mut order = Vec::with_capacity(n);
        let start = (0..n)
            .min_by(|&a, &b| {
                let ca = facts[a].access_cost + cost::emit_cost(facts[a].base_est);
                let cb = facts[b].access_cost + cost::emit_cost(facts[b].base_est);
                ca.partial_cmp(&cb).unwrap_or(Ordering::Equal)
            })
            .expect("n > 0");
        let mut cur_rows = facts[start].base_est;
        let mut mask = 1u32 << start;
        order.push(Extension { table: start, access: facts[start].access.clone(), join: None });
        while order.len() < n {
            let mut pick: Option<(f64, f64, Extension)> = None;
            for t in 0..n {
                if mask & (1 << t) != 0 {
                    continue;
                }
                let (added, out, ext) = extend(mask, cur_rows, t);
                if pick.as_ref().is_none_or(|(c, ..)| added < *c) {
                    pick = Some((added, out, ext));
                }
            }
            let (_, out, ext) = pick.expect("tables remain");
            mask |= 1 << ext.table;
            cur_rows = out;
            order.push(ext);
        }
        order
    };

    // Lower the chosen order into steps.
    let mut exec_pos = vec![0usize; n];
    for (k, ext) in order.iter().enumerate() {
        exec_pos[ext.table] = k;
    }
    let mut used = vec![false; analysis.equis.len()];
    let mut steps = Vec::with_capacity(n);
    let mut cum_cost = 0.0;
    let mut cur_rows = 0.0;
    let mut mask = 0u32;
    for (k, ext) in order.iter().enumerate() {
        let t = ext.table;
        let (added, out) = if k == 0 {
            (facts[t].access_cost + cost::emit_cost(facts[t].base_est), facts[t].base_est)
        } else {
            let (a, o, _) = extend(mask, cur_rows, t);
            (a, o)
        };
        cum_cost += added;
        cur_rows = out;
        mask |= 1 << t;
        let join = ext.join.map(|(equi_idx, algo)| {
            used[equi_idx] = true;
            let (ra, rb, _) = &analysis.equis[equi_idx];
            let (left, right_col) = if ra.0 == t { (*rb, ra.1) } else { (*ra, rb.1) };
            JoinKey { left_step: exec_pos[left.0], left_col: left.1, right_col, algo }
        });
        steps.push(Step {
            table: t,
            access: ext.access.clone(),
            join,
            filter: analysis.filters[t].clone(),
            est_rows: out,
            est_cost: cum_cost,
        });
    }

    // Residuals: ready once every touched table has executed.
    let ready_for =
        |touched: &[usize]| -> usize { touched.iter().map(|&t| exec_pos[t]).max().unwrap_or(0) };
    let mut residual: Vec<(usize, Expr)> = Vec::new();
    for (i, (ra, rb, expr)) in analysis.equis.iter().enumerate() {
        if !used[i] {
            residual.push((ready_for(&[ra.0, rb.0]), expr.clone()));
        }
    }
    for (touched, expr) in &analysis.other {
        residual.push((ready_for(touched), expr.clone()));
    }

    let reordered = order.iter().enumerate().any(|(k, ext)| ext.table != k);
    let merge_used =
        steps.iter().any(|s| matches!(&s.join, Some(k) if k.algo == JoinAlgo::SortMerge));
    let plan = SelectPlan {
        restore_order: (reordered || merge_used) && n > 0,
        reordered,
        costed: true,
        est_rows: cur_rows,
        est_cost: cum_cost,
        steps,
        residual,
    };
    (plan, info)
}

/// Assemble the value row for a tuple of per-step row indices, in
/// execution order.
fn assemble(exec_tables: &[(&str, &Table)], tuple: &[u32], out: &mut Vec<Value>) {
    out.clear();
    for (pos, &row) in tuple.iter().enumerate() {
        out.extend_from_slice(&exec_tables[pos].1.rows()[row as usize]);
    }
}

/// Evaluate a step's pushed-down filters against one row of its table,
/// memoizing per row index (0 = unknown, 1 = pass, 2 = fail) so hash
/// joins never re-evaluate a filter for a repeatedly probed row.
fn step_filter(
    filters: &[Expr],
    single: &[(&str, &Table)],
    row: u32,
    memo: &mut [u8],
) -> Result<bool> {
    if filters.is_empty() {
        return Ok(true);
    }
    match memo[row as usize] {
        1 => Ok(true),
        2 => Ok(false),
        _ => {
            let env =
                RowEnv { tables: single, offsets: &[0], row: &single[0].1.rows()[row as usize] };
            let mut pass = true;
            for f in filters {
                if !eval(f, &env)?.is_truthy() {
                    pass = false;
                    break;
                }
            }
            memo[row as usize] = if pass { 1 } else { 2 };
            Ok(pass)
        }
    }
}

/// Sort-merge join: sort the (filtered) right rows and the accumulated
/// tuples by normalized key, merge equal-key runs, and re-verify every
/// pair with `sql_cmp` (group keys are supersets — see `stats.rs`).
#[allow(clippy::too_many_arguments)]
fn merge_join(
    acc: &[Vec<u32>],
    left_table: &Table,
    left_step: usize,
    left_col: usize,
    right: &Table,
    right_col: usize,
    filters: &[Expr],
    single: &[(&str, &Table)],
    memo: &mut [u8],
    examined: &mut u64,
) -> Result<Vec<Vec<u32>>> {
    let right_rows = right.rows();
    *examined += right_rows.len() as u64;
    let mut rkeys: Vec<(KeyRef<'_>, u32)> = Vec::new();
    for (i, row) in right_rows.iter().enumerate() {
        if let Some(k) = KeyRef::of(&row[right_col]) {
            if step_filter(filters, single, i as u32, memo)? {
                rkeys.push((k, i as u32));
            }
        }
    }
    rkeys.sort_unstable();

    let left_rows = left_table.rows();
    let mut lkeys: Vec<(KeyRef<'_>, u32)> = Vec::new();
    for (i, tuple) in acc.iter().enumerate() {
        let v = &left_rows[tuple[left_step] as usize][left_col];
        if let Some(k) = KeyRef::of(v) {
            lkeys.push((k, i as u32)); // NULL keys join nothing
        }
    }
    lkeys.sort_unstable();

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < lkeys.len() && j < rkeys.len() {
        match lkeys[i].0.cmp(&rkeys[j].0) {
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
            Ordering::Equal => {
                let key = lkeys[i].0;
                let (i0, j0) = (i, j);
                while i < lkeys.len() && lkeys[i].0 == key {
                    i += 1;
                }
                while j < rkeys.len() && rkeys[j].0 == key {
                    j += 1;
                }
                for &(_, acc_idx) in &lkeys[i0..i] {
                    let tuple = &acc[acc_idx as usize];
                    let lval = &left_rows[tuple[left_step] as usize][left_col];
                    for &(_, r) in &rkeys[j0..j] {
                        *examined += 1;
                        let rval = &right_rows[r as usize][right_col];
                        if lval.sql_cmp(rval) != Some(Ordering::Equal) {
                            continue; // group key was a superset
                        }
                        let mut extended = Vec::with_capacity(tuple.len() + 1);
                        extended.extend_from_slice(tuple);
                        extended.push(r);
                        out.push(extended);
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Execute a plan, returning joined rows identical (values and order) to
/// the scan path's filtered cross product. `examined` tallies every row
/// enumerated or index candidate probed (the telemetry behind
/// `sql.rows.examined`).
pub fn execute_plan(
    plan: &SelectPlan,
    tables: &[(&str, &Table)],
    offsets: &[usize],
    total_width: usize,
    examined: &mut u64,
) -> Result<Vec<Vec<Value>>> {
    let _ = offsets;
    let n = tables.len();
    debug_assert_eq!(plan.steps.len(), n);

    // Tables in execution order, with execution-order row offsets for
    // residual evaluation environments.
    let exec_tables: Vec<(&str, &Table)> = plan.steps.iter().map(|s| tables[s.table]).collect();
    let mut exec_offsets = Vec::with_capacity(n);
    {
        let mut w = 0usize;
        for (_, t) in &exec_tables {
            exec_offsets.push(w);
            w += t.columns().len();
        }
    }

    // Tuples of per-step row indices joined so far.
    let mut acc: Vec<Vec<u32>> = Vec::new();
    let mut scratch_row: Vec<Value> = Vec::new();
    let mut probe_scratch: Vec<u32> = Vec::new();

    for (k, step) in plan.steps.iter().enumerate() {
        let t = tables[step.table].1;
        let single = [(tables[step.table].0, t)];
        let mut memo = vec![0u8; t.len()];

        match &step.join {
            // Step 0 or an explicit cross join: enumerate this table's
            // (filtered) rows once, then extend every tuple.
            None => {
                let mut right: Vec<u32> = Vec::new();
                match &step.access {
                    Access::Scan => {
                        *examined += t.len() as u64;
                        for row in 0..t.len() as u32 {
                            if step_filter(&step.filter, &single, row, &mut memo)? {
                                right.push(row);
                            }
                        }
                    }
                    Access::IndexEq { column, literal } => {
                        let index = t.eq_index(*column);
                        let candidates = index.probe(literal, &mut probe_scratch);
                        *examined += candidates.len() as u64;
                        for &row in candidates {
                            if step_filter(&step.filter, &single, row, &mut memo)? {
                                right.push(row);
                            }
                        }
                    }
                }
                if k == 0 {
                    acc = right.into_iter().map(|r| vec![r]).collect();
                } else {
                    let mut next = Vec::with_capacity(acc.len() * right.len());
                    for tuple in &acc {
                        for &r in &right {
                            let mut extended = Vec::with_capacity(k + 1);
                            extended.extend_from_slice(tuple);
                            extended.push(r);
                            next.push(extended);
                        }
                    }
                    acc = next;
                }
            }
            Some(key) if key.algo == JoinAlgo::SortMerge => {
                acc = merge_join(
                    &acc,
                    exec_tables[key.left_step].1,
                    key.left_step,
                    key.left_col,
                    t,
                    key.right_col,
                    &step.filter,
                    &single,
                    &mut memo,
                    examined,
                )?;
            }
            // Hash join: probe this table's index with each accumulated
            // tuple's key value. Ascending buckets + accumulator order
            // reproduce the cross product's lexicographic order (when
            // executing in FROM order).
            Some(key) => {
                let index = t.eq_index(key.right_col);
                let left_rows = exec_tables[key.left_step].1.rows();
                let mut next = Vec::new();
                for tuple in &acc {
                    let lval = &left_rows[tuple[key.left_step] as usize][key.left_col];
                    if lval.is_null() {
                        continue; // NULL joins nothing
                    }
                    let candidates = index.probe(lval, &mut probe_scratch);
                    *examined += candidates.len() as u64;
                    for &r in candidates {
                        let rval = &t.rows()[r as usize][key.right_col];
                        if lval.sql_cmp(rval) != Some(Ordering::Equal) {
                            continue; // candidate false positive
                        }
                        if !step_filter(&step.filter, &single, r, &mut memo)? {
                            continue;
                        }
                        let mut extended = Vec::with_capacity(k + 1);
                        extended.extend_from_slice(tuple);
                        extended.push(r);
                        next.push(extended);
                    }
                }
                acc = next;
            }
        }

        // Residuals that became evaluable once step k executed.
        if plan.residual.iter().any(|(ready, _)| *ready == k) {
            let prefix_tables = &exec_tables[..=k];
            let prefix_offsets = &exec_offsets[..=k];
            let mut kept = Vec::with_capacity(acc.len());
            for tuple in acc {
                assemble(prefix_tables, &tuple, &mut scratch_row);
                let env =
                    RowEnv { tables: prefix_tables, offsets: prefix_offsets, row: &scratch_row };
                let mut pass = true;
                for (ready, expr) in &plan.residual {
                    if *ready == k && !eval(expr, &env)?.is_truthy() {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    kept.push(tuple);
                }
            }
            acc = kept;
        }

        if acc.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Map FROM position -> execution step slot, for order restoration
    // and FROM-order materialization.
    let mut slot_of = vec![0usize; n];
    for (slot, s) in plan.steps.iter().enumerate() {
        slot_of[s.table] = slot;
    }

    // Reordered/merged pipelines emit tuples out of cross-product order;
    // restore it by sorting on FROM-order row indices. Tuples are
    // distinct combinations, so the order is total — no tie to break.
    if plan.restore_order {
        acc.sort_unstable_by(|a, b| {
            for p in 0..n {
                match a[slot_of[p]].cmp(&b[slot_of[p]]) {
                    Ordering::Equal => continue,
                    other => return other,
                }
            }
            Ordering::Equal
        });
    }

    // Materialize value rows only for surviving tuples, in FROM order.
    let mut joined = Vec::with_capacity(acc.len());
    for tuple in acc {
        let mut row = Vec::with_capacity(total_width);
        for (pos, (_, t)) in tables.iter().enumerate() {
            row.extend_from_slice(&t.rows()[tuple[slot_of[pos]] as usize]);
        }
        joined.push(row);
    }
    Ok(joined)
}

/// Render a plan (or the scan fallback) as EXPLAIN output lines, in
/// execution order. Costed plans annotate each step with estimated rows
/// and cumulative cost.
pub fn render_plan(
    tables: &[(&str, &Table)],
    plan: Option<&SelectPlan>,
    where_clause: Option<&Expr>,
) -> Vec<String> {
    let names: Vec<&str> = tables.iter().map(|(name, _)| *name).collect();
    let mut lines = vec![format!("select from {}", names.join(", "))];
    match plan {
        Some(plan) => {
            for (k, step) in plan.steps.iter().enumerate() {
                let t = tables[step.table].1;
                let mut line = format!("  {}: ", names[step.table]);
                match &step.join {
                    Some(key) => {
                        let left_from = plan.steps[key.left_step].table;
                        let algo = match key.algo {
                            JoinAlgo::Hash => "hash join",
                            JoinAlgo::SortMerge => "merge join",
                        };
                        line.push_str(&format!(
                            "{algo}({}.{} = {}.{})",
                            names[left_from],
                            tables[left_from].1.columns()[key.left_col].name,
                            names[step.table],
                            t.columns()[key.right_col].name,
                        ));
                    }
                    None if k == 0 => {}
                    None => line.push_str("nested loop, "),
                }
                if step.join.is_some() {
                    line.push_str(", ");
                }
                match &step.access {
                    Access::Scan => line.push_str("scan"),
                    Access::IndexEq { column, literal } => {
                        line.push_str(&format!(
                            "index({} = {})",
                            t.columns()[*column].name,
                            Expr::Literal(literal.clone()),
                        ));
                    }
                }
                if !step.filter.is_empty() {
                    let fs: Vec<String> = step.filter.iter().map(|f| f.to_string()).collect();
                    line.push_str(&format!(" filter({})", fs.join(" and ")));
                }
                if plan.costed {
                    line.push_str(&format!(
                        " [est {} rows, cost {}]",
                        step.est_rows.round() as u64,
                        step.est_cost.round() as u64
                    ));
                }
                lines.push(line);
            }
            for (ready, expr) in &plan.residual {
                let name = names[plan.steps[*ready].table];
                lines.push(format!("  residual after {name}: {expr}"));
            }
            if plan.reordered {
                let order: Vec<&str> = plan.steps.iter().map(|s| names[s.table]).collect();
                lines.push(format!("  join order: {} (cost-based)", order.join(", ")));
            }
            if plan.costed {
                lines.push(format!(
                    "  estimated: {} rows, total cost {}",
                    plan.est_rows.round() as u64,
                    plan.est_cost.round() as u64
                ));
            }
        }
        None => {
            for (k, name) in names.iter().enumerate() {
                if k == 0 {
                    lines.push(format!("  {name}: scan"));
                } else {
                    lines.push(format!("  {name}: nested loop, scan"));
                }
            }
            if let Some(expr) = where_clause {
                lines.push(format!("  where: {expr} (evaluated on the cross product)"));
            }
        }
    }
    lines
}
