//! Query planning: index point lookups, predicate pushdown, hash joins.
//!
//! The planner lowers a `SELECT ... WHERE ...` into a left-deep pipeline
//! of per-table steps, in FROM order:
//!
//! * the WHERE clause is split into top-level `AND` conjuncts;
//! * a conjunct touching one table is **pushed down** to that table's
//!   step and evaluated against single-table rows (never against the
//!   cross product);
//! * a `col = literal` conjunct additionally makes the step an **index
//!   point lookup** via the table's lazily built [`HashIndex`];
//! * a `t1.c1 = t2.c2` conjunct joining a step to an earlier table makes
//!   the step a **hash join** (probe the index on `c2` with the earlier
//!   row's `c1` value) instead of a nested-loop cross product;
//! * everything else becomes a **residual** evaluated on the accumulated
//!   row as soon as every table it references has been joined.
//!
//! Byte-identical-to-scan guarantees (checked by the differential
//! proptest in `tests/proptest_plan.rs`):
//!
//! * **candidates are supersets** — index probes may return rows that are
//!   not equal under [`Value::sql_cmp`]'s Int↔Text coercion, so the
//!   equality conjunct always stays in the step's filter and hash-join
//!   probes re-verify with `sql_cmp` before emitting;
//! * **order is preserved** — the scan path enumerates the cross product
//!   lexicographically in FROM order; step 0 candidates are ascending,
//!   hash joins extend tuples in accumulator order with ascending-bucket
//!   matches, and filters only remove tuples, so the planned pipeline
//!   yields exactly the same sequence;
//! * **errors are preserved** — the planner refuses (returns `None`, the
//!   executor falls back to the scan path) unless every column reference
//!   in the WHERE clause resolves uniquely, so the planned pipeline can
//!   never mask a `NoSuchColumn`/`AmbiguousColumn` error the scan would
//!   raise, nor raise one the scan would not.
//!
//! Tuples are carried as row *indices* per table and materialized into
//! value rows only at the end, so a selective join never clones rows the
//! filter would discard.

use crate::ast::{BinOp, ColumnRef, Expr};
use crate::exec::{eval, RowEnv};
use crate::table::Table;
use crate::value::Value;
use crate::Result;
use std::cmp::Ordering;

/// How one FROM table's rows are enumerated.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Enumerate every row.
    Scan,
    /// Probe the table's hash index with a literal. Candidates are a
    /// superset; the originating conjunct stays in the step filter.
    IndexEq {
        /// Column index within the table.
        column: usize,
        /// The literal probed for.
        literal: Value,
    },
}

/// Hash-join linkage: equality between a column of an earlier FROM table
/// and a column of this step's table.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinKey {
    /// FROM position of the earlier table supplying probe values.
    pub left_table: usize,
    /// Column index within that earlier table.
    pub left_col: usize,
    /// Column index within this step's table (the probed index).
    pub right_col: usize,
}

/// One per-table step of the pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Row enumeration strategy.
    pub access: Access,
    /// Hash-join key against the accumulated prefix (`None` for step 0
    /// and for genuine cross joins).
    pub join: Option<JoinKey>,
    /// Pushed-down single-table conjuncts; a row must satisfy all.
    pub filter: Vec<Expr>,
}

/// A planned SELECT pipeline. Plans reference tables by FROM position
/// and columns by index, so a plan stays valid as rows change and is
/// cached per statement (invalidated when the schema generation bumps —
/// see `Database::query_ref`).
#[derive(Debug, Clone, PartialEq)]
pub struct SelectPlan {
    /// One step per FROM table, in FROM order.
    pub steps: Vec<Step>,
    /// Conjuncts not consumed above: `(ready_after, expr)` — evaluated on
    /// the accumulated row right after step `ready_after` completes.
    pub residual: Vec<(usize, Expr)>,
}

impl SelectPlan {
    /// Whether executing this plan touches a hash index anywhere — a
    /// point lookup or a hash join. Telemetry classifies executions as
    /// "indexed" vs "scan" with this.
    pub fn uses_index(&self) -> bool {
        self.steps.iter().any(|s| s.join.is_some() || matches!(s.access, Access::IndexEq { .. }))
    }
}

/// Split an expression into its top-level AND conjuncts.
fn split_and(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary { op: BinOp::And, lhs, rhs } => {
            split_and(lhs, out);
            split_and(rhs, out);
        }
        other => out.push(other.clone()),
    }
}

/// Visit every column reference in an expression.
fn walk_columns<'e>(expr: &'e Expr, f: &mut impl FnMut(&'e ColumnRef)) {
    match expr {
        Expr::Literal(_) => {}
        Expr::Column(c) => f(c),
        Expr::Binary { lhs, rhs, .. } => {
            walk_columns(lhs, f);
            walk_columns(rhs, f);
        }
        Expr::Not(inner) => walk_columns(inner, f),
        Expr::Like { expr, .. } | Expr::IsNull { expr, .. } | Expr::InList { expr, .. } => {
            walk_columns(expr, f)
        }
    }
}

/// Resolve a column reference to `(from_position, column_index)`,
/// requiring a unique match (mirrors the scan path's resolution rules).
fn resolve_ref(tables: &[(&str, &Table)], col: &ColumnRef) -> Option<(usize, usize)> {
    let mut found = None;
    for (pos, (name, table)) in tables.iter().enumerate() {
        if let Some(t) = &col.table {
            if !t.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        if let Some(idx) = table.column_index(&col.column) {
            if found.is_some() {
                return None; // ambiguous
            }
            found = Some((pos, idx));
        }
    }
    found
}

/// Recognize `col = literal` (either side), resolved against `tables`.
fn literal_eq(expr: &Expr, tables: &[(&str, &Table)]) -> Option<(usize, usize, Value)> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = expr else {
        return None;
    };
    let (col, lit) = match (lhs.as_ref(), rhs.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) => (c, v),
        _ => return None,
    };
    let (pos, idx) = resolve_ref(tables, col)?;
    Some((pos, idx, lit.clone()))
}

/// Recognize `t1.c1 = t2.c2` across two distinct tables.
fn column_eq(expr: &Expr, tables: &[(&str, &Table)]) -> Option<((usize, usize), (usize, usize))> {
    let Expr::Binary { op: BinOp::Eq, lhs, rhs } = expr else {
        return None;
    };
    let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) else {
        return None;
    };
    let ra = resolve_ref(tables, a)?;
    let rb = resolve_ref(tables, b)?;
    if ra.0 == rb.0 {
        return None;
    }
    Some((ra, rb))
}

/// Build a plan for a WHERE clause over the given FROM tables, or `None`
/// when any column reference fails unique resolution (the caller then
/// falls back to the scan path, preserving error behavior exactly).
pub fn plan_select(tables: &[(&str, &Table)], where_clause: &Expr) -> Option<SelectPlan> {
    // Every referenced column must resolve uniquely, or planning is off.
    let mut all_resolve = true;
    walk_columns(where_clause, &mut |c| {
        if resolve_ref(tables, c).is_none() {
            all_resolve = false;
        }
    });
    if !all_resolve {
        return None;
    }

    let mut conjuncts = Vec::new();
    split_and(where_clause, &mut conjuncts);

    let n = tables.len();
    let mut steps: Vec<Step> =
        (0..n).map(|_| Step { access: Access::Scan, join: None, filter: Vec::new() }).collect();
    let mut residual: Vec<(usize, Expr)> = Vec::new();
    // Unconsumed cross-table equality conjuncts: ((lo, lo_col), (hi, hi_col), expr).
    type EquiConjunct = ((usize, usize), (usize, usize), Expr);
    let mut equi: Vec<EquiConjunct> = Vec::new();

    for conj in conjuncts {
        let mut touched: Vec<usize> = Vec::new();
        walk_columns(&conj, &mut |c| {
            let (pos, _) = resolve_ref(tables, c).expect("validated above");
            if !touched.contains(&pos) {
                touched.push(pos);
            }
        });
        match touched.len() {
            0 => residual.push((0, conj)), // constant predicate
            1 => {
                let t = touched[0];
                if steps[t].access == Access::Scan {
                    if let Some((pos, idx, lit)) = literal_eq(&conj, tables) {
                        debug_assert_eq!(pos, t);
                        steps[t].access = Access::IndexEq { column: idx, literal: lit };
                    }
                }
                // The conjunct itself always remains a filter: index
                // candidates are supersets and must be re-checked.
                steps[t].filter.push(conj);
            }
            2 => match column_eq(&conj, tables) {
                Some((ra, rb)) => {
                    let (lo, hi) = if ra.0 < rb.0 { (ra, rb) } else { (rb, ra) };
                    equi.push((lo, hi, conj));
                }
                None => {
                    residual.push((*touched.iter().max().unwrap(), conj));
                }
            },
            _ => residual.push((*touched.iter().max().unwrap(), conj)),
        }
    }

    // Consume at most one equi conjunct per step as its hash-join key;
    // leftovers are verified as residuals.
    let mut used = vec![false; equi.len()];
    for (k, step) in steps.iter_mut().enumerate().skip(1) {
        for (i, (lo, hi, _)) in equi.iter().enumerate() {
            if !used[i] && hi.0 == k {
                step.join = Some(JoinKey { left_table: lo.0, left_col: lo.1, right_col: hi.1 });
                used[i] = true;
                break;
            }
        }
    }
    for (i, (_, hi, expr)) in equi.into_iter().enumerate() {
        if !used[i] {
            residual.push((hi.0, expr));
        }
    }

    Some(SelectPlan { steps, residual })
}

/// Assemble the value row for a tuple of per-table row indices.
fn assemble(tables: &[(&str, &Table)], tuple: &[u32], out: &mut Vec<Value>) {
    out.clear();
    for (pos, &row) in tuple.iter().enumerate() {
        out.extend_from_slice(&tables[pos].1.rows()[row as usize]);
    }
}

/// Evaluate a step's pushed-down filters against one row of its table,
/// memoizing per row index (0 = unknown, 1 = pass, 2 = fail) so hash
/// joins never re-evaluate a filter for a repeatedly probed row.
fn step_filter(
    filters: &[Expr],
    single: &[(&str, &Table)],
    row: u32,
    memo: &mut [u8],
) -> Result<bool> {
    if filters.is_empty() {
        return Ok(true);
    }
    match memo[row as usize] {
        1 => Ok(true),
        2 => Ok(false),
        _ => {
            let env =
                RowEnv { tables: single, offsets: &[0], row: &single[0].1.rows()[row as usize] };
            let mut pass = true;
            for f in filters {
                if !eval(f, &env)?.is_truthy() {
                    pass = false;
                    break;
                }
            }
            memo[row as usize] = if pass { 1 } else { 2 };
            Ok(pass)
        }
    }
}

/// Execute a plan, returning joined rows identical (values and order) to
/// the scan path's filtered cross product. `examined` tallies every row
/// enumerated or index candidate probed (the telemetry behind
/// `sql.rows.examined`).
pub fn execute_plan(
    plan: &SelectPlan,
    tables: &[(&str, &Table)],
    offsets: &[usize],
    total_width: usize,
    examined: &mut u64,
) -> Result<Vec<Vec<Value>>> {
    let n = tables.len();
    debug_assert_eq!(plan.steps.len(), n);

    // Tuples of per-table row indices joined so far.
    let mut acc: Vec<Vec<u32>> = Vec::new();
    let mut scratch_row: Vec<Value> = Vec::new();
    let mut probe_scratch: Vec<u32> = Vec::new();

    for (k, step) in plan.steps.iter().enumerate() {
        let t = tables[k].1;
        let single = [(tables[k].0, t)];
        let mut memo = vec![0u8; t.len()];

        match (&step.join, k) {
            // Step 0 or an explicit cross join: enumerate this table's
            // (filtered) rows once, then extend every tuple.
            (None, _) => {
                let mut right: Vec<u32> = Vec::new();
                match &step.access {
                    Access::Scan => {
                        *examined += t.len() as u64;
                        for row in 0..t.len() as u32 {
                            if step_filter(&step.filter, &single, row, &mut memo)? {
                                right.push(row);
                            }
                        }
                    }
                    Access::IndexEq { column, literal } => {
                        let index = t.eq_index(*column);
                        let candidates = index.probe(literal, &mut probe_scratch);
                        *examined += candidates.len() as u64;
                        for &row in candidates {
                            if step_filter(&step.filter, &single, row, &mut memo)? {
                                right.push(row);
                            }
                        }
                    }
                }
                if k == 0 {
                    acc = right.into_iter().map(|r| vec![r]).collect();
                } else {
                    let mut next = Vec::with_capacity(acc.len() * right.len());
                    for tuple in &acc {
                        for &r in &right {
                            let mut extended = Vec::with_capacity(k + 1);
                            extended.extend_from_slice(tuple);
                            extended.push(r);
                            next.push(extended);
                        }
                    }
                    acc = next;
                }
            }
            // Hash join: probe this table's index with each accumulated
            // tuple's key value. Ascending buckets + accumulator order
            // reproduce the cross product's lexicographic order.
            (Some(key), _) => {
                let index = t.eq_index(key.right_col);
                let left_rows = tables[key.left_table].1.rows();
                let mut next = Vec::new();
                for tuple in &acc {
                    let lval = &left_rows[tuple[key.left_table] as usize][key.left_col];
                    if lval.is_null() {
                        continue; // NULL joins nothing
                    }
                    let candidates = index.probe(lval, &mut probe_scratch);
                    *examined += candidates.len() as u64;
                    for &r in candidates {
                        let rval = &t.rows()[r as usize][key.right_col];
                        if lval.sql_cmp(rval) != Some(Ordering::Equal) {
                            continue; // candidate false positive
                        }
                        if !step_filter(&step.filter, &single, r, &mut memo)? {
                            continue;
                        }
                        let mut extended = Vec::with_capacity(k + 1);
                        extended.extend_from_slice(tuple);
                        extended.push(r);
                        next.push(extended);
                    }
                }
                acc = next;
            }
        }

        // Residuals that became evaluable once table k joined.
        if plan.residual.iter().any(|(ready, _)| *ready == k) {
            let prefix_tables = &tables[..=k];
            let prefix_offsets = &offsets[..=k];
            let mut kept = Vec::with_capacity(acc.len());
            for tuple in acc {
                assemble(prefix_tables, &tuple, &mut scratch_row);
                let env =
                    RowEnv { tables: prefix_tables, offsets: prefix_offsets, row: &scratch_row };
                let mut pass = true;
                for (ready, expr) in &plan.residual {
                    if *ready == k && !eval(expr, &env)?.is_truthy() {
                        pass = false;
                        break;
                    }
                }
                if pass {
                    kept.push(tuple);
                }
            }
            acc = kept;
        }

        if acc.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Materialize value rows only for surviving tuples.
    let mut joined = Vec::with_capacity(acc.len());
    for tuple in acc {
        let mut row = Vec::with_capacity(total_width);
        for (pos, &r) in tuple.iter().enumerate() {
            row.extend_from_slice(&tables[pos].1.rows()[r as usize]);
        }
        joined.push(row);
    }
    Ok(joined)
}

/// Render a plan (or the scan fallback) as EXPLAIN output lines.
pub fn render_plan(
    tables: &[(&str, &Table)],
    plan: Option<&SelectPlan>,
    where_clause: Option<&Expr>,
) -> Vec<String> {
    let names: Vec<&str> = tables.iter().map(|(name, _)| *name).collect();
    let mut lines = vec![format!("select from {}", names.join(", "))];
    match plan {
        Some(plan) => {
            for (k, step) in plan.steps.iter().enumerate() {
                let t = tables[k].1;
                let mut line = format!("  {}: ", names[k]);
                match &step.join {
                    Some(key) => {
                        line.push_str(&format!(
                            "hash join({}.{} = {}.{})",
                            names[key.left_table],
                            tables[key.left_table].1.columns()[key.left_col].name,
                            names[k],
                            t.columns()[key.right_col].name,
                        ));
                    }
                    None if k == 0 => {}
                    None => line.push_str("nested loop, "),
                }
                if step.join.is_some() {
                    line.push_str(", ");
                }
                match &step.access {
                    Access::Scan => line.push_str("scan"),
                    Access::IndexEq { column, literal } => {
                        line.push_str(&format!(
                            "index({} = {})",
                            t.columns()[*column].name,
                            Expr::Literal(literal.clone()),
                        ));
                    }
                }
                if !step.filter.is_empty() {
                    let fs: Vec<String> = step.filter.iter().map(|f| f.to_string()).collect();
                    line.push_str(&format!(" filter({})", fs.join(" and ")));
                }
                lines.push(line);
            }
            for (ready, expr) in &plan.residual {
                lines.push(format!("  residual after {}: {expr}", names[*ready]));
            }
        }
        None => {
            for (k, name) in names.iter().enumerate() {
                if k == 0 {
                    lines.push(format!("  {name}: scan"));
                } else {
                    lines.push(format!("  {name}: nested loop, scan"));
                }
            }
            if let Some(expr) = where_clause {
                lines.push(format!("  where: {expr} (evaluated on the cross product)"));
            }
        }
    }
    lines
}
