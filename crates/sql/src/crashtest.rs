//! The crash-point sweep: kill the engine at *every* disk-write
//! boundary of a seeded workload and prove recovery lands on a
//! committed prefix.
//!
//! Method (per seed):
//!
//! 1. **Golden run.** Execute the workload against a pristine
//!    [`MemVfs`], recording after every commit the state fingerprint,
//!    the commit sequence number, and the VFS mutation-op count at that
//!    instant. The op count is the *durability floor*: any crash at or
//!    beyond it must recover at least that commit.
//! 2. **Sweep.** For `at_op` in `1..=total_ops`: fresh VFS armed with
//!    `CrashPlan { at_op, seed }`, rerun the identical workload until
//!    the injected crash fires, take the surviving disk image, and
//!    reopen.
//! 3. **Check.** The recovered fingerprint must be *some* golden
//!    commit's fingerprint (recovered ≡ committed prefix), the
//!    recovered seq must meet the durability floor for `at_op`, and
//!    opening the survivor twice must agree (replay idempotence).
//!
//! Every violation is recorded as a human-readable string rather than
//! panicking, so one sweep reports all damage at once.

use crate::disk::{CrashPlan, DiskError, MemVfs};
use crate::durable::{DurableDatabase, DurableError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted action against the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Auto-commit statement (or in-txn statement when one is open).
    Stmt(String),
    /// Open an explicit transaction.
    Begin,
    /// Commit the open transaction.
    Commit,
    /// Roll the open transaction back.
    Rollback,
    /// Force a checkpoint.
    Checkpoint,
}

/// A deterministic workload: cluster-flavoured DDL and DML mixing
/// auto-commits, explicit transactions, rollbacks, and checkpoints.
pub fn workload(seed: u64) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut steps = vec![
        Step::Stmt("create table nodes (id int, name text, rack int)".into()),
        Step::Stmt("create table ethers (node int, mac text)".into()),
    ];
    let mut next_id = 0i64;
    let txns = 22 + (seed % 7) as usize;
    for t in 0..txns {
        let explicit = rng.gen_range(0u8..4) > 0;
        if explicit {
            steps.push(Step::Begin);
        }
        for _ in 0..rng.gen_range(1usize..4) {
            let stmt = match rng.gen_range(0u8..5) {
                0..=2 => {
                    next_id += 1;
                    format!(
                        "insert into nodes values ({next_id}, 'compute-{}-{}', {})",
                        t,
                        next_id,
                        rng.gen_range(0i64..8)
                    )
                }
                3 => {
                    next_id += 1;
                    format!(
                        "insert into ethers values ({next_id}, 'aa:bb:00:00:{:02}:{:02}')",
                        t % 100,
                        next_id % 100
                    )
                }
                _ => format!(
                    "update nodes set rack = {} where id = {}",
                    rng.gen_range(0i64..8),
                    rng.gen_range(1i64..(next_id + 1).max(2))
                ),
            };
            steps.push(Step::Stmt(stmt));
        }
        if explicit {
            // Rollbacks included on purpose: a crash *during* a rollback
            // truncation must still recover to a committed prefix.
            if rng.gen_range(0u8..5) == 0 {
                steps.push(Step::Rollback);
            } else {
                steps.push(Step::Commit);
            }
        }
        if rng.gen_range(0u8..8) == 0 {
            steps.push(Step::Checkpoint);
        }
    }
    steps
}

/// Drive `db` through `steps`. Stops early (Ok) on the injected crash;
/// any other error is a harness bug and propagates.
fn run_steps(
    db: &mut DurableDatabase,
    steps: &[Step],
    mut after_commit: impl FnMut(&DurableDatabase),
) -> Result<bool, DurableError> {
    for step in steps {
        let res = match step {
            Step::Stmt(sql) => db.execute(sql).map(|_| ()),
            Step::Begin => db.begin(),
            Step::Commit => db.commit(),
            Step::Rollback => db.rollback(),
            Step::Checkpoint => db.checkpoint(),
        };
        match res {
            Ok(()) => {
                if !db.in_txn() {
                    after_commit(db);
                }
            }
            Err(DurableError::Disk(DiskError::Crashed)) => return Ok(true),
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

/// A commit observed during the golden run.
#[derive(Debug, Clone, Copy)]
struct GoldenCommit {
    seq: u64,
    fingerprint: u64,
    /// VFS mutation ops completed when this commit's fsync returned.
    ops_after: u64,
}

/// Aggregate result of a sweep, suitable for both test assertions and
/// the benchmark report.
#[derive(Debug, Clone, Default)]
pub struct CrashSweepReport {
    /// Seeds swept.
    pub seeds: u64,
    /// Individual crash points exercised (one per mutation op per seed).
    pub crash_points: u64,
    /// Recovery-invariant violations, empty on a correct engine.
    pub violations: Vec<String>,
    /// Commits replayed from WAL across all recoveries.
    pub recovered_commits: u64,
    /// Torn-write tail anomalies classified across all recoveries.
    pub torn_writes: u64,
    /// Checksum-mismatch tail anomalies across all recoveries.
    pub checksum_mismatches: u64,
    /// Partial-commit tail anomalies across all recoveries.
    pub partial_commits: u64,
    /// Recoveries that started from a checkpoint snapshot.
    pub recoveries_from_snapshot: u64,
}

impl CrashSweepReport {
    fn absorb(&mut self, other: CrashSweepReport) {
        self.seeds += other.seeds;
        self.crash_points += other.crash_points;
        self.violations.extend(other.violations);
        self.recovered_commits += other.recovered_commits;
        self.torn_writes += other.torn_writes;
        self.checksum_mismatches += other.checksum_mismatches;
        self.partial_commits += other.partial_commits;
        self.recoveries_from_snapshot += other.recoveries_from_snapshot;
    }
}

/// Sweep every crash point of one seed's workload.
pub fn sweep_seed(seed: u64) -> CrashSweepReport {
    let steps = workload(seed);
    let mut report = CrashSweepReport { seeds: 1, ..Default::default() };

    // Golden run: no crash plan, record the committed timeline.
    let vfs = MemVfs::new();
    let mut golden: Vec<GoldenCommit> = Vec::new();
    {
        let mut db = DurableDatabase::open(&vfs).expect("golden open");
        let crashed = run_steps(&mut db, &steps, |db| {
            golden.push(GoldenCommit {
                seq: db.seq(),
                fingerprint: db.state_fingerprint(),
                ops_after: vfs.ops(),
            });
        })
        .expect("golden run");
        assert!(!crashed, "golden run must not crash");
    }
    let total_ops = vfs.ops();
    let empty_fp = DurableDatabase::open(&MemVfs::new()).expect("fresh").state_fingerprint();
    let committed: std::collections::HashSet<u64> =
        golden.iter().map(|c| c.fingerprint).chain([empty_fp]).collect();

    for at_op in 1..=total_ops {
        report.crash_points += 1;
        let vfs = MemVfs::new();
        vfs.arm(CrashPlan { at_op, seed: seed.wrapping_mul(0x9E37_79B9) ^ at_op });
        let crashed = {
            let mut db = match DurableDatabase::open(&vfs) {
                Ok(db) => db,
                Err(DurableError::Disk(DiskError::Crashed)) => {
                    // Crash during the very first (empty) open: the
                    // survivor must still open to the empty state.
                    check_survivor(&vfs, seed, at_op, &committed, &golden, &mut report);
                    continue;
                }
                Err(e) => {
                    report.violations.push(format!(
                        "seed {seed} at_op {at_op}: initial open failed non-crash: {e}"
                    ));
                    continue;
                }
            };
            match run_steps(&mut db, &steps, |_| {}) {
                Ok(c) => c,
                Err(e) => {
                    report
                        .violations
                        .push(format!("seed {seed} at_op {at_op}: workload failed non-crash: {e}"));
                    continue;
                }
            }
        };
        if !crashed {
            report.violations.push(format!(
                "seed {seed} at_op {at_op}: plan never fired (total_ops {total_ops})"
            ));
            continue;
        }
        check_survivor(&vfs, seed, at_op, &committed, &golden, &mut report);
    }
    report
}

/// Open the crashed disk image and enforce the three recovery
/// invariants (committed prefix, durability floor, idempotence).
fn check_survivor(
    vfs: &MemVfs,
    seed: u64,
    at_op: u64,
    committed: &std::collections::HashSet<u64>,
    golden: &[GoldenCommit],
    report: &mut CrashSweepReport,
) {
    let survivor = vfs.survivor();
    let db = match DurableDatabase::open(&survivor) {
        Ok(db) => db,
        Err(e) => {
            report.violations.push(format!("seed {seed} at_op {at_op}: recovery failed: {e}"));
            return;
        }
    };
    let fp = db.state_fingerprint();
    if !committed.contains(&fp) {
        report.violations.push(format!(
            "seed {seed} at_op {at_op}: recovered state (seq {}) is not a committed prefix",
            db.seq()
        ));
    }
    // Durability floor: every commit whose fsync completed strictly
    // before the crash op must survive.
    let floor = golden.iter().filter(|c| c.ops_after < at_op).map(|c| c.seq).max().unwrap_or(0);
    if db.seq() < floor {
        report.violations.push(format!(
            "seed {seed} at_op {at_op}: recovered seq {} below durability floor {floor}",
            db.seq()
        ));
    }
    let rec = db.recovery_report();
    report.recovered_commits += rec.commits_replayed;
    let (torn, cksum, partial) = rec.anomaly_counts();
    report.torn_writes += torn;
    report.checksum_mismatches += cksum;
    report.partial_commits += partial;
    if rec.checkpoint_seq > 0 {
        report.recoveries_from_snapshot += 1;
    }
    // Idempotence: the first open repaired the tail; a second open of
    // the same (now-clean) image must land on the identical state.
    match DurableDatabase::open(&survivor) {
        Ok(db2) => {
            if db2.state_fingerprint() != fp {
                report.violations.push(format!(
                    "seed {seed} at_op {at_op}: second recovery diverged from first"
                ));
            }
            if !db2.recovery_report().anomalies.is_empty() {
                report.violations.push(format!(
                    "seed {seed} at_op {at_op}: anomalies persisted past the repair truncation"
                ));
            }
        }
        Err(e) => {
            report
                .violations
                .push(format!("seed {seed} at_op {at_op}: second recovery failed: {e}"));
        }
    }
}

/// Sweep a batch of seeds. `0..n` with a base offset keeps pinned suites
/// and the benchmark on disjoint but reproducible seed ranges.
pub fn sweep(base_seed: u64, seeds: u64) -> CrashSweepReport {
    let mut total = CrashSweepReport::default();
    for s in 0..seeds {
        total.absorb(sweep_seed(base_seed + s));
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic() {
        assert_eq!(workload(7), workload(7));
        assert_ne!(workload(7), workload(8));
    }

    #[test]
    fn workload_exercises_every_step_kind() {
        let steps: Vec<Step> = (0..4).flat_map(workload).collect();
        assert!(steps.iter().any(|s| matches!(s, Step::Begin)));
        assert!(steps.iter().any(|s| matches!(s, Step::Commit)));
        assert!(steps.iter().any(|s| matches!(s, Step::Rollback)));
        assert!(steps.iter().any(|s| matches!(s, Step::Checkpoint)));
    }

    #[test]
    fn single_seed_sweep_is_clean() {
        let report = sweep_seed(1);
        assert!(report.crash_points > 50, "workload too small: {report:?}");
        assert!(report.violations.is_empty(), "violations: {:#?}", report.violations);
        assert!(report.recovered_commits > 0);
    }
}
