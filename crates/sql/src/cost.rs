//! The cost model: abstract prices for the executor's physical
//! operators, in arbitrary "work units" calibrated so one sequentially
//! enumerated row costs 1.0.
//!
//! The planner (`plan.rs`) uses these to compare *relative* plan costs —
//! scan vs. index probe for access, hash vs. sort-merge for joins, and
//! alternative join orders. Absolute accuracy does not matter; ordering
//! accuracy does, and the crossover sweep in `crates/bench`
//! (`reproduce sqlbench`) checks the model's choices against measured
//! wall-clock at 10k/100k/1M rows.
//!
//! Three modelling decisions worth calling out:
//!
//! * **Cold builds are amortized.** A hash index that is not yet built
//!   costs `rows · rate / BUILD_AMORTIZE`: indexes are cached on the
//!   table and plans are cached per statement, so one build typically
//!   serves many executions. Charging builds in full would make a large
//!   text index unreachable (the cold plan scans, gets cached, and the
//!   index never warms); warm structures cost nothing extra.
//! * **Text hash entries cost ~4× int entries.** Building a
//!   [`crate::index::HashIndex`] over text clones each string and
//!   inserts integer-shaped text under two buckets; ints are a single
//!   cheap insert.
//! * **Merge pre-filters, hash doesn't.** The hash-join side probes the
//!   table's *unfiltered* per-table index, so every probe drags in raw
//!   candidates that pushed filters then discard one by one. Sort-merge
//!   scans the right side once, applies the pushed filters, and sorts
//!   only survivors (borrowed keys, no clones). That is why merge wins
//!   low-NDV join keys with selective right-side filters, while hash
//!   wins everything warm or high-NDV.

use crate::table::ColumnType;

/// Enumerate one row sequentially (the scan baseline).
pub const SCAN_ROW: f64 = 1.0;
/// Evaluate one pushed-down filter conjunct against one row.
pub const FILTER_EVAL: f64 = 1.0;
/// One hash-index probe (hash + bucket lookup).
pub const PROBE: f64 = 3.0;
/// Fetch one index candidate and re-verify it with `sql_cmp`.
pub const CANDIDATE: f64 = 1.5;
/// Extend/allocate one intermediate tuple.
pub const TUPLE: f64 = 0.8;
/// Insert one int cell into a cold hash index.
pub const HASH_BUILD_INT: f64 = 1.5;
/// Insert one text cell into a cold hash index (clone + up to two
/// bucket inserts).
pub const HASH_BUILD_TEXT: f64 = 6.0;
/// Per element, per log2 level, of sorting borrowed keys.
pub const SORT_PER_ELEM_LEVEL: f64 = 0.5;
/// Advance one merge cursor / emit one group pair.
pub const MERGE_STEP: f64 = 1.0;
/// Fixed sort-merge setup overhead — keeps tiny joins on the hash path.
pub const MERGE_BASE: f64 = 64.0;
/// Expected executions sharing one cold build (indexes are cached on
/// the table, plans in the statement cache).
pub const BUILD_AMORTIZE: f64 = 32.0;

/// `n·log2(n)` with a floor so 0- and 1-element sorts cost ~0.
pub fn sort_cost(n: f64) -> f64 {
    if n <= 1.0 {
        return 0.0;
    }
    n * n.log2() * SORT_PER_ELEM_LEVEL
}

/// Amortized cost of building a hash index over `rows` cells of
/// declared type `ty`, or 0 when it is already built.
pub fn index_build_cost(rows: f64, ty: ColumnType, warm: bool) -> f64 {
    if warm {
        return 0.0;
    }
    rows * match ty {
        ColumnType::Int => HASH_BUILD_INT,
        ColumnType::Text => HASH_BUILD_TEXT,
    } / BUILD_AMORTIZE
}

/// Cost of scanning a table: enumerate every row, evaluate every pushed
/// filter against it.
pub fn scan_access_cost(rows: f64, filters: usize) -> f64 {
    rows * (SCAN_ROW + filters as f64 * FILTER_EVAL)
}

/// Cost of an index point access: one probe, then verify each candidate
/// and run the pushed filters over it (the probing conjunct itself stays
/// in the filters — candidates are supersets).
pub fn index_access_cost(candidates: f64, filters: usize, build: f64) -> f64 {
    build + PROBE + candidates * (CANDIDATE + filters as f64 * FILTER_EVAL)
}

/// Cost of hash-joining `left_tuples` accumulated tuples against a
/// table, probing its (possibly cold) index: one probe per tuple, then
/// verification + filters per raw candidate.
pub fn hash_join_cost(left_tuples: f64, candidates_total: f64, filters: usize, build: f64) -> f64 {
    build + left_tuples * PROBE + candidates_total * (CANDIDATE + filters as f64 * FILTER_EVAL)
}

/// Cost of sort-merge joining `left_tuples` against a table of
/// `right_rows` rows (of which `right_kept` pass the pushed filters):
/// scan + filter the right side, sort both keyed sides, merge, verify
/// each group pair.
pub fn merge_join_cost(
    left_tuples: f64,
    right_rows: f64,
    right_kept: f64,
    filters: usize,
    pairs: f64,
) -> f64 {
    MERGE_BASE
        + scan_access_cost(right_rows, filters)
        + sort_cost(right_kept)
        + sort_cost(left_tuples)
        + (left_tuples + right_kept) * MERGE_STEP
        + pairs * CANDIDATE
}

/// Cost of producing `n` output tuples from any operator.
pub fn emit_cost(n: f64) -> f64 {
    n * TUPLE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_beats_index_for_broad_predicates() {
        // 90% of 100k rows match: scanning is cheaper than probing and
        // verifying 90k candidates.
        let scan = scan_access_cost(100_000.0, 1);
        let index = index_access_cost(90_000.0, 1, 0.0);
        assert!(scan < index, "scan {scan} vs index {index}");
        // 0.1% match: the index wins, amortized cold build included.
        let build = index_build_cost(100_000.0, ColumnType::Text, false);
        let index = index_access_cost(100.0, 1, build);
        assert!(index < scan, "selective point lookup should probe: {index} vs {scan}");
        let warm = index_access_cost(100.0, 1, 0.0);
        assert!(warm < index, "a cold build is still not free");
        // The flip point in matched rows scales with table size — the
        // crossover the bench sweep measures at 10k/100k/1M.
        for n in [10_000.0, 100_000.0, 1_000_000.0] {
            let scan = scan_access_cost(n, 1);
            let build = index_build_cost(n, ColumnType::Text, false);
            assert!(index_access_cost(0.5 * n, 1, build) < scan, "50% match probes at n={n}");
            assert!(index_access_cost(0.9 * n, 1, build) > scan, "90% match scans at n={n}");
        }
    }

    #[test]
    fn merge_wins_when_prefiltering_beats_probe_explosion() {
        // Right table 100k rows, low-NDV text key (1k distinct values),
        // pushed filter keeps ~100 rows. Hash probes the unfiltered
        // index: 1k left tuples × 100 raw candidates each. Merge scans +
        // filters once and sorts only the 100 survivors.
        let l = 1_000.0;
        let n = 100_000.0;
        let ndv = 1_000.0;
        let raw_candidates = l * n / ndv;
        let hash =
            hash_join_cost(l, raw_candidates, 1, index_build_cost(n, ColumnType::Text, false));
        let kept = 100.0;
        let merge = merge_join_cost(l, n, kept, 1, l * kept / ndv);
        assert!(merge < hash, "filtered low-NDV join: merge {merge} vs hash {hash}");
        // High-NDV warm join: hash wins at any size.
        let hash_warm = hash_join_cost(n, n, 0, 0.0);
        let merge_big = merge_join_cost(n, n, n, 0, n);
        assert!(hash_warm < merge_big);
        // Tiny joins stay on hash (MERGE_BASE).
        let small = 8.0;
        let hash_small =
            hash_join_cost(small, small, 0, index_build_cost(small, ColumnType::Text, false));
        let merge_small = merge_join_cost(small, small, small, 0, small);
        assert!(hash_small < merge_small);
    }
}
