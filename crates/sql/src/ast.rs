//! Abstract syntax for the supported SQL subset.

use crate::table::ColumnType;
use crate::value::Value;

/// A (possibly qualified) column reference: `name` or `table.name`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Qualifier, lower-cased, if written.
    pub table: Option<String>,
    /// Column name, lower-cased.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(column: &str) -> Self {
        ColumnRef { table: None, column: column.to_ascii_lowercase() }
    }

    /// Qualified reference.
    pub fn qualified(table: &str, column: &str) -> Self {
        ColumnRef { table: Some(table.to_ascii_lowercase()), column: column.to_ascii_lowercase() }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => f.write_str(&self.column),
        }
    }
}

/// Binary comparison and logical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
}

/// Expression tree for WHERE clauses and SET values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Literal value.
    Literal(Value),
    /// Column reference.
    Column(ColumnRef),
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
    /// `expr LIKE 'pattern'` (negated when `negated`).
    Like {
        /// Matched expression.
        expr: Box<Expr>,
        /// `%`/`_` pattern.
        pattern: String,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr IN (v1, v2, ...)` (negated when `negated`).
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Value>,
        /// `NOT IN` when true.
        negated: bool,
    },
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            BinOp::Eq => "=",
            BinOp::NotEq => "!=",
            BinOp::Lt => "<",
            BinOp::LtEq => "<=",
            BinOp::Gt => ">",
            BinOp::GtEq => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        })
    }
}

/// Render a literal the way it would be written in SQL (single quotes
/// doubled inside text). Used by `Display for Expr`, i.e. EXPLAIN output.
fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(n) => n.to_string(),
        Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

impl std::fmt::Display for Expr {
    /// SQL-ish rendering for EXPLAIN output. Binary/NOT nodes are always
    /// parenthesized, so precedence never needs reconstructing.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(v) => f.write_str(&sql_literal(v)),
            Expr::Column(c) => write!(f, "{c}"),
            Expr::Binary { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Expr::Not(inner) => write!(f, "(not {inner})"),
            Expr::Like { expr, pattern, negated } => {
                let not = if *negated { " not" } else { "" };
                write!(f, "({expr}{not} like '{}')", pattern.replace('\'', "''"))
            }
            Expr::IsNull { expr, negated } => {
                let not = if *negated { " not" } else { "" };
                write!(f, "({expr} is{not} null)")
            }
            Expr::InList { expr, list, negated } => {
                let not = if *negated { " not" } else { "" };
                let items: Vec<String> = list.iter().map(sql_literal).collect();
                write!(f, "({expr}{not} in ({}))", items.join(", "))
            }
        }
    }
}

/// One item in a SELECT projection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SelectItem {
    /// `*` — every column of every FROM table, in declaration order.
    Wildcard,
    /// A column reference.
    Column(ColumnRef),
    /// `COUNT(*)`.
    CountStar,
    /// `MIN(col)`.
    Min(ColumnRef),
    /// `MAX(col)`.
    Max(ColumnRef),
    /// `SUM(col)`.
    Sum(ColumnRef),
}

impl SelectItem {
    /// Whether this item is an aggregate function.
    pub fn is_aggregate(&self) -> bool {
        matches!(
            self,
            SelectItem::CountStar | SelectItem::Min(_) | SelectItem::Max(_) | SelectItem::Sum(_)
        )
    }
}

/// `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// Column to sort by.
    pub column: ColumnRef,
    /// Descending when true.
    pub desc: bool,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// `CREATE TABLE name (col type, ...)`.
    CreateTable {
        /// Table name.
        name: String,
        /// Column declarations.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name [(cols)] VALUES (...), (...)`.
    Insert {
        /// Target table.
        table: String,
        /// Named column subset, if written.
        columns: Option<Vec<String>>,
        /// One literal tuple per row.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT items FROM tables [WHERE expr] [GROUP BY cols]
    /// [ORDER BY keys] [LIMIT n]`.
    Select {
        /// Projection items.
        items: Vec<SelectItem>,
        /// FROM tables (cross join).
        from: Vec<String>,
        /// Optional filter.
        where_clause: Option<Expr>,
        /// Grouping columns.
        group_by: Vec<ColumnRef>,
        /// Sort keys.
        order_by: Vec<OrderKey>,
        /// Row cap.
        limit: Option<usize>,
    },
    /// `UPDATE table SET col = expr, ... [WHERE expr]`.
    Update {
        /// Target table.
        table: String,
        /// Column assignments.
        sets: Vec<(String, Expr)>,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DELETE FROM table [WHERE expr]`.
    Delete {
        /// Target table.
        table: String,
        /// Optional filter.
        where_clause: Option<Expr>,
    },
    /// `DROP TABLE name`.
    DropTable {
        /// Table name.
        name: String,
    },
    /// `EXPLAIN <statement>` — render the chosen query plan instead of
    /// executing. Only SELECT can be explained; the planner does not
    /// apply to writes.
    Explain(Box<Statement>),
}
