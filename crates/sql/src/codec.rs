//! Byte-level encoding shared by the WAL, the pager, and the B-tree.
//!
//! Everything on disk is little-endian and length-prefixed; decoding is
//! bounds-checked and returns an error instead of panicking, because the
//! bytes being decoded may have survived a crash.

use crate::value::Value;

/// A decode failure: the bytes do not parse as the expected structure.
/// The recovery layer maps this to `RecoveryError::ChecksumMismatch` /
/// `Corrupt` depending on where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CodecError(pub String);

pub(crate) type CodecResult<T> = std::result::Result<T, CodecError>;

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Cell values: tag byte, then the payload. NULL has no payload.
pub(crate) fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(n) => {
            put_u8(out, 1);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::Text(s) => {
            put_u8(out, 2);
            put_str(out, s);
        }
    }
}

pub(crate) fn put_row(out: &mut Vec<u8>, row: &[Value]) {
    put_u32(out, row.len() as u32);
    for v in row {
        put_value(out, v);
    }
}

/// Bounds-checked reader over a byte slice.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CodecResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(CodecError(format!(
                "need {n} bytes at offset {} but only {} remain",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> CodecResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> CodecResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn bytes(&mut self) -> CodecResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    pub(crate) fn str(&mut self) -> CodecResult<String> {
        let bytes = self.bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError("invalid utf-8".into()))
    }

    pub(crate) fn value(&mut self) -> CodecResult<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.i64()?)),
            2 => Ok(Value::Text(self.str()?)),
            tag => Err(CodecError(format!("unknown value tag {tag}"))),
        }
    }

    pub(crate) fn row(&mut self) -> CodecResult<Vec<Value>> {
        let n = self.u32()? as usize;
        // Guard against a corrupt length claiming billions of cells.
        if n > self.remaining() {
            return Err(CodecError(format!(
                "row claims {n} cells, only {} bytes",
                self.remaining()
            )));
        }
        (0..n).map(|_| self.value()).collect()
    }
}

/// Order-preserving key encoding for B-tree secondary indexes:
/// NULL < every Int < every Text, Ints in numeric order.
pub(crate) fn put_index_key(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => put_u8(out, 0),
        Value::Int(n) => {
            put_u8(out, 1);
            // Sign-flip makes the big-endian byte order the numeric order.
            out.extend_from_slice(&((*n as u64) ^ (1 << 63)).to_be_bytes());
        }
        Value::Text(s) => {
            put_u8(out, 2);
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// FNV-1a 64-bit — the canonical-state fingerprint the crash harness
/// compares across recoveries. Not cryptographic; collision resistance at
/// test scale is all that is needed.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let values =
            [Value::Null, Value::Int(-42), Value::Int(i64::MAX), Value::Text("née".into())];
        let mut buf = Vec::new();
        put_row(&mut buf, &values);
        let mut r = Reader::new(&buf);
        assert_eq!(r.row().unwrap(), values);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_input_errors_instead_of_panicking() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail cleanly");
        }
    }

    #[test]
    fn index_key_orders_ints_numerically() {
        let enc = |n: i64| {
            let mut b = Vec::new();
            put_index_key(&mut b, &Value::Int(n));
            b
        };
        assert!(enc(-5) < enc(0));
        assert!(enc(0) < enc(7));
        assert!(enc(i64::MIN) < enc(i64::MAX));
        let mut null = Vec::new();
        put_index_key(&mut null, &Value::Null);
        let mut text = Vec::new();
        put_index_key(&mut text, &Value::Text("a".into()));
        assert!(null < enc(i64::MIN));
        assert!(enc(i64::MAX) < text);
    }
}
