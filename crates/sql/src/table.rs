//! Table storage: a schema plus rows.

use crate::value::Value;
use crate::{Result, SqlError};

/// Declared column types. Storage is dynamically typed (every cell is a
/// [`Value`]), but INSERT/UPDATE coerce or reject against the declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// String.
    Text,
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// An in-memory table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table; names are lower-cased for case-insensitive
    /// lookup (MySQL on Linux is case-sensitive for table names but the
    /// Rocks tooling always writes lowercase).
    pub fn new(name: impl Into<String>, columns: Vec<(String, ColumnType)>) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| Column { name: name.to_ascii_lowercase(), ty })
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column declarations in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable rows (used by UPDATE/DELETE execution).
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        &mut self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate and coerce a value against a column's declared type.
    /// Ints are accepted into TEXT columns (rendered), and integer-shaped
    /// strings into INT columns — matching MySQL's forgiving coercion that
    /// the Rocks scripts rely on.
    pub fn coerce(column: &Column, value: Value) -> Result<Value> {
        match (column.ty, value) {
            (_, Value::Null) => Ok(Value::Null),
            (ColumnType::Int, Value::Int(n)) => Ok(Value::Int(n)),
            (ColumnType::Text, Value::Text(s)) => Ok(Value::Text(s)),
            (ColumnType::Text, Value::Int(n)) => Ok(Value::Text(n.to_string())),
            (ColumnType::Int, Value::Text(s)) => match s.trim().parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => Err(SqlError::TypeMismatch(format!(
                    "cannot store {s:?} in INT column {}",
                    column.name
                ))),
            },
        }
    }

    /// Append a full-width row, coercing each value.
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.columns.len() {
            return Err(SqlError::TypeMismatch(format!(
                "table {} has {} columns but {} values were supplied",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        let row = self
            .columns
            .iter()
            .zip(values)
            .map(|(col, v)| Self::coerce(col, v))
            .collect::<Result<Vec<Value>>>()?;
        self.rows.push(row);
        Ok(())
    }

    /// Append a row given a subset of named columns; unnamed columns get
    /// NULL.
    pub fn insert_named(&mut self, names: &[String], values: Vec<Value>) -> Result<()> {
        if names.len() != values.len() {
            return Err(SqlError::TypeMismatch(format!(
                "{} columns named but {} values supplied",
                names.len(),
                values.len()
            )));
        }
        let mut row = vec![Value::Null; self.columns.len()];
        for (name, value) in names.iter().zip(values) {
            let idx = self
                .column_index(name)
                .ok_or_else(|| SqlError::NoSuchColumn(format!("{}.{name}", self.name)))?;
            row[idx] = Self::coerce(&self.columns[idx], value)?;
        }
        self.rows.push(row);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new("Nodes", vec![("ID".into(), ColumnType::Int), ("Name".into(), ColumnType::Text)])
    }

    #[test]
    fn names_are_lowercased() {
        let table = t();
        assert_eq!(table.name(), "nodes");
        assert_eq!(table.columns()[0].name, "id");
        assert_eq!(table.column_index("ID"), Some(0));
        assert_eq!(table.column_index("nAmE"), Some(1));
        assert_eq!(table.column_index("missing"), None);
    }

    #[test]
    fn insert_row_coerces() {
        let mut table = t();
        table.insert_row(vec![Value::Text(" 7 ".into()), Value::Int(3)]).unwrap();
        assert_eq!(table.rows()[0], vec![Value::Int(7), Value::Text("3".into())]);
    }

    #[test]
    fn insert_row_rejects_bad_int() {
        let mut table = t();
        let err = table.insert_row(vec![Value::Text("abc".into()), Value::Null]).unwrap_err();
        assert!(matches!(err, SqlError::TypeMismatch(_)));
    }

    #[test]
    fn insert_row_arity_checked() {
        let mut table = t();
        assert!(table.insert_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_named_fills_nulls() {
        let mut table = t();
        table.insert_named(&["name".into()], vec![Value::Text("compute-0-0".into())]).unwrap();
        assert_eq!(table.rows()[0], vec![Value::Null, Value::Text("compute-0-0".into())]);
    }

    #[test]
    fn insert_named_unknown_column() {
        let mut table = t();
        let err = table.insert_named(&["bogus".into()], vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::NoSuchColumn(_)));
    }
}
