//! Table storage: a schema plus rows, with transparent hash indexes.
//!
//! Indexes are built lazily the first time a column is probed for
//! equality (see [`Table::eq_index`]), kept current incrementally as rows
//! are appended, and dropped wholesale whenever rows are mutated in place
//! (UPDATE/DELETE go through [`Table::rows_mut`]) — the next probe
//! rebuilds. They are pure acceleration state: `Clone` shares them
//! copy-on-write via `Arc`, and `PartialEq`/`Debug` ignore them.

use crate::index::HashIndex;
use crate::stats::TableStats;
use crate::value::Value;
use crate::{Result, SqlError};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Declared column types. Storage is dynamically typed (every cell is a
/// [`Value`]), but INSERT/UPDATE coerce or reject against the declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// String.
    Text,
}

/// A column declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Lower-cased name.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
}

/// An in-memory table.
pub struct Table {
    name: String,
    columns: Vec<Column>,
    rows: Vec<Vec<Value>>,
    /// Lazily built per-column hash indexes. Interior mutability lets the
    /// read-only query path build an index on first use; `RwLock` (not
    /// `RefCell`) keeps the table `Sync` for the concurrent Kickstart
    /// generation workers. `Arc` makes probes lock-free after a cheap
    /// handle clone and makes `Table::clone` copy-on-write.
    indexes: RwLock<HashMap<usize, Arc<HashIndex>>>,
    /// Lazily built optimizer statistics — same acceleration-state
    /// pattern as `indexes`: built on first use by the read-only planner
    /// path, folded incrementally on append, dropped wholesale by
    /// in-place mutation, shared copy-on-write across clones.
    stats: RwLock<Option<Arc<TableStats>>>,
    /// Bumped on every row change (append *and* in-place mutation); the
    /// generation recorded inside [`TableStats`] must match for the
    /// cached statistics to be trusted.
    stats_gen: u64,
}

impl Clone for Table {
    fn clone(&self) -> Self {
        Table {
            name: self.name.clone(),
            columns: self.columns.clone(),
            rows: self.rows.clone(),
            // Share built indexes; a later insert_row on either copy
            // updates via Arc::make_mut (copy-on-write).
            indexes: RwLock::new(self.indexes.read().expect("index lock").clone()),
            stats: RwLock::new(self.stats.read().expect("stats lock").clone()),
            stats_gen: self.stats_gen,
        }
    }
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        // Indexes are derived state — equality is schema + rows.
        self.name == other.name && self.columns == other.columns && self.rows == other.rows
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.name)
            .field("columns", &self.columns)
            .field("rows", &self.rows)
            .field("indexed_columns", &self.indexes.read().expect("index lock").len())
            .finish()
    }
}

impl Table {
    /// Create an empty table; names are lower-cased for case-insensitive
    /// lookup (MySQL on Linux is case-sensitive for table names but the
    /// Rocks tooling always writes lowercase).
    pub fn new(name: impl Into<String>, columns: Vec<(String, ColumnType)>) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            columns: columns
                .into_iter()
                .map(|(name, ty)| Column { name: name.to_ascii_lowercase(), ty })
                .collect(),
            rows: Vec::new(),
            indexes: RwLock::new(HashMap::new()),
            stats: RwLock::new(None),
            stats_gen: 0,
        }
    }

    /// Table name (lower-cased).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column declarations in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Index of a column by case-insensitive name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// All rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Mutable rows (used by UPDATE/DELETE execution). In-place mutation
    /// invalidates every index and the statistics; the next probe or
    /// plan rebuilds lazily.
    pub(crate) fn rows_mut(&mut self) -> &mut Vec<Vec<Value>> {
        self.indexes.get_mut().expect("index lock").clear();
        *self.stats.get_mut().expect("stats lock") = None;
        self.stats_gen += 1;
        &mut self.rows
    }

    /// Hash index for `column`, building it on first use. Returns a cheap
    /// `Arc` handle so callers probe without holding the table's lock.
    /// Panics if `column` is out of range (callers resolve columns first).
    pub fn eq_index(&self, column: usize) -> Arc<HashIndex> {
        assert!(column < self.columns.len(), "eq_index: column out of range");
        if let Some(ix) = self.indexes.read().expect("index lock").get(&column) {
            return Arc::clone(ix);
        }
        let built = Arc::new(HashIndex::build(self.rows.iter().map(|r| &r[column])));
        let mut map = self.indexes.write().expect("index lock");
        // Two threads may race to build the same index from the same
        // rows; both products are identical, keep whichever landed first.
        Arc::clone(map.entry(column).or_insert(built))
    }

    /// Number of columns currently carrying a built index (introspection
    /// for tests and EXPLAIN).
    pub fn indexed_columns(&self) -> usize {
        self.indexes.read().expect("index lock").len()
    }

    /// Whether `column` already carries a built hash index. The cost
    /// model charges a full build for cold indexes and nothing for warm
    /// ones.
    pub fn has_eq_index(&self, column: usize) -> bool {
        self.indexes.read().expect("index lock").contains_key(&column)
    }

    /// Optimizer statistics for this table, building them on first use.
    /// Returns a cheap `Arc` handle.
    pub fn stats(&self) -> Arc<TableStats> {
        self.stats_with_info().0
    }

    /// [`stats`](Self::stats) plus whether this call performed a (re)build
    /// — the `sql.opt.stats_builds` telemetry signal.
    pub fn stats_with_info(&self) -> (Arc<TableStats>, bool) {
        if let Some(ts) = self.stats.read().expect("stats lock").as_ref() {
            if ts.generation == self.stats_gen && !ts.needs_rebuild() {
                return (Arc::clone(ts), false);
            }
        }
        let built = Arc::new(TableStats::build(&self.rows, self.columns.len(), self.stats_gen));
        // Two threads may race to build from the same rows; both products
        // are identical (the build is deterministic), keep the newest.
        *self.stats.write().expect("stats lock") = Some(Arc::clone(&built));
        (built, true)
    }

    /// Statistics if already built *and* current, without building.
    pub fn stats_if_warm(&self) -> Option<Arc<TableStats>> {
        let guard = self.stats.read().expect("stats lock");
        let ts = guard.as_ref()?;
        (ts.generation == self.stats_gen).then(|| Arc::clone(ts))
    }

    /// The stats-generation counter: bumped on every row change.
    pub fn stats_generation(&self) -> u64 {
        self.stats_gen
    }

    /// Size band for plan-cache hysteresis: `floor(log2(rows)) + 1` (0
    /// for an empty table). Single-row inserts only cross a band at
    /// powers of two, so cached plans survive steady-state trickle
    /// inserts but a table growing 100× always re-plans.
    pub fn stats_band(&self) -> u32 {
        64 - (self.rows.len() as u64).leading_zeros()
    }

    /// Fold a freshly appended row (already in `self.rows`) into every
    /// built index.
    fn index_appended_row(&mut self) {
        let row = self.rows.len() - 1;
        let map = self.indexes.get_mut().expect("index lock");
        for (&column, index) in map.iter_mut() {
            Arc::make_mut(index).add(&self.rows[row][column], row as u32);
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Validate and coerce a value against a column's declared type.
    /// Ints are accepted into TEXT columns (rendered), and integer-shaped
    /// strings into INT columns — matching MySQL's forgiving coercion that
    /// the Rocks scripts rely on.
    pub fn coerce(column: &Column, value: Value) -> Result<Value> {
        match (column.ty, value) {
            (_, Value::Null) => Ok(Value::Null),
            (ColumnType::Int, Value::Int(n)) => Ok(Value::Int(n)),
            (ColumnType::Text, Value::Text(s)) => Ok(Value::Text(s)),
            (ColumnType::Text, Value::Int(n)) => Ok(Value::Text(n.to_string())),
            (ColumnType::Int, Value::Text(s)) => match s.trim().parse::<i64>() {
                Ok(n) => Ok(Value::Int(n)),
                Err(_) => Err(SqlError::TypeMismatch(format!(
                    "cannot store {s:?} in INT column {}",
                    column.name
                ))),
            },
        }
    }

    /// Validate and coerce a full-width row without storing it. Staging
    /// separately from appending lets multi-row INSERT check every row
    /// before touching the table, so a failed statement has no effect —
    /// the atomicity the durable engine's statement-level WAL relies on.
    pub(crate) fn stage_row(&self, values: Vec<Value>) -> Result<Vec<Value>> {
        if values.len() != self.columns.len() {
            return Err(SqlError::TypeMismatch(format!(
                "table {} has {} columns but {} values were supplied",
                self.name,
                self.columns.len(),
                values.len()
            )));
        }
        self.columns.iter().zip(values).map(|(col, v)| Self::coerce(col, v)).collect()
    }

    /// Validate and coerce a named-subset row without storing it; unnamed
    /// columns get NULL.
    pub(crate) fn stage_named(&self, names: &[String], values: Vec<Value>) -> Result<Vec<Value>> {
        if names.len() != values.len() {
            return Err(SqlError::TypeMismatch(format!(
                "{} columns named but {} values supplied",
                names.len(),
                values.len()
            )));
        }
        let mut row = vec![Value::Null; self.columns.len()];
        for (name, value) in names.iter().zip(values) {
            let idx = self
                .column_index(name)
                .ok_or_else(|| SqlError::NoSuchColumn(format!("{}.{name}", self.name)))?;
            row[idx] = Self::coerce(&self.columns[idx], value)?;
        }
        Ok(row)
    }

    /// Append a row previously coerced by [`stage_row`](Self::stage_row) /
    /// [`stage_named`](Self::stage_named). Infallible by construction.
    pub(crate) fn append_staged(&mut self, row: Vec<Value>) {
        self.rows.push(row);
        self.stats_gen += 1;
        self.index_appended_row();
        self.fold_appended_into_stats();
    }

    /// Fold the just-appended row into cached statistics when they
    /// describe exactly the previous generation; otherwise drop them (a
    /// gap means they were already stale).
    fn fold_appended_into_stats(&mut self) {
        let row = self.rows.last().expect("just pushed");
        let slot = self.stats.get_mut().expect("stats lock");
        if let Some(ts) = slot {
            if ts.generation + 1 == self.stats_gen {
                Arc::make_mut(ts).fold_appended(row, self.stats_gen);
            } else {
                *slot = None;
            }
        }
    }

    /// Append a full-width row, coercing each value.
    pub fn insert_row(&mut self, values: Vec<Value>) -> Result<()> {
        let row = self.stage_row(values)?;
        self.append_staged(row);
        Ok(())
    }

    /// Append a row given a subset of named columns; unnamed columns get
    /// NULL.
    pub fn insert_named(&mut self, names: &[String], values: Vec<Value>) -> Result<()> {
        let row = self.stage_named(names, values)?;
        self.append_staged(row);
        Ok(())
    }

    /// Column positions currently carrying a built hash index, sorted.
    /// The durable engine checkpoints a secondary B-tree for each so a
    /// recovered process starts with the same columns warmed.
    pub fn indexed_column_ids(&self) -> Vec<usize> {
        let mut ids: Vec<usize> =
            self.indexes.read().expect("index lock").keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::new("Nodes", vec![("ID".into(), ColumnType::Int), ("Name".into(), ColumnType::Text)])
    }

    #[test]
    fn names_are_lowercased() {
        let table = t();
        assert_eq!(table.name(), "nodes");
        assert_eq!(table.columns()[0].name, "id");
        assert_eq!(table.column_index("ID"), Some(0));
        assert_eq!(table.column_index("nAmE"), Some(1));
        assert_eq!(table.column_index("missing"), None);
    }

    #[test]
    fn insert_row_coerces() {
        let mut table = t();
        table.insert_row(vec![Value::Text(" 7 ".into()), Value::Int(3)]).unwrap();
        assert_eq!(table.rows()[0], vec![Value::Int(7), Value::Text("3".into())]);
    }

    #[test]
    fn insert_row_rejects_bad_int() {
        let mut table = t();
        let err = table.insert_row(vec![Value::Text("abc".into()), Value::Null]).unwrap_err();
        assert!(matches!(err, SqlError::TypeMismatch(_)));
    }

    #[test]
    fn insert_row_arity_checked() {
        let mut table = t();
        assert!(table.insert_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn insert_named_fills_nulls() {
        let mut table = t();
        table.insert_named(&["name".into()], vec![Value::Text("compute-0-0".into())]).unwrap();
        assert_eq!(table.rows()[0], vec![Value::Null, Value::Text("compute-0-0".into())]);
    }

    #[test]
    fn insert_named_unknown_column() {
        let mut table = t();
        let err = table.insert_named(&["bogus".into()], vec![Value::Int(1)]).unwrap_err();
        assert!(matches!(err, SqlError::NoSuchColumn(_)));
    }

    fn probe_all(table: &Table, col: usize, v: &Value) -> Vec<u32> {
        let ix = table.eq_index(col);
        let mut scratch = Vec::new();
        ix.probe(v, &mut scratch).to_vec()
    }

    #[test]
    fn index_builds_lazily_and_tracks_inserts() {
        let mut table = t();
        table.insert_row(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        table.insert_row(vec![Value::Int(2), Value::Text("b".into())]).unwrap();
        assert_eq!(table.indexed_columns(), 0);
        assert_eq!(probe_all(&table, 0, &Value::Int(2)), vec![1]);
        assert_eq!(table.indexed_columns(), 1);
        // An append after the index exists must be reflected.
        table.insert_row(vec![Value::Int(2), Value::Text("c".into())]).unwrap();
        assert_eq!(probe_all(&table, 0, &Value::Int(2)), vec![1, 2]);
    }

    #[test]
    fn rows_mut_invalidates_indexes() {
        let mut table = t();
        table.insert_row(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        let _ = table.eq_index(0);
        assert_eq!(table.indexed_columns(), 1);
        table.rows_mut()[0][0] = Value::Int(9);
        assert_eq!(table.indexed_columns(), 0);
        // Rebuild sees the mutated value.
        assert_eq!(probe_all(&table, 0, &Value::Int(9)), vec![0]);
        assert!(probe_all(&table, 0, &Value::Int(1)).is_empty());
    }

    #[test]
    fn clone_shares_then_diverges() {
        let mut table = t();
        table.insert_row(vec![Value::Int(1), Value::Text("a".into())]).unwrap();
        let _ = table.eq_index(0);
        let mut copy = table.clone();
        assert_eq!(copy.indexed_columns(), 1);
        copy.insert_row(vec![Value::Int(1), Value::Text("b".into())]).unwrap();
        // The copy sees both rows; the original is untouched.
        assert_eq!(probe_all(&copy, 0, &Value::Int(1)), vec![0, 1]);
        assert_eq!(probe_all(&table, 0, &Value::Int(1)), vec![0]);
        assert_eq!(table, table.clone(), "equality ignores index state");
    }
}
