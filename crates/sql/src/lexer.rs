//! SQL tokenizer.

use crate::{Result, SqlError};

/// A lexical token. Keywords are recognized case-insensitively at parse
/// time; the lexer only distinguishes shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (bare word).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Single- or double-quoted string literal (quotes removed, doubled
    /// quotes unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `=`
    Eq,
    /// `!=` / `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
}

impl Token {
    /// The identifier inside, if this is a word.
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }
}

/// Tokenize a statement. Comments (`-- ...`) run to end of line.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b',' => {
                out.push(Token::Comma);
                i += 1;
            }
            b'.' => {
                out.push(Token::Dot);
                i += 1;
            }
            b'*' => {
                out.push(Token::Star);
                i += 1;
            }
            b'(' => {
                out.push(Token::LParen);
                i += 1;
            }
            b')' => {
                out.push(Token::RParen);
                i += 1;
            }
            b';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            b'=' => {
                out.push(Token::Eq);
                i += 1;
            }
            b'!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            b'\'' | b'"' => {
                let quote = c;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(&b) if b == quote => {
                            // Doubled quote = escaped quote.
                            if bytes.get(i + 1) == Some(&quote) {
                                s.push(quote as char);
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => {
                            return Err(SqlError::Lex(format!(
                                "unterminated string literal starting with {s:?}"
                            )))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n = text
                    .parse::<i64>()
                    .map_err(|_| SqlError::Lex(format!("integer out of range: {text}")))?;
                out.push(Token::Int(n));
            }
            b'-' if bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit()) => {
                // Negative literal. The grammar has no subtraction, so a
                // '-' directly before digits is always a sign.
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let n = text
                    .parse::<i64>()
                    .map_err(|_| SqlError::Lex(format!("integer out of range: {text}")))?;
                out.push(Token::Int(n));
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                out.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(SqlError::Lex(format!(
                    "unexpected character {:?} at byte {i}",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paper_query() {
        let toks = lex("select nodes.name from nodes,memberships where \
                        nodes.membership = memberships.id")
        .unwrap();
        assert_eq!(toks[0], Token::Word("select".into()));
        assert_eq!(toks[1], Token::Word("nodes".into()));
        assert_eq!(toks[2], Token::Dot);
        assert!(toks.contains(&Token::Comma));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn string_literals_and_escapes() {
        assert_eq!(lex("'abc'").unwrap(), vec![Token::Str("abc".into())]);
        assert_eq!(lex("\"x y\"").unwrap(), vec![Token::Str("x y".into())]);
        assert_eq!(lex("'it''s'").unwrap(), vec![Token::Str("it's".into())]);
        assert!(matches!(lex("'open"), Err(SqlError::Lex(_))));
    }

    #[test]
    fn numbers_including_negative() {
        assert_eq!(lex("42").unwrap(), vec![Token::Int(42)]);
        assert_eq!(lex("-7").unwrap(), vec![Token::Int(-7)]);
        assert_eq!(
            lex("rack=-1").unwrap(),
            vec![Token::Word("rack".into()), Token::Eq, Token::Int(-1)]
        );
    }

    #[test]
    fn comparison_operators() {
        assert_eq!(
            lex("a <= b >= c != d <> e < f > g").unwrap(),
            vec![
                Token::Word("a".into()),
                Token::LtEq,
                Token::Word("b".into()),
                Token::GtEq,
                Token::Word("c".into()),
                Token::NotEq,
                Token::Word("d".into()),
                Token::NotEq,
                Token::Word("e".into()),
                Token::Lt,
                Token::Word("f".into()),
                Token::Gt,
                Token::Word("g".into()),
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = lex("select 1 -- trailing comment\n, 2").unwrap();
        assert_eq!(
            toks,
            vec![Token::Word("select".into()), Token::Int(1), Token::Comma, Token::Int(2)]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        assert!(matches!(lex("select @x"), Err(SqlError::Lex(_))));
    }
}
