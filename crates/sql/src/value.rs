//! Runtime values and their comparison semantics.

use std::cmp::Ordering;
use std::fmt;

/// A cell value. The Rocks schema (paper Tables II/III) uses integers
/// (ids, rack, rank) and strings (MACs, names, IPs, comments).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// UTF-8 string.
    Text(String),
}

impl Value {
    /// The integer inside, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string inside, if any.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// True if NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Render for report output: NULL renders as the MySQL-style `NULL`.
    pub fn render(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(n) => n.to_string(),
            Value::Text(s) => s.clone(),
        }
    }

    /// SQL truthiness for WHERE evaluation: nonzero integers are true,
    /// NULL and everything else is false (MySQL coerces similarly).
    pub fn is_truthy(&self) -> bool {
        matches!(self, Value::Int(n) if *n != 0)
    }

    /// Three-valued comparison: NULL compares with nothing (returns
    /// `None`, which makes predicates involving NULL false, per SQL).
    /// Int vs Text falls back to comparing the text rendering of the int,
    /// which mirrors MySQL's loose coercion and keeps hand-written admin
    /// queries forgiving.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Text(b)) => {
                // Try numeric interpretation of the text first.
                match b.trim().parse::<i64>() {
                    Ok(n) => Some(a.cmp(&n)),
                    Err(_) => Some(a.to_string().cmp(b)),
                }
            }
            (Value::Text(_), Value::Int(_)) => other.sql_cmp(self).map(Ordering::reverse),
        }
    }

    /// SQL `LIKE` with `%` (any run) and `_` (any single char),
    /// case-insensitive, as MySQL defaults to.
    pub fn like(&self, pattern: &str) -> bool {
        let text = match self {
            Value::Text(s) => s.to_ascii_lowercase(),
            Value::Int(n) => n.to_string(),
            Value::Null => return false,
        };
        like_match(text.as_bytes(), pattern.to_ascii_lowercase().as_bytes())
    }
}

fn like_match(text: &[u8], pat: &[u8]) -> bool {
    // Classic two-pointer wildcard match with backtracking on `%`.
    let (mut t, mut p) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while t < text.len() {
        if p < pat.len() && (pat[p] == b'_' || pat[p] == text[t]) {
            t += 1;
            p += 1;
        } else if p < pat.len() && pat[p] == b'%' {
            star_p = p;
            star_t = t;
            p += 1;
        } else if star_p != usize::MAX {
            star_t += 1;
            t = star_t;
            p = star_p + 1;
        } else {
            return false;
        }
    }
    while p < pat.len() && pat[p] == b'%' {
        p += 1;
    }
    p == pat.len()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Int(n)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_compares_with_nothing() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
    }

    #[test]
    fn mixed_type_coercion() {
        assert_eq!(Value::Int(5).sql_cmp(&Value::Text("5".into())), Some(Ordering::Equal));
        assert_eq!(Value::Int(5).sql_cmp(&Value::Text("7".into())), Some(Ordering::Less));
        assert_eq!(Value::Text("10".into()).sql_cmp(&Value::Int(9)), Some(Ordering::Greater));
    }

    #[test]
    fn like_patterns() {
        let v = Value::Text("compute-0-12".into());
        assert!(v.like("compute-%"));
        assert!(v.like("compute-0-__"));
        assert!(v.like("%-12"));
        assert!(v.like("COMPUTE-%")); // case-insensitive
        assert!(!v.like("compute-1-%"));
        assert!(!v.like("compute-0-_"));
        assert!(!Value::Null.like("%"));
        assert!(Value::Text("".into()).like("%"));
        assert!(!Value::Text("".into()).like("_"));
    }

    #[test]
    fn like_backtracking() {
        assert!(Value::Text("abcbcd".into()).like("a%bcd"));
        assert!(Value::Text("aaa".into()).like("%a%a%"));
        assert!(!Value::Text("ab".into()).like("%a%a%"));
    }

    #[test]
    fn render_forms() {
        assert_eq!(Value::Null.render(), "NULL");
        assert_eq!(Value::Int(-3).render(), "-3");
        assert_eq!(Value::Text("x".into()).render(), "x");
    }

    #[test]
    fn truthiness() {
        assert!(Value::Int(1).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Text("yes".into()).is_truthy());
    }
}
