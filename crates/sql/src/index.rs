//! Hash indexes for equality lookups.
//!
//! A [`HashIndex`] maps every non-NULL cell of one column to the
//! (ascending) row numbers holding it, so `WHERE col = literal` and
//! equi-join probes touch only candidate rows instead of scanning the
//! table. Indexes are *candidate* structures: because the engine's
//! equality ([`Value::sql_cmp`]) coerces between integers and
//! integer-shaped text, a probe returns a **superset** of the truly
//! equal rows and the caller re-verifies each candidate. That keeps the
//! index simple while guaranteeing results byte-identical to a scan.
//!
//! Coercion handling: a stored `Text` value that parses as an integer
//! (`'5'`, `' 5'`, `'05'`) is entered under **both** its exact text and
//! its numeric interpretation, because it compares equal to `Int` values
//! (`5 = '05'` is true) while remaining distinct from other spellings as
//! text (`'5' = '05'` is false). Probes mirror the same rule.

use crate::value::Value;
use std::collections::HashMap;

/// A hash index over one column of a table. Build with [`HashIndex::build`],
/// keep current with [`HashIndex::add`] as rows are appended, and look up
/// candidates with [`HashIndex::probe`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HashIndex {
    /// Numeric buckets: `Int` cells plus integer-shaped `Text` cells.
    num: HashMap<i64, Vec<u32>>,
    /// Exact-text buckets.
    text: HashMap<String, Vec<u32>>,
}

impl HashIndex {
    /// Build an index from a column's values in row order.
    pub fn build<'a>(column: impl Iterator<Item = &'a Value>) -> HashIndex {
        let mut index = HashIndex::default();
        for (row, value) in column.enumerate() {
            index.add(value, row as u32);
        }
        index
    }

    /// Register `value` at `row`. Rows must be added in ascending order
    /// (they are: tables only ever append) so buckets stay sorted.
    pub fn add(&mut self, value: &Value, row: u32) {
        match value {
            Value::Null => {} // NULL equals nothing; never a candidate
            Value::Int(n) => self.num.entry(*n).or_default().push(row),
            Value::Text(s) => {
                self.text.entry(s.clone()).or_default().push(row);
                if let Ok(n) = s.trim().parse::<i64>() {
                    self.num.entry(n).or_default().push(row);
                }
            }
        }
    }

    /// Candidate rows whose value *may* equal `value`, ascending. The
    /// result is complete (every truly equal row is present) but may
    /// contain false positives — e.g. probing `'5'` returns rows storing
    /// `'05'` — so callers must re-check with [`Value::sql_cmp`].
    /// `scratch` is a reusable buffer for the (rare) case where two
    /// buckets must be merged.
    pub fn probe<'s>(&'s self, value: &Value, scratch: &'s mut Vec<u32>) -> &'s [u32] {
        match value {
            Value::Null => &[],
            Value::Int(n) => self.num.get(n).map(Vec::as_slice).unwrap_or(&[]),
            Value::Text(s) => {
                let exact = self.text.get(s.as_str()).map(Vec::as_slice);
                let numeric =
                    s.trim().parse::<i64>().ok().and_then(|n| self.num.get(&n)).map(Vec::as_slice);
                match (exact, numeric) {
                    (None, None) => &[],
                    (Some(one), None) | (None, Some(one)) => one,
                    (Some(a), Some(b)) => {
                        merge_unique(a, b, scratch);
                        scratch.as_slice()
                    }
                }
            }
        }
    }

    /// Number of distinct keys (for tests and EXPLAIN sizing).
    pub fn keys(&self) -> usize {
        self.num.len() + self.text.len()
    }
}

/// Merge two ascending slices into `out`, dropping duplicates.
fn merge_unique(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x < y => {
                i += 1;
                x
            }
            (Some(&x), Some(&y)) if x > y => {
                j += 1;
                y
            }
            (Some(&x), Some(_)) => {
                i += 1;
                j += 1;
                x
            }
            (Some(&x), None) => {
                i += 1;
                x
            }
            (None, Some(&y)) => {
                j += 1;
                y
            }
            (None, None) => unreachable!(),
        };
        if out.last() != Some(&next) {
            out.push(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_vec(ix: &HashIndex, v: &Value) -> Vec<u32> {
        let mut scratch = Vec::new();
        ix.probe(v, &mut scratch).to_vec()
    }

    #[test]
    fn int_probe_finds_ints_and_numeric_text() {
        let values =
            [Value::Int(5), Value::Text("05".into()), Value::Text("x".into()), Value::Null];
        let ix = HashIndex::build(values.iter());
        assert_eq!(probe_vec(&ix, &Value::Int(5)), vec![0, 1]);
        assert_eq!(probe_vec(&ix, &Value::Int(6)), Vec::<u32>::new());
    }

    #[test]
    fn text_probe_merges_exact_and_numeric_buckets() {
        let values = [Value::Text("5".into()), Value::Int(5), Value::Text("05".into())];
        let ix = HashIndex::build(values.iter());
        // '5' must see its exact spelling and every Int(5) — and the
        // superset may include '05' (filtered later by sql_cmp).
        let got = probe_vec(&ix, &Value::Text("5".into()));
        assert!(got.contains(&0) && got.contains(&1));
        let mut sorted = got.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(got, sorted, "candidates must be ascending and unique");
    }

    #[test]
    fn null_probe_is_empty() {
        let ix = HashIndex::build([Value::Null, Value::Int(1)].iter());
        assert!(probe_vec(&ix, &Value::Null).is_empty());
    }

    #[test]
    fn incremental_add_matches_rebuild() {
        let values: Vec<Value> = (0..50)
            .map(|i| match i % 3 {
                0 => Value::Int(i % 7),
                1 => Value::Text(format!("{}", i % 7)),
                _ => Value::Null,
            })
            .collect();
        let built = HashIndex::build(values.iter());
        let mut grown = HashIndex::default();
        for (row, v) in values.iter().enumerate() {
            grown.add(v, row as u32);
        }
        assert_eq!(built, grown);
    }

    #[test]
    fn merge_unique_dedups() {
        let mut out = Vec::new();
        merge_unique(&[1, 3, 5], &[2, 3, 6], &mut out);
        assert_eq!(out, vec![1, 2, 3, 5, 6]);
    }
}
