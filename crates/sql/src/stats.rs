//! Incremental per-column table statistics for the cost-based optimizer.
//!
//! The planner (see `plan.rs`) prices scans, index probes, and join
//! algorithms with per-column statistics: exact row/NULL counts, an NDV
//! (number-of-distinct-values) estimate, min/max bounds, and a small
//! equi-depth histogram. Statistics are:
//!
//! * **built lazily** on first use — for large tables from a
//!   deterministic stride *sample* (at most [`SAMPLE_CAP`] rows), with
//!   sample-to-table scaling and a Haas–Stokes-style NDV correction;
//! * **folded incrementally** as rows are appended (exact row count,
//!   widened min/max, bucket counts nudged), tracked by a
//!   stats-generation counter so a fold is only applied when the cached
//!   statistics describe exactly the previous generation;
//! * **rebuilt** when in-place mutation invalidates them (UPDATE/DELETE
//!   clear them wholesale, like hash indexes) or when accumulated drift
//!   since the last build exceeds 50% of the built row count — folds keep
//!   counts current but cannot re-shape the histogram.
//!
//! # The key space and `sql_cmp`
//!
//! SQL equality here is *non-transitive* over raw values: `5 = '5'` and
//! `5 = '05'` are both true while `'5' = '05'` is false. Histograms (and
//! the sort-merge join in `plan.rs`) therefore operate on a *normalized*
//! key space, [`StatKey`]: any text that parses as an `i64` maps to its
//! numeric key, everything else stays text, and `Num(_) < Text(_)`. Two
//! values that compare equal under [`Value::sql_cmp`] always share a
//! group key (the numeric interpretation wins for both, or neither
//! parses and the texts are byte-identical), so grouping by `StatKey` is
//! a *superset* partition: every truly-equal pair lands in one group,
//! and pairs within a group still need an `sql_cmp` re-check.

use crate::ast::BinOp;
use crate::value::Value;
use std::cmp::Ordering;

/// Histogram width: enough resolution to see skew, small enough that a
/// rebuild clones at most this many boundary keys.
pub const HIST_BUCKETS: usize = 16;

/// Statistics builds over larger tables sample a deterministic stride of
/// at most this many rows.
pub const SAMPLE_CAP: usize = 4096;

/// Rebuild statistics once appended-row drift exceeds this fraction of
/// the row count they were built over (folds track totals exactly but
/// cannot reshape the histogram).
const DRIFT_REBUILD_FRACTION: f64 = 0.5;

/// Owned normalized key: the total order statistics and merge joins run
/// on. Integer-shaped text collapses onto its numeric value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum StatKey {
    /// `Int` cells and text that parses as `i64`.
    Num(i64),
    /// Text with no numeric interpretation.
    Text(String),
}

impl StatKey {
    /// Normalize a value; `None` for NULL (NULL equals nothing and is
    /// tracked by the null count, not the histogram).
    pub fn of(v: &Value) -> Option<StatKey> {
        KeyRef::of(v).map(|k| k.to_owned_key())
    }

    pub(crate) fn as_ref(&self) -> KeyRef<'_> {
        match self {
            StatKey::Num(n) => KeyRef::Num(*n),
            StatKey::Text(s) => KeyRef::Text(s),
        }
    }
}

/// Borrowed normalized key — what sorts and merges use, so no string is
/// cloned per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum KeyRef<'a> {
    Num(i64),
    Text(&'a str),
}

impl<'a> KeyRef<'a> {
    pub(crate) fn of(v: &'a Value) -> Option<KeyRef<'a>> {
        match v {
            Value::Null => None,
            Value::Int(n) => Some(KeyRef::Num(*n)),
            Value::Text(s) => match s.trim().parse::<i64>() {
                Ok(n) => Some(KeyRef::Num(n)),
                Err(_) => Some(KeyRef::Text(s)),
            },
        }
    }

    fn to_owned_key(self) -> StatKey {
        match self {
            KeyRef::Num(n) => StatKey::Num(n),
            KeyRef::Text(s) => StatKey::Text(s.to_string()),
        }
    }
}

/// One equi-depth bucket. Counts are in *sample units*; multiply by the
/// column's `scale` for estimated rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive upper bound of the bucket's key range.
    pub upper: StatKey,
    /// Sampled rows that landed in the bucket.
    pub rows: f64,
    /// Distinct sampled keys in the bucket.
    pub ndv: f64,
}

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Estimated NULL cells (exact when the build was unsampled).
    pub nulls: f64,
    /// Estimated distinct non-null keys in the whole table.
    pub ndv: f64,
    /// `ndv / sampled-distinct`: corrects per-bucket sampled NDV up to
    /// table scale (1.0 for unsampled builds).
    ndv_ratio: f64,
    /// Estimated rows per sampled row (1.0 for unsampled builds).
    scale: f64,
    /// Smallest key seen (build or fold).
    pub min: Option<StatKey>,
    /// Largest key seen (build or fold).
    pub max: Option<StatKey>,
    /// Equi-depth histogram over non-null keys at build time.
    pub buckets: Vec<Bucket>,
}

impl ColumnStats {
    fn build(sampled: &mut Vec<KeyRef<'_>>, nulls_sampled: u64, total_rows: u64) -> ColumnStats {
        let sample_n = sampled.len() as f64 + nulls_sampled as f64;
        let scale = if sample_n > 0.0 { total_rows as f64 / sample_n } else { 1.0 };
        sampled.sort_unstable();
        let (mut distinct, mut singletons) = (0u64, 0u64);
        {
            let mut i = 0;
            while i < sampled.len() {
                let mut j = i + 1;
                while j < sampled.len() && sampled[j] == sampled[i] {
                    j += 1;
                }
                distinct += 1;
                if j == i + 1 {
                    singletons += 1;
                }
                i = j;
            }
        }
        // Haas–Stokes-flavoured first-order jackknife: values seen once
        // in the sample predict how many values the sample missed
        // entirely. Unsampled builds (scale == 1) reduce to the exact
        // distinct count.
        let nonnull_est = (sampled.len() as f64 * scale).max(0.0);
        let ndv = (distinct as f64 + (scale - 1.0).max(0.0) * singletons as f64)
            .clamp(distinct.min(1) as f64, nonnull_est.max(distinct as f64));
        let ndv_ratio = if distinct > 0 { (ndv / distinct as f64).max(1.0) } else { 1.0 };

        // Equi-depth buckets: close a bucket at a key boundary once it
        // holds ~1/HIST_BUCKETS of the sample.
        let mut buckets = Vec::new();
        if !sampled.is_empty() {
            let depth = (sampled.len() as f64 / HIST_BUCKETS as f64).ceil().max(1.0) as usize;
            let (mut rows_in, mut ndv_in) = (0f64, 0f64);
            let mut i = 0;
            while i < sampled.len() {
                let mut j = i + 1;
                while j < sampled.len() && sampled[j] == sampled[i] {
                    j += 1;
                }
                rows_in += (j - i) as f64;
                ndv_in += 1.0;
                if rows_in as usize >= depth || j == sampled.len() {
                    buckets.push(Bucket {
                        upper: sampled[i].to_owned_key(),
                        rows: rows_in,
                        ndv: ndv_in,
                    });
                    rows_in = 0.0;
                    ndv_in = 0.0;
                }
                i = j;
            }
        }

        ColumnStats {
            nulls: nulls_sampled as f64 * scale,
            ndv,
            ndv_ratio,
            scale,
            min: sampled.first().map(|k| k.to_owned_key()),
            max: sampled.last().map(|k| k.to_owned_key()),
            buckets,
        }
    }

    /// Fold one appended cell into the column.
    fn fold(&mut self, v: &Value) {
        let Some(key) = KeyRef::of(v) else {
            self.nulls += 1.0;
            return;
        };
        let mut outside = false;
        match &self.min {
            Some(min) if key < min.as_ref() => {
                self.min = Some(key.to_owned_key());
                outside = true;
            }
            None => {
                self.min = Some(key.to_owned_key());
                outside = true;
            }
            _ => {}
        }
        match &self.max {
            Some(max) if key > max.as_ref() => {
                self.max = Some(key.to_owned_key());
                outside = true;
            }
            None => self.max = Some(key.to_owned_key()),
            _ => {}
        }
        // A key outside the previously seen range is certainly new.
        if outside {
            self.ndv += 1.0;
        }
        // Nudge the containing (or last) bucket by one sample unit's
        // worth of rows so totals keep tracking the table.
        let idx = self
            .buckets
            .iter()
            .position(|b| key <= b.upper.as_ref())
            .or(self.buckets.len().checked_sub(1));
        if let Some(i) = idx {
            self.buckets[i].rows += 1.0 / self.scale.max(1.0);
        }
    }

    /// Estimated rows whose key falls strictly below `key` (in rows, not
    /// sample units).
    fn rows_below(&self, key: KeyRef<'_>) -> f64 {
        let mut below = 0.0;
        for b in &self.buckets {
            match key.cmp(&b.upper.as_ref()) {
                Ordering::Greater => below += b.rows,
                // Inside this bucket: assume half its mass is below.
                _ => {
                    below += b.rows / 2.0;
                    break;
                }
            }
        }
        below * self.scale
    }
}

/// Statistics for a whole table, tagged with the generation they
/// describe.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    /// Exact row count (maintained by folds).
    pub rows: u64,
    /// Rows at build time (drift is measured against this).
    pub built_rows: u64,
    /// Rows folded in since the build.
    pub drift: u64,
    /// The table's stats-generation counter value these stats describe.
    pub generation: u64,
    /// Per-column statistics, indexed by column position.
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Build statistics over `rows` (deterministic stride sample above
    /// [`SAMPLE_CAP`] rows). `ncols` covers the empty-table case.
    pub fn build(rows: &[Vec<Value>], ncols: usize, generation: u64) -> TableStats {
        let n = rows.len();
        let stride = n.div_ceil(SAMPLE_CAP).max(1);
        let mut columns = Vec::with_capacity(ncols);
        let mut keys: Vec<KeyRef<'_>> = Vec::with_capacity(n.min(SAMPLE_CAP));
        #[allow(clippy::needless_range_loop)] // `col` indexes inside each row, not `rows`
        for col in 0..ncols {
            keys.clear();
            let mut nulls = 0u64;
            let mut i = 0;
            while i < n {
                match KeyRef::of(&rows[i][col]) {
                    Some(k) => keys.push(k),
                    None => nulls += 1,
                }
                i += stride;
            }
            columns.push(ColumnStats::build(&mut keys, nulls, n as u64));
        }
        TableStats { rows: n as u64, built_rows: n as u64, drift: 0, generation, columns }
    }

    /// Fold one appended row; `generation` is the table's counter value
    /// *after* the append.
    pub fn fold_appended(&mut self, row: &[Value], generation: u64) {
        self.rows += 1;
        self.drift += 1;
        self.generation = generation;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.fold(v);
        }
    }

    /// Folds keep totals exact but cannot reshape the histogram; past
    /// 50% growth a fresh (cheap, sampled) build beats estimating from a
    /// stale shape.
    pub fn needs_rebuild(&self) -> bool {
        (self.drift as f64) > (self.built_rows.max(64) as f64) * DRIFT_REBUILD_FRACTION
    }

    /// Estimated non-null cells in `col`.
    pub fn non_null(&self, col: usize) -> f64 {
        (self.rows as f64 - self.columns[col].nulls).max(0.0)
    }

    /// Estimated rows matching `col = value` under SQL equality.
    pub fn est_eq_rows(&self, col: usize, value: &Value) -> f64 {
        let Some(key) = KeyRef::of(value) else {
            return 0.0; // `= NULL` matches nothing
        };
        let c = &self.columns[col];
        if self.rows == 0 {
            return 0.0;
        }
        let (Some(min), Some(max)) = (&c.min, &c.max) else {
            // Column was all-NULL at build time; only drifted rows could
            // match.
            return (self.drift as f64).min(1.0);
        };
        if key < min.as_ref() || key > max.as_ref() {
            // Outside every observed key. Sampled builds can miss keys,
            // so stay minimally optimistic instead of claiming zero.
            return if c.scale > 1.0 || self.drift > 0 { 1.0 } else { 0.0 };
        }
        let in_bucket = c
            .buckets
            .iter()
            .find(|b| key <= b.upper.as_ref())
            .map(|b| (b.rows * c.scale) / (b.ndv * c.ndv_ratio).max(1.0));
        in_bucket.unwrap_or_else(|| self.non_null(col) / c.ndv.max(1.0)).max(1.0)
    }

    /// Estimated fraction of the table's rows (0..=1) satisfying
    /// `col <op> value` for a comparison operator.
    pub fn est_cmp_fraction(&self, col: usize, op: BinOp, value: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let rows = self.rows as f64;
        let Some(key) = KeyRef::of(value) else {
            return 0.0; // comparisons with NULL are never true
        };
        let c = &self.columns[col];
        let nonnull = self.non_null(col);
        let eq = self.est_eq_rows(col, value).min(nonnull);
        let below = c.rows_below(key).clamp(0.0, nonnull);
        let matching = match op {
            BinOp::Eq => eq,
            BinOp::NotEq => nonnull - eq,
            BinOp::Lt => below,
            BinOp::LtEq => (below + eq).min(nonnull),
            BinOp::Gt => (nonnull - below - eq).max(0.0),
            BinOp::GtEq => nonnull - below,
            BinOp::And | BinOp::Or => nonnull / 2.0,
        };
        (matching / rows).clamp(0.0, 1.0)
    }

    /// Estimated fraction of rows where `col` IS NULL.
    pub fn null_fraction(&self, col: usize) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        (self.columns[col].nulls / self.rows as f64).clamp(0.0, 1.0)
    }

    /// NDV estimate for a column (≥ 1 once any non-null row exists).
    pub fn ndv(&self, col: usize) -> f64 {
        self.columns[col].ndv.max(if self.non_null(col) > 0.0 { 1.0 } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_rows(vals: &[i64]) -> Vec<Vec<Value>> {
        vals.iter().map(|&v| vec![Value::Int(v)]).collect()
    }

    #[test]
    fn sql_cmp_equal_values_share_a_stat_key() {
        // The superset property the merge join relies on: sql_cmp-equal
        // values always normalize to the same key.
        let tricky = [
            Value::Int(5),
            Value::Text("5".into()),
            Value::Text("05".into()),
            Value::Text(" 5".into()),
            Value::Text("x".into()),
            Value::Text("6".into()),
        ];
        for a in &tricky {
            for b in &tricky {
                if a.sql_cmp(b) == Some(Ordering::Equal) {
                    assert_eq!(StatKey::of(a), StatKey::of(b), "{a:?} vs {b:?}");
                }
            }
        }
        assert_eq!(StatKey::of(&Value::Null), None);
    }

    #[test]
    fn exact_build_counts_everything() {
        let rows = int_rows(&[1, 2, 2, 3, 3, 3]);
        let ts = TableStats::build(&rows, 1, 0);
        assert_eq!(ts.rows, 6);
        assert_eq!(ts.ndv(0), 3.0);
        assert_eq!(ts.columns[0].min, Some(StatKey::Num(1)));
        assert_eq!(ts.columns[0].max, Some(StatKey::Num(3)));
        assert_eq!(ts.est_eq_rows(0, &Value::Int(3)), 3.0);
        // Coerced probe: '02' normalizes onto the numeric key.
        assert_eq!(ts.est_eq_rows(0, &Value::Text("02".into())), 2.0);
    }

    #[test]
    fn empty_and_all_null_columns() {
        let ts = TableStats::build(&[], 2, 0);
        assert_eq!(ts.est_eq_rows(0, &Value::Int(1)), 0.0);
        assert_eq!(ts.est_cmp_fraction(0, BinOp::Lt, &Value::Int(1)), 0.0);

        let rows: Vec<Vec<Value>> = (0..10).map(|_| vec![Value::Null]).collect();
        let ts = TableStats::build(&rows, 1, 0);
        assert_eq!(ts.est_eq_rows(0, &Value::Int(1)), 0.0);
        assert_eq!(ts.null_fraction(0), 1.0);
        assert_eq!(ts.non_null(0), 0.0);
    }

    #[test]
    fn sampled_ndv_tracks_unique_and_skewed_columns() {
        let n = 50_000i64;
        // Unique column: NDV should land near n, not near the sample size.
        let ts = TableStats::build(&int_rows(&(0..n).collect::<Vec<_>>()), 1, 0);
        let ndv = ts.ndv(0);
        assert!(ndv > n as f64 * 0.5 && ndv <= n as f64, "unique ndv={ndv}");
        assert!((ts.est_eq_rows(0, &Value::Int(n / 2)) - 1.0).abs() < 16.0);
        // Four-valued column: NDV must stay 4ish despite sampling.
        let ts = TableStats::build(&int_rows(&(0..n).map(|i| i % 4).collect::<Vec<_>>()), 1, 0);
        let ndv = ts.ndv(0);
        assert!((3.0..=8.0).contains(&ndv), "skewed ndv={ndv}");
        let eq = ts.est_eq_rows(0, &Value::Int(2));
        assert!(eq > n as f64 / 8.0 && eq < n as f64 / 2.0, "skewed eq={eq}");
    }

    #[test]
    fn range_fractions_are_sane() {
        let ts = TableStats::build(&int_rows(&(0..1000).collect::<Vec<_>>()), 1, 0);
        let lt = ts.est_cmp_fraction(0, BinOp::Lt, &Value::Int(100));
        assert!(lt > 0.02 && lt < 0.25, "lt fraction {lt}");
        let gt = ts.est_cmp_fraction(0, BinOp::Gt, &Value::Int(100));
        assert!((lt + gt - 1.0).abs() < 0.2, "lt {lt} + gt {gt} should cover ~everything");
        assert_eq!(ts.est_cmp_fraction(0, BinOp::Lt, &Value::Null), 0.0);
    }

    #[test]
    fn fold_tracks_growth_and_flags_rebuild() {
        let rows = int_rows(&[1, 2, 3, 4]);
        let mut ts = TableStats::build(&rows, 1, 0);
        for (i, v) in (5..=40).enumerate() {
            ts.fold_appended(&[Value::Int(v)], (i + 1) as u64);
        }
        assert_eq!(ts.rows, 40);
        assert_eq!(ts.generation, 36);
        assert_eq!(ts.columns[0].max, Some(StatKey::Num(40)));
        assert!(ts.ndv(0) > 30.0);
        assert!(ts.needs_rebuild(), "36 folds over a 4-row build is past the drift cap");

        // Small drift over a larger build is not.
        let mut ts = TableStats::build(&int_rows(&(0..200).collect::<Vec<_>>()), 1, 0);
        ts.fold_appended(&[Value::Int(7)], 1);
        assert!(!ts.needs_rebuild());
    }

    #[test]
    fn build_is_deterministic() {
        let rows: Vec<Vec<Value>> = (0..20_000)
            .map(|i| {
                vec![match i % 5 {
                    0 => Value::Null,
                    1 => Value::Text(format!("node-{}", i % 97)),
                    _ => Value::Int(i % 311),
                }]
            })
            .collect();
        assert_eq!(TableStats::build(&rows, 1, 3), TableStats::build(&rows, 1, 3));
    }
}
