//! The write-ahead log: statement-level (logical) journaling.
//!
//! The cluster database is a MySQL stand-in, and MySQL's own replication
//! journal — the binlog the Rocks frontend would archive — is statement
//! based. The engine is deterministic, every `ClusterDb` write is issued
//! as SQL text, and replaying that text byte-for-byte reproduces the
//! tables, so the WAL records statements rather than pages. (Physical
//! page images appear on disk only at checkpoint time; see `pager`.)
//!
//! # Frame format
//!
//! ```text
//! frame := [magic u8 = 0xA7] [kind u8] [len u32 le] [crc u32 le] [payload: len bytes]
//! crc   := crc32(kind ‖ len ‖ payload)
//! ```
//!
//! Kinds: `1` Begin `{seq}`, `2` Stmt `{sql}`, `3` Commit
//! `{seq, revision, schema_gen}`. A transaction is durable iff its
//! Commit frame is fully on disk with a valid CRC *and* the log was
//! synced — the engine syncs exactly once per commit, after the Commit
//! frame.

use crate::codec::{self, Reader};
use crate::disk::{crc32, DiskFile, DiskResult};
use crate::recovery::RecoveryError;

const FRAME_MAGIC: u8 = 0xA7;
const FRAME_HEADER: usize = 1 + 1 + 4 + 4;

const KIND_BEGIN: u8 = 1;
const KIND_STMT: u8 = 2;
const KIND_COMMIT: u8 = 3;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A transaction opened.
    Begin {
        /// Its commit sequence number (assigned at begin time).
        seq: u64,
    },
    /// One successfully executed statement.
    Stmt {
        /// The SQL text, exactly as executed.
        sql: String,
    },
    /// The transaction's durability point.
    Commit {
        /// Commit sequence number (matches the Begin).
        seq: u64,
        /// `ClusterDb` revision counter at commit.
        revision: u64,
        /// `Database` schema generation after the transaction.
        schema_gen: u64,
    },
}

/// Encode one frame.
pub fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let (kind, payload) = match rec {
        WalRecord::Begin { seq } => {
            let mut p = Vec::with_capacity(8);
            codec::put_u64(&mut p, *seq);
            (KIND_BEGIN, p)
        }
        WalRecord::Stmt { sql } => {
            let mut p = Vec::with_capacity(4 + sql.len());
            codec::put_str(&mut p, sql);
            (KIND_STMT, p)
        }
        WalRecord::Commit { seq, revision, schema_gen } => {
            let mut p = Vec::with_capacity(24);
            codec::put_u64(&mut p, *seq);
            codec::put_u64(&mut p, *revision);
            codec::put_u64(&mut p, *schema_gen);
            (KIND_COMMIT, p)
        }
    };
    let len = payload.len() as u32;
    let mut crc_input = Vec::with_capacity(5 + payload.len());
    crc_input.push(kind);
    crc_input.extend_from_slice(&len.to_le_bytes());
    crc_input.extend_from_slice(&payload);
    let crc = crc32(&crc_input);

    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.push(FRAME_MAGIC);
    out.push(kind);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Appends frames to the log file. Nothing is durable until
/// [`sync`](Self::sync).
pub struct WalWriter {
    file: Box<dyn DiskFile>,
    len: u64,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter").field("len", &self.len).finish()
    }
}

impl WalWriter {
    /// Wrap an open log file whose valid length is `len` (recovery
    /// truncates the file to the committed prefix before handing it over).
    pub fn new(file: Box<dyn DiskFile>, len: u64) -> Self {
        WalWriter { file, len }
    }

    /// Current log length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when the log holds no frames.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one frame (buffered). Returns the encoded size.
    pub fn append(&mut self, rec: &WalRecord) -> DiskResult<u64> {
        let frame = encode_frame(rec);
        self.file.write_at(self.len, &frame)?;
        self.len += frame.len() as u64;
        Ok(frame.len() as u64)
    }

    /// Make everything appended so far durable.
    pub fn sync(&mut self) -> DiskResult<()> {
        self.file.sync()
    }

    /// Discard the log tail beyond `len` (rollback and post-checkpoint
    /// truncation).
    pub fn truncate_to(&mut self, len: u64) -> DiskResult<()> {
        self.file.truncate(len)?;
        self.len = len;
        Ok(())
    }
}

/// One committed transaction as reconstructed by [`scan`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommittedTxn {
    /// Commit sequence number.
    pub seq: u64,
    /// Revision recorded at commit.
    pub revision: u64,
    /// Schema generation recorded at commit.
    pub schema_gen: u64,
    /// The statements, in execution order.
    pub stmts: Vec<String>,
}

/// The result of scanning a log.
#[derive(Debug, Clone, Default)]
pub struct WalScan {
    /// Fully committed transactions, in log order. May include
    /// duplicates or stale sequence numbers (a crash between checkpoint
    /// header flip and log truncation leaves old commits behind); replay
    /// deduplicates by `seq`.
    pub txns: Vec<CommittedTxn>,
    /// Byte offset just past the last structurally valid *committed*
    /// frame: the length the log is repaired to before new appends.
    pub committed_len: u64,
    /// Everything wrong with the tail, in the order encountered. A
    /// non-empty list is the normal outcome of recovering from a crash.
    pub anomalies: Vec<RecoveryError>,
}

/// Scan a log file: decode frames until the first structural anomaly,
/// group them into committed transactions, and report what the tail
/// looked like. The scan never fails on tail damage — damage is *data*
/// (the recovered state is simply the committed prefix); it only errors
/// on I/O problems reading the file.
pub fn scan(file: &dyn DiskFile) -> DiskResult<WalScan> {
    let len = file.len()? as usize;
    let mut bytes = vec![0u8; len];
    if len > 0 {
        file.read_exact_at(0, &mut bytes)?;
    }
    Ok(scan_bytes(&bytes))
}

/// [`scan`] over an in-memory image (exposed for the edge-case tests,
/// which hand-craft log bytes).
pub fn scan_bytes(bytes: &[u8]) -> WalScan {
    let mut out = WalScan::default();
    let mut pos = 0usize;
    // The transaction currently being assembled: (seq, stmts, start_off).
    let mut open: Option<(u64, Vec<String>)> = None;

    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < FRAME_HEADER {
            out.anomalies.push(RecoveryError::TornWrite(format!(
                "{remaining}-byte fragment at offset {pos} is shorter than a frame header"
            )));
            break;
        }
        if bytes[pos] != FRAME_MAGIC {
            out.anomalies.push(RecoveryError::TornWrite(format!(
                "bad frame magic {:#04x} at offset {pos}",
                bytes[pos]
            )));
            break;
        }
        let kind = bytes[pos + 1];
        let plen =
            u32::from_le_bytes(bytes[pos + 2..pos + 6].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 6..pos + 10].try_into().expect("4 bytes"));
        if remaining < FRAME_HEADER + plen {
            out.anomalies.push(RecoveryError::TornWrite(format!(
                "frame at offset {pos} claims {plen} payload bytes, {} remain",
                remaining - FRAME_HEADER
            )));
            break;
        }
        let payload = &bytes[pos + FRAME_HEADER..pos + FRAME_HEADER + plen];
        let mut crc_input = Vec::with_capacity(5 + plen);
        crc_input.push(kind);
        crc_input.extend_from_slice(&(plen as u32).to_le_bytes());
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            out.anomalies.push(RecoveryError::ChecksumMismatch(format!(
                "frame at offset {pos} fails its CRC"
            )));
            break;
        }
        let frame_end = pos + FRAME_HEADER + plen;
        let mut r = Reader::new(payload);
        match kind {
            KIND_BEGIN => {
                let Ok(seq) = r.u64() else {
                    out.anomalies.push(RecoveryError::ChecksumMismatch(format!(
                        "begin frame at offset {pos} has a malformed payload"
                    )));
                    break;
                };
                if let Some((orphan_seq, _)) = open.take() {
                    out.anomalies.push(RecoveryError::PartialCommit(format!(
                        "transaction {orphan_seq} was never committed (new begin at offset {pos})"
                    )));
                }
                open = Some((seq, Vec::new()));
            }
            KIND_STMT => {
                let Ok(sql) = r.str() else {
                    out.anomalies.push(RecoveryError::ChecksumMismatch(format!(
                        "stmt frame at offset {pos} has a malformed payload"
                    )));
                    break;
                };
                match &mut open {
                    Some((_, stmts)) => stmts.push(sql),
                    None => {
                        out.anomalies.push(RecoveryError::PartialCommit(format!(
                            "statement outside any transaction at offset {pos}"
                        )));
                        // Structurally valid but unattributable; stop to
                        // stay on a committed prefix.
                        return out;
                    }
                }
            }
            KIND_COMMIT => {
                let parsed =
                    (|| Ok::<_, crate::codec::CodecError>((r.u64()?, r.u64()?, r.u64()?)))();
                let Ok((seq, revision, schema_gen)) = parsed else {
                    out.anomalies.push(RecoveryError::ChecksumMismatch(format!(
                        "commit frame at offset {pos} has a malformed payload"
                    )));
                    break;
                };
                let stmts = match open.take() {
                    Some((begin_seq, stmts)) if begin_seq == seq => stmts,
                    Some((begin_seq, _)) => {
                        out.anomalies.push(RecoveryError::PartialCommit(format!(
                            "commit {seq} at offset {pos} closes transaction {begin_seq}"
                        )));
                        break;
                    }
                    // A commit with no open transaction: a duplicated
                    // commit record. Deliver it empty; replay's seq check
                    // makes it a no-op.
                    None => Vec::new(),
                };
                out.txns.push(CommittedTxn { seq, revision, schema_gen, stmts });
                out.committed_len = frame_end as u64;
            }
            other => {
                out.anomalies.push(RecoveryError::TornWrite(format!(
                    "unknown frame kind {other} at offset {pos}"
                )));
                break;
            }
        }
        pos = frame_end;
    }

    if let Some((seq, stmts)) = open {
        out.anomalies.push(RecoveryError::PartialCommit(format!(
            "transaction {seq} has {} statement(s) but no commit record",
            stmts.len()
        )));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_txn(seq: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend(encode_frame(&WalRecord::Begin { seq }));
        bytes.extend(encode_frame(&WalRecord::Stmt {
            sql: format!("insert into t values ({seq})"),
        }));
        bytes.extend(encode_frame(&WalRecord::Commit { seq, revision: seq * 10, schema_gen: 1 }));
        bytes
    }

    #[test]
    fn round_trip_two_transactions() {
        let mut bytes = full_txn(1);
        bytes.extend(full_txn(2));
        let scan = scan_bytes(&bytes);
        assert!(scan.anomalies.is_empty());
        assert_eq!(scan.committed_len, bytes.len() as u64);
        assert_eq!(scan.txns.len(), 2);
        assert_eq!(scan.txns[1].seq, 2);
        assert_eq!(scan.txns[1].revision, 20);
        assert_eq!(scan.txns[1].stmts, vec!["insert into t values (2)"]);
    }

    #[test]
    fn every_truncation_point_yields_a_committed_prefix() {
        let mut bytes = full_txn(1);
        bytes.extend(full_txn(2));
        let full_len = bytes.len();
        let first_len = full_txn(1).len();
        for cut in 0..full_len {
            let scan = scan_bytes(&bytes[..cut]);
            let expect = if cut >= first_len { 1 } else { 0 };
            assert_eq!(scan.txns.len(), expect, "cut at {cut}");
            assert!(cut == 0 || cut == first_len || !scan.anomalies.is_empty());
        }
    }

    #[test]
    fn bit_flip_is_a_checksum_mismatch() {
        let bytes = full_txn(1);
        for byte in 0..bytes.len() {
            let mut dam = bytes.clone();
            dam[byte] ^= 0x10;
            let scan = scan_bytes(&dam);
            assert!(scan.txns.is_empty(), "flip at {byte} must not commit");
            assert!(!scan.anomalies.is_empty());
        }
    }

    #[test]
    fn uncommitted_tail_is_a_partial_commit() {
        let mut bytes = full_txn(1);
        bytes.extend(encode_frame(&WalRecord::Begin { seq: 2 }));
        bytes.extend(encode_frame(&WalRecord::Stmt { sql: "delete from t".into() }));
        let scan = scan_bytes(&bytes);
        assert_eq!(scan.txns.len(), 1);
        assert_eq!(scan.committed_len, full_txn(1).len() as u64);
        assert!(matches!(scan.anomalies.as_slice(), [RecoveryError::PartialCommit(_)]));
    }
}
