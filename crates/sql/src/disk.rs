//! The "disk": a trait over positional file I/O, with two
//! implementations — real files for production use, and a deterministic
//! in-memory disk whose fault injector models exactly what a kernel
//! page cache does to an unsynced file when the machine dies.
//!
//! # The fault model
//!
//! Each in-memory file keeps two images: `stable` (what has survived the
//! last `sync`) and `view` (what the process sees, i.e. stable plus every
//! buffered write). Mutating operations — `write_at`, `truncate`,
//! `sync` — are *counted* across the whole VFS. A [`CrashPlan`] names the
//! op number at which the machine dies: the triggering op and everything
//! after it fail with [`DiskError::Crashed`], and each file's stable
//! image advances by only a *seeded prefix* of its buffered ops. The last
//! surviving write may additionally be torn (a prefix of its bytes) or
//! hit by a bit flip — the classic torn-write / corrupted-sector
//! outcomes. [`MemVfs::survivor`] then yields the disk a rebooted
//! machine would find.

use crate::codec::fnv1a;
use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Errors from the disk layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiskError {
    /// The fault injector killed the machine; every subsequent operation
    /// on this VFS fails with this error.
    Crashed,
    /// A read past the end of the file.
    OutOfBounds {
        /// Requested offset.
        offset: u64,
        /// Requested length.
        len: u64,
        /// Actual file length.
        file_len: u64,
    },
    /// An OS-level I/O failure (real files only).
    Io(String),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Crashed => write!(f, "disk crashed (fault injection)"),
            DiskError::OutOfBounds { offset, len, file_len } => {
                write!(f, "read [{offset}, {offset}+{len}) past end of {file_len}-byte file")
            }
            DiskError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {}

/// Result alias for disk operations.
pub type DiskResult<T> = std::result::Result<T, DiskError>;

/// Positional file I/O, the only interface the storage engine uses.
/// Durability contract: `write_at`/`truncate` are buffered and may be
/// lost, reordered only by truncation, or torn on crash; `sync` makes
/// everything issued so far survive.
pub trait DiskFile: Send {
    /// Current file length in bytes (as the process sees it).
    fn len(&self) -> DiskResult<u64>;
    /// True when the file holds no bytes.
    fn is_empty(&self) -> DiskResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> DiskResult<()>;
    /// Buffered positional write; extends the file if needed.
    fn write_at(&mut self, offset: u64, data: &[u8]) -> DiskResult<()>;
    /// Buffered truncation (or extension with zeroes) to `len` bytes.
    fn truncate(&mut self, len: u64) -> DiskResult<()>;
    /// Flush every buffered operation to stable storage.
    fn sync(&mut self) -> DiskResult<()>;
}

/// Opens named files. The storage engine uses two: `"wal"` and `"data"`.
pub trait Vfs {
    /// Open (creating if absent) the file called `name`.
    fn open(&self, name: &str) -> DiskResult<Box<dyn DiskFile>>;
}

/// When and how the in-memory disk dies. The crash fires on the
/// `at_op`-th mutating operation (1-based) counted from when the plan was
/// armed; `seed` drives every per-file decision (how many buffered ops
/// survive, whether the last one is torn or bit-flipped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// 1-based index of the mutating op that does not complete.
    pub at_op: u64,
    /// Seed for the surviving-prefix / torn-write / bit-flip decisions.
    pub seed: u64,
}

#[derive(Debug, Clone)]
enum PendingOp {
    Write { offset: u64, data: Vec<u8> },
    Truncate { len: u64 },
}

#[derive(Debug, Clone, Default)]
struct MemFileState {
    /// What survived the last sync.
    stable: Vec<u8>,
    /// What the process sees (stable + buffered ops applied).
    view: Vec<u8>,
    /// Buffered ops since the last sync, in issue order.
    pending: Vec<PendingOp>,
}

fn apply_op(image: &mut Vec<u8>, op: &PendingOp) {
    match op {
        PendingOp::Write { offset, data } => {
            let end = *offset as usize + data.len();
            if image.len() < end {
                image.resize(end, 0);
            }
            image[*offset as usize..end].copy_from_slice(data);
        }
        PendingOp::Truncate { len } => image.resize(*len as usize, 0),
    }
}

#[derive(Debug, Default)]
struct VfsState {
    files: BTreeMap<String, MemFileState>,
    /// Mutating ops since the current crash plan was armed.
    ops: u64,
    plan: Option<CrashPlan>,
    crashed: bool,
    /// Lifetime telemetry (never reset by arming).
    total_writes: u64,
    total_syncs: u64,
}

impl VfsState {
    /// A cheap deterministic per-decision PRNG: the crash machinery must
    /// not depend on the workload's RNG stream.
    fn roll(seed: u64, salt: u64) -> u64 {
        fnv1a(&[seed.to_le_bytes(), salt.to_le_bytes()].concat())
    }

    /// The machine dies: advance each file's stable image by a seeded
    /// prefix of its buffered ops, possibly tearing or flipping the last
    /// surviving write.
    fn crash(&mut self, seed: u64) {
        for (salt, (name, file)) in self.files.iter_mut().enumerate() {
            let r = Self::roll(seed, fnv1a(name.as_bytes()) ^ salt as u64);
            let keep =
                if file.pending.is_empty() { 0 } else { r as usize % (file.pending.len() + 1) };
            for op in &file.pending[..keep] {
                apply_op(&mut file.stable, op);
            }
            // Damage the frontier: maybe tear or bit-flip the op right
            // *after* the surviving prefix (the one in flight).
            if keep < file.pending.len() {
                if let PendingOp::Write { offset, data } = &file.pending[keep] {
                    match Self::roll(seed, r) % 4 {
                        // 0 => the in-flight write vanishes entirely.
                        1 if !data.is_empty() => {
                            // Torn: a prefix of the sectors made it out.
                            let cut = 1 + (Self::roll(seed, r ^ 1) as usize % data.len());
                            apply_op(
                                &mut file.stable,
                                &PendingOp::Write { offset: *offset, data: data[..cut].to_vec() },
                            );
                        }
                        2 if !data.is_empty() => {
                            // Corrupted sector: one bit flipped.
                            let mut data = data.clone();
                            let byte = Self::roll(seed, r ^ 2) as usize % data.len();
                            let bit = (Self::roll(seed, r ^ 3) % 8) as u8;
                            data[byte] ^= 1 << bit;
                            apply_op(&mut file.stable, &PendingOp::Write { offset: *offset, data });
                        }
                        _ => {}
                    }
                }
            }
            file.pending.clear();
        }
        self.crashed = true;
    }

    /// Count one mutating op; returns `Err(Crashed)` if the plan fires
    /// (the triggering op does not complete) or the machine is already
    /// dead.
    fn tick(&mut self) -> DiskResult<()> {
        if self.crashed {
            return Err(DiskError::Crashed);
        }
        self.ops += 1;
        if let Some(plan) = self.plan {
            if self.ops >= plan.at_op {
                self.crash(plan.seed);
                return Err(DiskError::Crashed);
            }
        }
        Ok(())
    }
}

/// The deterministic in-memory disk. Cloning the handle shares the
/// underlying state (it models one machine's disk, however many files
/// are open on it).
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    state: Arc<Mutex<VfsState>>,
}

impl MemVfs {
    /// A fresh, empty, fault-free disk.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// Arm a crash plan: mutating-op counting restarts at zero and the
    /// `plan.at_op`-th op from now will not complete.
    pub fn arm(&self, plan: CrashPlan) {
        let mut s = self.state.lock().expect("vfs lock");
        s.ops = 0;
        s.plan = Some(plan);
    }

    /// Mutating ops observed since the last [`arm`](Self::arm) (or since
    /// creation). A fault-free golden run uses this to learn how many
    /// crash points a workload exposes.
    pub fn ops(&self) -> u64 {
        self.state.lock().expect("vfs lock").ops
    }

    /// True once the armed crash has fired.
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("vfs lock").crashed
    }

    /// Lifetime `sync` count (telemetry).
    pub fn sync_count(&self) -> u64 {
        self.state.lock().expect("vfs lock").total_syncs
    }

    /// Lifetime `write_at`/`truncate` count (telemetry).
    pub fn write_count(&self) -> u64 {
        self.state.lock().expect("vfs lock").total_writes
    }

    /// The disk a rebooted machine finds: every file reduced to its
    /// post-crash stable image, fault-free, counters reset.
    pub fn survivor(&self) -> MemVfs {
        let s = self.state.lock().expect("vfs lock");
        let files = s
            .files
            .iter()
            .map(|(name, f)| {
                (
                    name.clone(),
                    MemFileState {
                        stable: f.stable.clone(),
                        view: f.stable.clone(),
                        pending: Vec::new(),
                    },
                )
            })
            .collect();
        MemVfs { state: Arc::new(Mutex::new(VfsState { files, ..VfsState::default() })) }
    }

    /// Raw stable bytes of a file (test introspection).
    pub fn stable_bytes(&self, name: &str) -> Option<Vec<u8>> {
        self.state.lock().expect("vfs lock").files.get(name).map(|f| f.stable.clone())
    }
}

impl Vfs for MemVfs {
    fn open(&self, name: &str) -> DiskResult<Box<dyn DiskFile>> {
        let mut s = self.state.lock().expect("vfs lock");
        if s.crashed {
            return Err(DiskError::Crashed);
        }
        s.files.entry(name.to_string()).or_default();
        Ok(Box::new(MemFile { state: Arc::clone(&self.state), name: name.to_string() }))
    }
}

struct MemFile {
    state: Arc<Mutex<VfsState>>,
    name: String,
}

impl DiskFile for MemFile {
    fn len(&self) -> DiskResult<u64> {
        let s = self.state.lock().expect("vfs lock");
        if s.crashed {
            return Err(DiskError::Crashed);
        }
        Ok(s.files[&self.name].view.len() as u64)
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> DiskResult<()> {
        let s = self.state.lock().expect("vfs lock");
        if s.crashed {
            return Err(DiskError::Crashed);
        }
        let view = &s.files[&self.name].view;
        let end = offset as usize + buf.len();
        if end > view.len() {
            return Err(DiskError::OutOfBounds {
                offset,
                len: buf.len() as u64,
                file_len: view.len() as u64,
            });
        }
        buf.copy_from_slice(&view[offset as usize..end]);
        Ok(())
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> DiskResult<()> {
        let mut s = self.state.lock().expect("vfs lock");
        s.total_writes += 1;
        // Record the op *before* the tick so the in-flight write is
        // visible to the crash (it may be the one that tears).
        let op = PendingOp::Write { offset, data: data.to_vec() };
        s.files.get_mut(&self.name).expect("open file").pending.push(op);
        s.tick()?;
        let file = s.files.get_mut(&self.name).expect("open file");
        let op = file.pending.last().expect("just pushed").clone();
        apply_op(&mut file.view, &op);
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> DiskResult<()> {
        let mut s = self.state.lock().expect("vfs lock");
        s.total_writes += 1;
        let op = PendingOp::Truncate { len };
        s.files.get_mut(&self.name).expect("open file").pending.push(op);
        s.tick()?;
        let file = s.files.get_mut(&self.name).expect("open file");
        apply_op(&mut file.view, &PendingOp::Truncate { len });
        Ok(())
    }

    fn sync(&mut self) -> DiskResult<()> {
        let mut s = self.state.lock().expect("vfs lock");
        s.total_syncs += 1;
        // A sync that crashes has NOT flushed: tick first.
        s.tick()?;
        let file = s.files.get_mut(&self.name).expect("open file");
        file.stable = file.view.clone();
        file.pending.clear();
        Ok(())
    }
}

/// Real files under a directory — the production side of the trait.
/// `sync` maps to `File::sync_all`.
#[derive(Debug, Clone)]
pub struct FileVfs {
    root: PathBuf,
}

impl FileVfs {
    /// A VFS rooted at `root` (created if absent).
    pub fn new(root: impl Into<PathBuf>) -> DiskResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(FileVfs { root })
    }
}

impl Vfs for FileVfs {
    fn open(&self, name: &str) -> DiskResult<Box<dyn DiskFile>> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.root.join(name))
            .map_err(|e| DiskError::Io(e.to_string()))?;
        Ok(Box::new(OsFile { file: Mutex::new(file) }))
    }
}

struct OsFile {
    // Seek-based positional I/O needs `&mut File`; the mutex keeps the
    // `&self` read path of the trait workable without unix-only FileExt.
    file: Mutex<std::fs::File>,
}

impl OsFile {
    fn io<T>(r: std::io::Result<T>) -> DiskResult<T> {
        r.map_err(|e| DiskError::Io(e.to_string()))
    }
}

impl DiskFile for OsFile {
    fn len(&self) -> DiskResult<u64> {
        let f = self.file.lock().expect("file lock");
        Ok(Self::io(f.metadata())?.len())
    }

    fn read_exact_at(&self, offset: u64, buf: &mut [u8]) -> DiskResult<()> {
        let mut f = self.file.lock().expect("file lock");
        let file_len = Self::io(f.metadata())?.len();
        if offset + buf.len() as u64 > file_len {
            return Err(DiskError::OutOfBounds { offset, len: buf.len() as u64, file_len });
        }
        Self::io(f.seek(SeekFrom::Start(offset)))?;
        Self::io(f.read_exact(buf))
    }

    fn write_at(&mut self, offset: u64, data: &[u8]) -> DiskResult<()> {
        let mut f = self.file.lock().expect("file lock");
        Self::io(f.seek(SeekFrom::Start(offset)))?;
        Self::io(f.write_all(data))
    }

    fn truncate(&mut self, len: u64) -> DiskResult<()> {
        let f = self.file.lock().expect("file lock");
        Self::io(f.set_len(len))
    }

    fn sync(&mut self) -> DiskResult<()> {
        let f = self.file.lock().expect("file lock");
        Self::io(f.sync_all())
    }
}

/// CRC-32 (IEEE 802.3), table-driven. Every on-disk frame and page
/// carries one; recovery treats a mismatch as a typed error rather than
/// undefined behaviour.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    };
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vector() {
        // The classic check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let vfs = MemVfs::new();
        let mut f = vfs.open("wal").unwrap();
        f.write_at(0, b"hello").unwrap();
        f.write_at(5, b" world").unwrap();
        assert_eq!(f.len().unwrap(), 11);
        let mut buf = [0u8; 11];
        f.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert!(matches!(f.read_exact_at(8, &mut [0u8; 8]), Err(DiskError::OutOfBounds { .. })));
    }

    #[test]
    fn unsynced_writes_can_vanish_on_crash() {
        // Crash on the very first op after arming with a seed whose
        // surviving prefix is empty: the write must not reach stable.
        for seed in 0..32u64 {
            let vfs = MemVfs::new();
            let mut f = vfs.open("wal").unwrap();
            f.write_at(0, b"durable").unwrap();
            f.sync().unwrap();
            vfs.arm(CrashPlan { at_op: 2, seed });
            f.write_at(7, b" buffered").unwrap();
            assert!(matches!(f.sync(), Err(DiskError::Crashed)));
            assert!(vfs.crashed());
            let survivor = vfs.survivor();
            let f2 = survivor.open("wal").unwrap();
            let len = f2.len().unwrap();
            // The synced prefix always survives; the tail may be
            // missing, torn, or bit-flipped — never longer than written.
            assert!((7..=16).contains(&len), "seed {seed}: len {len}");
            let mut head = [0u8; 7];
            f2.read_exact_at(0, &mut head).unwrap();
            if head != *b"durable" {
                // A bit flip may land in the in-flight write only — which
                // starts at offset 7 — so the head must be intact.
                panic!("seed {seed}: synced bytes were damaged: {head:?}");
            }
        }
    }

    #[test]
    fn synced_data_always_survives() {
        // Whatever the in-flight write's fate (vanished, torn, flipped,
        // or fully flushed by the page cache), the synced prefix is
        // untouchable.
        for seed in 0..32u64 {
            let vfs = MemVfs::new();
            let mut f = vfs.open("data").unwrap();
            f.write_at(0, b"abc").unwrap();
            f.sync().unwrap();
            vfs.arm(CrashPlan { at_op: 1, seed });
            assert!(matches!(f.write_at(3, b"xyz"), Err(DiskError::Crashed)));
            let stable = vfs.survivor().stable_bytes("data").unwrap();
            assert!(stable.len() >= 3, "seed {seed}: synced bytes shrank");
            assert_eq!(&stable[..3], b"abc", "seed {seed}: synced bytes damaged");
        }
    }

    #[test]
    fn crash_is_deterministic_per_seed() {
        let run = |seed| {
            let vfs = MemVfs::new();
            let mut f = vfs.open("wal").unwrap();
            vfs.arm(CrashPlan { at_op: 4, seed });
            for i in 0..8u8 {
                if f.write_at(i as u64 * 3, &[i; 3]).is_err() {
                    break;
                }
            }
            vfs.survivor().stable_bytes("wal").unwrap()
        };
        assert_eq!(run(7), run(7));
        // Different seeds explore different outcomes (overwhelmingly).
        let distinct: std::collections::HashSet<Vec<u8>> = (0..16).map(run).collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn file_vfs_round_trips() {
        let dir = std::env::temp_dir().join(format!("rocks-sql-disktest-{}", std::process::id()));
        let vfs = FileVfs::new(&dir).unwrap();
        let mut f = vfs.open("data").unwrap();
        f.truncate(0).unwrap();
        f.write_at(0, b"persisted").unwrap();
        f.sync().unwrap();
        let f2 = vfs.open("data").unwrap();
        let mut buf = [0u8; 9];
        f2.read_exact_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"persisted");
        std::fs::remove_dir_all(&dir).ok();
    }
}
