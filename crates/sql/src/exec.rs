//! Statement execution against a [`Database`].

use crate::ast::*;
use crate::plan::{self, PlannerConfig, SelectPlan};
use crate::table::Table;
use crate::value::Value;
use crate::{Database, Result, SqlError};
use std::cmp::Ordering;

/// Rows returned by a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// Output column labels (as projected).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

impl QueryResult {
    /// Render an ASCII table in the style of the `mysql` client — used by
    /// the `reproduce` binary to print Tables II and III. Column widths
    /// are measured in characters, not bytes, so multi-byte UTF-8 values
    /// (hostnames with accents, localized comments) stay aligned —
    /// `format!`'s padding counts characters too.
    pub fn render_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.chars().count()).collect();
        for row in &self.rows {
            for (i, v) in row.iter().enumerate() {
                widths[i] = widths[i].max(v.render().chars().count());
            }
        }
        let sep = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let mut out = String::new();
        out.push_str(&sep);
        out.push('\n');
        out.push('|');
        for (c, w) in self.columns.iter().zip(&widths) {
            out.push_str(&format!(" {c:<w$} |"));
        }
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for (v, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {:<w$} |", v.render()));
            }
            out.push('\n');
        }
        out.push_str(&sep);
        out.push('\n');
        out
    }
}

/// Outcome of executing any statement.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A SELECT's rows.
    Rows(QueryResult),
    /// A write; `affected` counts inserted/updated/deleted rows.
    Written {
        /// Rows inserted, updated, or deleted.
        affected: usize,
    },
}

/// Execute a parsed statement.
pub fn execute(db: &mut Database, stmt: Statement) -> Result<ExecOutcome> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            db.add_table(Table::new(name, columns))?;
            Ok(ExecOutcome::Written { affected: 0 })
        }
        Statement::DropTable { name } => {
            if db.table(&name).is_none() {
                return Err(SqlError::NoSuchTable(name));
            }
            // Database stores tables keyed by lowercase name; re-add by
            // removing through the public surface.
            db.remove_table(&name);
            Ok(ExecOutcome::Written { affected: 0 })
        }
        Statement::Insert { table, columns, rows } => {
            let t = db.table_mut(&table).ok_or(SqlError::NoSuchTable(table))?;
            let affected = rows.len();
            // Stage (validate + coerce) every row before appending any, so
            // a mid-statement type error leaves the table untouched. The
            // durable engine journals whole statements and replays them on
            // recovery; that is only sound if failed statements have no
            // effect.
            let staged = rows
                .into_iter()
                .map(|row| match &columns {
                    Some(names) => t.stage_named(names, row),
                    None => t.stage_row(row),
                })
                .collect::<Result<Vec<_>>>()?;
            for row in staged {
                t.append_staged(row);
            }
            Ok(ExecOutcome::Written { affected })
        }
        Statement::Select { items, from, where_clause, group_by, order_by, limit } => select(
            db,
            &items,
            &from,
            where_clause.as_ref(),
            &group_by,
            &order_by,
            limit,
            PlanChoice::Auto,
        )
        .map(ExecOutcome::Rows),
        Statement::Update { table, sets, where_clause } => {
            update(db, &table, &sets, where_clause.as_ref())
        }
        Statement::Delete { table, where_clause } => delete(db, &table, where_clause.as_ref()),
        Statement::Explain(inner) => explain(db, *inner).map(ExecOutcome::Rows),
    }
}

/// Execute a parsed statement against a shared (read-only) database
/// reference. Only `SELECT` is possible without mutation; write
/// statements are rejected. This is the entry point for the concurrent
/// Kickstart-generation read path, where many worker threads query one
/// database snapshot without locking each other out.
pub fn execute_readonly(db: &Database, stmt: Statement) -> Result<QueryResult> {
    execute_readonly_with(db, &stmt, PlanChoice::Auto)
}

/// Read-only execution with an explicit planning mode. `Prepared` carries
/// a plan built at prepare time (`Database::query_ref`'s statement
/// cache); `ForceScan` is the differential baseline used by
/// `Database::query_ref_scan`, benchmarks, and the proptest suite.
pub(crate) fn execute_readonly_with(
    db: &Database,
    stmt: &Statement,
    mode: PlanChoice<'_>,
) -> Result<QueryResult> {
    match stmt {
        Statement::Select { items, from, where_clause, group_by, order_by, limit } => {
            select(db, items, from, where_clause.as_ref(), group_by, order_by, *limit, mode)
        }
        Statement::Explain(inner) => explain(db, (**inner).clone()),
        _ => Err(SqlError::Unsupported(
            "only SELECT may run on a read-only database reference".into(),
        )),
    }
}

/// How `select` obtains its filtered row set.
#[derive(Clone, Copy)]
pub(crate) enum PlanChoice<'a> {
    /// Plan now; fall back to the scan path when planning declines.
    Auto,
    /// Never plan — the naive scan baseline.
    ForceScan,
    /// A plan (or a recorded planning refusal) from the statement cache.
    Prepared(Option<&'a SelectPlan>),
    /// Plan now with an explicit planner configuration, bypassing the
    /// statement cache (benchmark baselines and forced join algorithms).
    Config(&'a PlannerConfig),
}

/// `EXPLAIN <stmt>`: render the plan the SELECT would run with. Writes
/// cannot be explained — the planner only applies to SELECT.
fn explain(db: &Database, stmt: Statement) -> Result<QueryResult> {
    let Statement::Select { from, where_clause, order_by, limit, items, group_by } = stmt else {
        return Err(SqlError::Unsupported("EXPLAIN supports only SELECT".into()));
    };
    let tables = resolve_from(db, &from)?;
    let planned = where_clause.as_ref().and_then(|w| plan::plan_select(&tables, w));
    let mut lines = plan::render_plan(&tables, planned.as_ref(), where_clause.as_ref());
    if !order_by.is_empty() {
        let keys: Vec<String> = order_by
            .iter()
            .map(|k| format!("{}{}", k.column, if k.desc { " desc" } else { "" }))
            .collect();
        let has_aggregate = items.iter().any(SelectItem::is_aggregate);
        let top_k = match limit {
            Some(k) if !has_aggregate && group_by.is_empty() => format!(" (top-{k} selection)"),
            _ => " (sort)".to_string(),
        };
        lines.push(format!("  order by: {}{top_k}", keys.join(", ")));
    }
    if let Some(k) = limit {
        lines.push(format!("  limit: {k}"));
    }
    Ok(QueryResult {
        columns: vec!["plan".to_string()],
        rows: lines.into_iter().map(|l| vec![Value::Text(l)]).collect(),
    })
}

/// Binding environment for expression evaluation over a (possibly joined)
/// row: for each FROM table, its name, column names, and the slice of the
/// joined row holding its values. Shared with the planner (`plan.rs`),
/// which evaluates pushed-down filters against single-table environments.
pub(crate) struct RowEnv<'a> {
    pub(crate) tables: &'a [(&'a str, &'a Table)],
    /// Offsets of each table's columns within the joined row.
    pub(crate) offsets: &'a [usize],
    pub(crate) row: &'a [Value],
}

impl<'a> RowEnv<'a> {
    fn resolve(&self, col: &ColumnRef) -> Result<&'a Value> {
        let mut found: Option<&'a Value> = None;
        for ((name, table), offset) in self.tables.iter().zip(self.offsets) {
            if let Some(t) = &col.table {
                if !t.eq_ignore_ascii_case(name) {
                    continue;
                }
            }
            if let Some(idx) = table.column_index(&col.column) {
                if found.is_some() {
                    return Err(SqlError::AmbiguousColumn(col.to_string()));
                }
                found = Some(&self.row[offset + idx]);
            }
        }
        found.ok_or_else(|| SqlError::NoSuchColumn(col.to_string()))
    }
}

pub(crate) fn eval(expr: &Expr, env: &RowEnv<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column(c) => env.resolve(c).cloned(),
        Expr::Not(inner) => {
            let v = eval(inner, env)?;
            Ok(Value::Int(if v.is_truthy() { 0 } else { 1 }))
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = eval(lhs, env)?;
            match op {
                BinOp::And => {
                    if !l.is_truthy() {
                        return Ok(Value::Int(0));
                    }
                    let r = eval(rhs, env)?;
                    Ok(Value::Int(r.is_truthy() as i64))
                }
                BinOp::Or => {
                    if l.is_truthy() {
                        return Ok(Value::Int(1));
                    }
                    let r = eval(rhs, env)?;
                    Ok(Value::Int(r.is_truthy() as i64))
                }
                cmp => {
                    let r = eval(rhs, env)?;
                    let ord = l.sql_cmp(&r);
                    let truth = match (cmp, ord) {
                        (_, None) => false, // NULL never compares
                        (BinOp::Eq, Some(o)) => o == Ordering::Equal,
                        (BinOp::NotEq, Some(o)) => o != Ordering::Equal,
                        (BinOp::Lt, Some(o)) => o == Ordering::Less,
                        (BinOp::LtEq, Some(o)) => o != Ordering::Greater,
                        (BinOp::Gt, Some(o)) => o == Ordering::Greater,
                        (BinOp::GtEq, Some(o)) => o != Ordering::Less,
                        (BinOp::And | BinOp::Or, _) => unreachable!(),
                    };
                    Ok(Value::Int(truth as i64))
                }
            }
        }
        Expr::Like { expr, pattern, negated } => {
            let v = eval(expr, env)?;
            let hit = v.like(pattern);
            Ok(Value::Int((hit != *negated) as i64))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval(expr, env)?;
            Ok(Value::Int((v.is_null() != *negated) as i64))
        }
        Expr::InList { expr, list, negated } => {
            let v = eval(expr, env)?;
            if v.is_null() {
                return Ok(Value::Int(0));
            }
            let hit = list.iter().any(|item| v.sql_cmp(item) == Some(Ordering::Equal));
            Ok(Value::Int((hit != *negated) as i64))
        }
    }
}

/// Resolve FROM table names against the database, in FROM order.
fn resolve_from<'d>(db: &'d Database, from: &[String]) -> Result<Vec<(&'d str, &'d Table)>> {
    from.iter()
        .map(|name| {
            db.table(name).map(|t| (t.name(), t)).ok_or_else(|| SqlError::NoSuchTable(name.clone()))
        })
        .collect()
}

/// The naive path: enumerate the cross product of all FROM tables with an
/// odometer and evaluate the whole WHERE per assembled row. This is the
/// semantic reference the planner must match byte-for-byte, and the
/// fallback whenever planning declines.
fn scan_rows(
    tables: &[(&str, &Table)],
    offsets: &[usize],
    total_width: usize,
    where_clause: Option<&Expr>,
    examined: &mut u64,
) -> Result<Vec<Vec<Value>>> {
    let mut joined: Vec<Vec<Value>> = Vec::new();
    let mut indices = vec![0usize; tables.len()];
    if tables.iter().all(|(_, t)| !t.is_empty()) {
        'outer: loop {
            *examined += 1;
            let mut row = Vec::with_capacity(total_width);
            for ((_, t), &idx) in tables.iter().zip(indices.iter()) {
                row.extend_from_slice(&t.rows()[idx]);
            }
            let keep = match where_clause {
                Some(expr) => {
                    let env = RowEnv { tables, offsets, row: &row };
                    eval(expr, &env)?.is_truthy()
                }
                None => true,
            };
            if keep {
                joined.push(row);
            }
            // Odometer increment.
            for pos in (0..tables.len()).rev() {
                indices[pos] += 1;
                if indices[pos] < tables[pos].1.len() {
                    continue 'outer;
                }
                indices[pos] = 0;
            }
            break;
        }
    }
    Ok(joined)
}

#[allow(clippy::too_many_arguments)]
fn select(
    db: &Database,
    items: &[SelectItem],
    from: &[String],
    where_clause: Option<&Expr>,
    group_by: &[ColumnRef],
    order_by: &[OrderKey],
    limit: Option<usize>,
    mode: PlanChoice<'_>,
) -> Result<QueryResult> {
    let tables = resolve_from(db, from)?;

    let mut offsets = Vec::with_capacity(tables.len());
    let mut total_width = 0usize;
    for (_, t) in &tables {
        offsets.push(total_width);
        total_width += t.columns().len();
    }

    // Produce the filtered, joined row set — through the planner when a
    // WHERE clause planned successfully, through the scan path otherwise.
    // `examined` and `used_index` feed the database's QueryStats.
    let mut examined = 0u64;
    let mut used_index = false;
    let mut est_rows: Option<f64> = None;
    let mut joined: Vec<Vec<Value>> = match (where_clause, mode) {
        (Some(expr), PlanChoice::Auto | PlanChoice::Config(_)) => {
            let config = match mode {
                PlanChoice::Config(c) => *c,
                _ => PlannerConfig::default(),
            };
            match plan::plan_select_with(&tables, expr, &config) {
                Some((p, info)) => {
                    db.stats().record_planning(&info, p.reordered);
                    used_index = p.uses_index();
                    if p.costed {
                        est_rows = Some(p.est_rows);
                    }
                    plan::execute_plan(&p, &tables, &offsets, total_width, &mut examined)?
                }
                None => scan_rows(&tables, &offsets, total_width, where_clause, &mut examined)?,
            }
        }
        (Some(_), PlanChoice::Prepared(Some(p))) => {
            used_index = p.uses_index();
            if p.costed {
                est_rows = Some(p.est_rows);
            }
            plan::execute_plan(p, &tables, &offsets, total_width, &mut examined)?
        }
        _ => scan_rows(&tables, &offsets, total_width, where_clause, &mut examined)?,
    };
    // Feed the estimated-vs-actual ratio histogram on the pre-projection
    // joined-row count — the quantity the planner actually estimated.
    if let Some(est) = est_rows {
        db.stats().record_estimate(est, joined.len() as u64);
    }

    let has_aggregate = items.iter().any(SelectItem::is_aggregate);

    // ORDER BY before projection so sort keys need not be projected.
    if !order_by.is_empty() {
        // Resolve sort-key positions once, against an arbitrary row shape.
        let key_indices: Vec<(usize, bool)> = order_by
            .iter()
            .map(|key| resolve_position(&tables, &offsets, &key.column).map(|idx| (idx, key.desc)))
            .collect::<Result<_>>()?;
        // Top-k fast path: when a LIMIT smaller than the row count
        // follows the sort (and rows flow straight to projection, not
        // into grouping), keep a bounded heap instead of sorting
        // everything — O(n log k) versus O(n log n).
        let top_k = match limit {
            Some(k) if !has_aggregate && group_by.is_empty() && k < joined.len() => Some(k),
            _ => None,
        };
        match top_k {
            Some(k) => joined = top_k_rows(joined, k, &key_indices),
            None => joined.sort_by(|a, b| {
                for &(idx, desc) in &key_indices {
                    let ord = a[idx].sql_cmp(&b[idx]).unwrap_or(Ordering::Equal);
                    let ord = if desc { ord.reverse() } else { ord };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            }),
        }
    }

    // Grouped / aggregate path.
    if has_aggregate || !group_by.is_empty() {
        let result = grouped_select(items, group_by, &tables, &offsets, joined, limit)?;
        db.stats().record_select(examined, result.rows.len() as u64, used_index);
        return Ok(result);
    }

    if let Some(n) = limit {
        joined.truncate(n);
    }

    let mut out_columns: Vec<String> = Vec::new();
    let mut positions: Vec<usize> = Vec::new();
    for item in items {
        match item {
            SelectItem::Wildcard => {
                for ((name, t), offset) in tables.iter().zip(&offsets) {
                    for (i, c) in t.columns().iter().enumerate() {
                        out_columns.push(if tables.len() > 1 {
                            format!("{name}.{}", c.name)
                        } else {
                            c.name.clone()
                        });
                        positions.push(offset + i);
                    }
                }
            }
            SelectItem::Column(col) => {
                out_columns.push(col.to_string());
                positions.push(resolve_position(&tables, &offsets, col)?);
            }
            _ => unreachable!("aggregates handled above"),
        }
    }

    let rows: Vec<Vec<Value>> =
        joined.into_iter().map(|row| positions.iter().map(|&i| row[i].clone()).collect()).collect();
    db.stats().record_select(examined, rows.len() as u64, used_index);
    Ok(QueryResult { columns: out_columns, rows })
}

/// Resolve a column reference to a joined-row index, checking ambiguity.
fn resolve_position(
    tables: &[(&str, &Table)],
    offsets: &[usize],
    col: &ColumnRef,
) -> Result<usize> {
    let mut found = None;
    for ((name, table), offset) in tables.iter().zip(offsets) {
        if let Some(t) = &col.table {
            if !t.eq_ignore_ascii_case(name) {
                continue;
            }
        }
        if let Some(idx) = table.column_index(&col.column) {
            if found.is_some() {
                return Err(SqlError::AmbiguousColumn(col.to_string()));
            }
            found = Some(offset + idx);
        }
    }
    found.ok_or_else(|| SqlError::NoSuchColumn(col.to_string()))
}

/// Partial selection for `ORDER BY ... LIMIT k`: return the k first rows
/// of the stable sort without sorting everything. Stability is preserved
/// by totalizing the comparison with each row's original position — under
/// that total order, "k smallest, ascending" is exactly "stable sort,
/// then truncate(k)". Implemented as a bounded binary max-heap (the root
/// is the worst row kept; a better row replaces it).
fn top_k_rows(rows: Vec<Vec<Value>>, k: usize, keys: &[(usize, bool)]) -> Vec<Vec<Value>> {
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &(Vec<Value>, usize), b: &(Vec<Value>, usize)| -> Ordering {
        for &(idx, desc) in keys {
            let ord = a.0[idx].sql_cmp(&b.0[idx]).unwrap_or(Ordering::Equal);
            let ord = if desc { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        a.1.cmp(&b.1)
    };
    // std's BinaryHeap orders by Ord, not a closure, so keep a small
    // hand-rolled sift-up/sift-down heap instead.
    let mut heap: Vec<(Vec<Value>, usize)> = Vec::with_capacity(k);
    for (pos, row) in rows.into_iter().enumerate() {
        let item = (row, pos);
        if heap.len() < k {
            heap.push(item);
            // Sift up.
            let mut i = heap.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if cmp(&heap[i], &heap[parent]) == Ordering::Greater {
                    heap.swap(i, parent);
                    i = parent;
                } else {
                    break;
                }
            }
        } else if cmp(&item, &heap[0]) == Ordering::Less {
            heap[0] = item;
            // Sift down.
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut largest = i;
                if l < heap.len() && cmp(&heap[l], &heap[largest]) == Ordering::Greater {
                    largest = l;
                }
                if r < heap.len() && cmp(&heap[r], &heap[largest]) == Ordering::Greater {
                    largest = r;
                }
                if largest == i {
                    break;
                }
                heap.swap(i, largest);
                i = largest;
            }
        }
    }
    heap.sort_by(&cmp);
    heap.into_iter().map(|(row, _)| row).collect()
}

/// Evaluate the grouped/aggregate SELECT path. With an empty `group_by`
/// the whole (already sorted) row set forms a single group — the plain
/// `SELECT COUNT(*) ...` case. Group order follows first appearance,
/// which is the WHERE/ORDER BY-processed row order.
fn grouped_select(
    items: &[SelectItem],
    group_by: &[ColumnRef],
    tables: &[(&str, &Table)],
    offsets: &[usize],
    joined: Vec<Vec<Value>>,
    limit: Option<usize>,
) -> Result<QueryResult> {
    // Validate projection: non-aggregates must appear in GROUP BY.
    for item in items {
        match item {
            SelectItem::Column(col) => {
                let grouped = group_by
                    .iter()
                    .any(|g| g.column == col.column && (g.table.is_none() || g.table == col.table));
                if !grouped {
                    return Err(SqlError::Unsupported(format!(
                        "column {col} must appear in GROUP BY or an aggregate"
                    )));
                }
            }
            SelectItem::Wildcard => {
                return Err(SqlError::Unsupported(
                    "SELECT * cannot be combined with aggregates/GROUP BY".into(),
                ))
            }
            _ => {}
        }
    }

    let key_positions: Vec<usize> =
        group_by.iter().map(|col| resolve_position(tables, offsets, col)).collect::<Result<_>>()?;

    // Partition rows into groups, preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut groups: std::collections::HashMap<Vec<Value>, Vec<Vec<Value>>> = Default::default();
    for row in joined {
        let key: Vec<Value> = key_positions.iter().map(|&i| row[i].clone()).collect();
        if !groups.contains_key(&key) {
            order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    // With no GROUP BY, aggregates run over everything as one group.
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let mut columns = Vec::new();
    for item in items {
        columns.push(match item {
            SelectItem::CountStar => "count(*)".to_string(),
            SelectItem::Min(col) => format!("min({col})"),
            SelectItem::Max(col) => format!("max({col})"),
            SelectItem::Sum(col) => format!("sum({col})"),
            SelectItem::Column(col) => col.to_string(),
            SelectItem::Wildcard => unreachable!("rejected above"),
        });
    }

    let mut rows = Vec::new();
    for key in order {
        let members = &groups[&key];
        let mut row = Vec::new();
        for item in items {
            row.push(match item {
                SelectItem::CountStar => Value::Int(members.len() as i64),
                SelectItem::Min(col) => {
                    extreme(members, resolve_position(tables, offsets, col)?, true)
                }
                SelectItem::Max(col) => {
                    extreme(members, resolve_position(tables, offsets, col)?, false)
                }
                SelectItem::Sum(col) => {
                    let idx = resolve_position(tables, offsets, col)?;
                    let mut any = false;
                    let mut total = 0i64;
                    for member in members {
                        if let Some(n) = member[idx].as_int() {
                            total += n;
                            any = true;
                        }
                    }
                    if any {
                        Value::Int(total)
                    } else {
                        Value::Null
                    }
                }
                SelectItem::Column(col) => {
                    let idx = resolve_position(tables, offsets, col)?;
                    members.first().map(|m| m[idx].clone()).unwrap_or(Value::Null)
                }
                SelectItem::Wildcard => unreachable!("rejected above"),
            });
        }
        rows.push(row);
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
    Ok(QueryResult { columns, rows })
}

/// MIN/MAX over a group, skipping NULLs (SQL semantics).
fn extreme(members: &[Vec<Value>], idx: usize, is_min: bool) -> Value {
    let mut best: Option<&Value> = None;
    for member in members {
        let v = &member[idx];
        if v.is_null() {
            continue;
        }
        best = Some(match best {
            None => v,
            Some(b) => {
                let ord = v.sql_cmp(b).unwrap_or(Ordering::Equal);
                if (is_min && ord == Ordering::Less) || (!is_min && ord == Ordering::Greater) {
                    v
                } else {
                    b
                }
            }
        });
    }
    best.cloned().unwrap_or(Value::Null)
}

fn update(
    db: &mut Database,
    table: &str,
    sets: &[(String, Expr)],
    where_clause: Option<&Expr>,
) -> Result<ExecOutcome> {
    // Evaluate per-row so SET expressions may reference columns.
    let t = db.table(table).ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
    let name = t.name().to_string();
    let set_indices: Vec<usize> = sets
        .iter()
        .map(|(col, _)| {
            t.column_index(col).ok_or_else(|| SqlError::NoSuchColumn(format!("{name}.{col}")))
        })
        .collect::<Result<_>>()?;
    let columns = t.columns().to_vec();

    let snapshot: Vec<Vec<Value>> = t.rows().to_vec();
    let mut new_rows = Vec::with_capacity(snapshot.len());
    let mut affected = 0usize;
    {
        let t_ref = db.table(table).unwrap();
        let tables = [(t_ref.name(), t_ref)];
        let offsets = [0usize];
        for row in &snapshot {
            let env = RowEnv { tables: &tables, offsets: &offsets, row };
            let hit = match where_clause {
                Some(expr) => eval(expr, &env)?.is_truthy(),
                None => true,
            };
            if hit {
                let mut updated = row.clone();
                for ((_, expr), &idx) in sets.iter().zip(&set_indices) {
                    let value = eval(expr, &env)?;
                    updated[idx] = Table::coerce(&columns[idx], value)?;
                }
                new_rows.push(updated);
                affected += 1;
            } else {
                new_rows.push(row.clone());
            }
        }
    }
    *db.table_mut(table).unwrap().rows_mut() = new_rows;
    Ok(ExecOutcome::Written { affected })
}

fn delete(db: &mut Database, table: &str, where_clause: Option<&Expr>) -> Result<ExecOutcome> {
    let t = db.table(table).ok_or_else(|| SqlError::NoSuchTable(table.to_string()))?;
    let snapshot: Vec<Vec<Value>> = t.rows().to_vec();
    let mut keep = Vec::with_capacity(snapshot.len());
    let mut affected = 0usize;
    {
        let tables = [(t.name(), t)];
        let offsets = [0usize];
        for row in &snapshot {
            let env = RowEnv { tables: &tables, offsets: &offsets, row };
            let hit = match where_clause {
                Some(expr) => eval(expr, &env)?.is_truthy(),
                None => true,
            };
            if hit {
                affected += 1;
            } else {
                keep.push(row.clone());
            }
        }
    }
    *db.table_mut(table).unwrap().rows_mut() = keep;
    Ok(ExecOutcome::Written { affected })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.execute("create table nodes (id int, name text, membership int, rack int, rank int, ip text, comment text)").unwrap();
        db.execute("create table memberships (id int, name text, appliance int, compute text)")
            .unwrap();
        // Table II's rows (abridged).
        for stmt in [
            "insert into nodes values (1, 'frontend-0', 1, 0, 0, '10.1.1.1', 'Gateway machine')",
            "insert into nodes values (2, 'network-0-0', 4, 0, 0, '10.255.255.253', 'Switch for Cabinet 0')",
            "insert into nodes values (4, 'compute-0-0', 2, 0, 0, '10.255.255.245', 'Compute node')",
            "insert into nodes values (5, 'compute-0-1', 2, 0, 1, '10.255.255.244', 'Compute node')",
            "insert into nodes values (6, 'compute-0-2', 2, 0, 2, '10.255.255.243', NULL)",
            "insert into nodes values (8, 'web-1-0', 8, 1, 0, '10.255.255.246', 'Web Server in Cabinet 1')",
        ] {
            db.execute(stmt).unwrap();
        }
        for stmt in [
            "insert into memberships values (1, 'Frontend', 1, 'no')",
            "insert into memberships values (2, 'Compute', 2, 'yes')",
            "insert into memberships values (4, 'Ethernet Switches', 4, 'no')",
            "insert into memberships values (8, 'Web Server', 3, 'no')",
        ] {
            db.execute(stmt).unwrap();
        }
        db
    }

    #[test]
    fn where_filters_rows() {
        let mut db = sample_db();
        let names = db.query_column("select name from nodes where rack=1").unwrap();
        assert_eq!(names, vec!["web-1-0"]);
    }

    #[test]
    fn join_with_membership() {
        let mut db = sample_db();
        let names = db
            .query_column(
                "select nodes.name from nodes,memberships where \
                 nodes.membership = memberships.id and memberships.compute = 'yes'",
            )
            .unwrap();
        assert_eq!(names, vec!["compute-0-0", "compute-0-1", "compute-0-2"]);
    }

    #[test]
    fn wildcard_projection_and_labels() {
        let mut db = sample_db();
        let result = db.query("select * from memberships where id = 1").unwrap();
        assert_eq!(result.columns, vec!["id", "name", "appliance", "compute"]);
        assert_eq!(result.rows.len(), 1);
        let joined = db
            .query("select * from nodes, memberships where nodes.membership = memberships.id")
            .unwrap();
        assert!(joined.columns.contains(&"nodes.name".to_string()));
        assert!(joined.columns.contains(&"memberships.name".to_string()));
    }

    #[test]
    fn ambiguous_column_is_an_error() {
        let mut db = sample_db();
        let err = db
            .query("select name from nodes, memberships where nodes.membership = memberships.id")
            .unwrap_err();
        assert!(matches!(err, SqlError::AmbiguousColumn(_)));
        let err =
            db.query("select nodes.name from nodes, memberships where name = 'x'").unwrap_err();
        assert!(matches!(err, SqlError::AmbiguousColumn(_)));
    }

    #[test]
    fn order_by_multi_key() {
        let mut db = sample_db();
        let result =
            db.query("select name from nodes where membership = 2 order by rank desc").unwrap();
        let names: Vec<_> = result.rows.iter().map(|r| r[0].render()).collect();
        assert_eq!(names, vec!["compute-0-2", "compute-0-1", "compute-0-0"]);
    }

    #[test]
    fn limit_truncates() {
        let mut db = sample_db();
        let result = db.query("select name from nodes order by id limit 2").unwrap();
        assert_eq!(result.rows.len(), 2);
    }

    #[test]
    fn aggregates_count_min_max() {
        let mut db = sample_db();
        let result = db
            .query("select count(*), min(rank), max(rank) from nodes where membership = 2")
            .unwrap();
        assert_eq!(result.rows[0], vec![Value::Int(3), Value::Int(0), Value::Int(2)]);
    }

    #[test]
    fn aggregates_on_empty_set() {
        let mut db = sample_db();
        let result = db.query("select count(*), max(rank) from nodes where rack = 99").unwrap();
        assert_eq!(result.rows[0], vec![Value::Int(0), Value::Null]);
    }

    #[test]
    fn group_by_counts_per_rack() {
        let mut db = sample_db();
        let result =
            db.query("select rack, count(*) from nodes group by rack order by rack").unwrap();
        assert_eq!(result.columns, vec!["rack", "count(*)"]);
        assert_eq!(
            result.rows,
            vec![vec![Value::Int(0), Value::Int(5)], vec![Value::Int(1), Value::Int(1)]]
        );
    }

    #[test]
    fn group_by_with_min_max_sum() {
        let mut db = sample_db();
        let result = db
            .query(
                "select membership, count(*), min(rank), max(rank), sum(rank)                  from nodes group by membership order by membership",
            )
            .unwrap();
        // membership 2 (compute) has ranks 0,1,2.
        let compute = result.rows.iter().find(|r| r[0] == Value::Int(2)).unwrap();
        assert_eq!(compute[1], Value::Int(3));
        assert_eq!(compute[2], Value::Int(0));
        assert_eq!(compute[3], Value::Int(2));
        assert_eq!(compute[4], Value::Int(3));
    }

    #[test]
    fn group_by_join_counts_by_membership_name() {
        let mut db = sample_db();
        let result = db
            .query(
                "select memberships.name, count(*) from nodes, memberships                  where nodes.membership = memberships.id                  group by memberships.name order by memberships.name",
            )
            .unwrap();
        let as_pairs: Vec<(String, i64)> =
            result.rows.iter().map(|r| (r[0].render(), r[1].as_int().unwrap())).collect();
        assert!(as_pairs.contains(&("Compute".to_string(), 3)));
        assert!(as_pairs.contains(&("Frontend".to_string(), 1)));
    }

    #[test]
    fn ungrouped_column_with_aggregate_is_rejected() {
        let mut db = sample_db();
        let err = db.query("select name, count(*) from nodes").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
        let err = db.query("select name, count(*) from nodes group by rack").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
        let err = db.query("select *, count(*) from nodes").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn group_by_empty_table_yields_no_groups() {
        let mut db = sample_db();
        db.execute("delete from nodes").unwrap();
        let result = db.query("select rack, count(*) from nodes group by rack").unwrap();
        assert!(result.rows.is_empty());
        // ...but a global aggregate still yields one row.
        let result = db.query("select count(*) from nodes").unwrap();
        assert_eq!(result.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn sum_skips_nulls_and_text() {
        let mut db = Database::new();
        db.execute("create table t (v int)").unwrap();
        db.execute("insert into t values (1), (NULL), (2)").unwrap();
        let result = db.query("select sum(v), count(*) from t").unwrap();
        assert_eq!(result.rows[0], vec![Value::Int(3), Value::Int(3)]);
    }

    #[test]
    fn like_and_in_predicates() {
        let mut db = sample_db();
        let names = db.query_column("select name from nodes where name like 'compute-%'").unwrap();
        assert_eq!(names.len(), 3);
        let names =
            db.query_column("select name from nodes where id in (1, 8) order by id").unwrap();
        assert_eq!(names, vec!["frontend-0", "web-1-0"]);
        let names = db
            .query_column(
                "select name from nodes where name not like 'compute-%' and rack = 0 order by id",
            )
            .unwrap();
        assert_eq!(names, vec!["frontend-0", "network-0-0"]);
    }

    #[test]
    fn null_semantics() {
        let mut db = sample_db();
        // comment = NULL row never matches equality...
        let n = db.query_column("select name from nodes where comment = 'Compute node'").unwrap();
        assert_eq!(n.len(), 2);
        // ...but IS NULL finds it.
        let n = db.query_column("select name from nodes where comment is null").unwrap();
        assert_eq!(n, vec!["compute-0-2"]);
        let n = db.query_column("select count(*) from nodes where comment is not null").unwrap();
        assert_eq!(n, vec!["5"]);
    }

    #[test]
    fn update_with_where() {
        let mut db = sample_db();
        let outcome = db.execute("update nodes set rack = 7 where membership = 2").unwrap();
        assert_eq!(outcome, ExecOutcome::Written { affected: 3 });
        let n = db.query_column("select count(*) from nodes where rack = 7").unwrap();
        assert_eq!(n, vec!["3"]);
    }

    #[test]
    fn update_set_from_column() {
        let mut db = sample_db();
        db.execute("update nodes set rank = id where name = 'web-1-0'").unwrap();
        let v = db.query_column("select rank from nodes where name = 'web-1-0'").unwrap();
        assert_eq!(v, vec!["8"]);
    }

    #[test]
    fn delete_with_and_without_where() {
        let mut db = sample_db();
        let outcome = db.execute("delete from nodes where rack = 1").unwrap();
        assert_eq!(outcome, ExecOutcome::Written { affected: 1 });
        let outcome = db.execute("delete from nodes").unwrap();
        assert_eq!(outcome, ExecOutcome::Written { affected: 5 });
        assert_eq!(db.table("nodes").unwrap().len(), 0);
    }

    #[test]
    fn drop_table() {
        let mut db = sample_db();
        db.execute("drop table memberships").unwrap();
        assert!(db.table("memberships").is_none());
        assert!(matches!(db.execute("drop table memberships"), Err(SqlError::NoSuchTable(_))));
    }

    #[test]
    fn empty_join_short_circuits() {
        let mut db = sample_db();
        db.execute("create table empty (x int)").unwrap();
        let result = db.query("select * from nodes, empty").unwrap();
        assert!(result.rows.is_empty());
    }

    #[test]
    fn render_ascii_looks_like_mysql() {
        let mut db = sample_db();
        let result = db.query("select id, name from memberships order by id limit 2").unwrap();
        let text = result.render_ascii();
        assert!(text.starts_with("+"));
        assert!(text.contains("| id | name"));
        assert!(text.contains("| 1  | Frontend"));
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let mut db = sample_db();
        assert!(matches!(db.query("select x from ghost"), Err(SqlError::NoSuchTable(_))));
        assert!(matches!(db.query("select ghost from nodes"), Err(SqlError::NoSuchColumn(_))));
    }

    #[test]
    fn planned_queries_match_scan_exactly() {
        let db = sample_db();
        for sql in [
            "select * from nodes where ip = '10.1.1.1'",
            "select name from nodes where membership = 2 and rank > 0",
            "select nodes.name from nodes, memberships where \
             nodes.membership = memberships.id and memberships.compute = 'yes'",
            "select * from nodes, memberships where nodes.membership = memberships.id",
            "select nodes.name, memberships.name from nodes, memberships where \
             nodes.membership = memberships.id and nodes.rack = 0 order by nodes.id",
            "select name from nodes where id = 4 or id = 5",
            "select name from nodes where comment = 'Compute node' and rank < 2",
            "select count(*) from nodes where membership = 2",
            "select rack, count(*) from nodes where membership = 2 group by rack",
            "select name from nodes where id in (1, 8) and rack = 0",
            "select name from nodes where name like 'compute-%' and membership = 2",
            "select name from nodes where ip = '99.99.99.99'",
            "select name from nodes where comment is null",
            "select nodes.name from nodes, memberships where \
             memberships.id = nodes.membership and nodes.rank = memberships.appliance",
        ] {
            assert_eq!(
                db.query_ref(sql).unwrap(),
                db.query_ref_scan(sql).unwrap(),
                "planned result diverged for {sql}"
            );
        }
    }

    #[test]
    fn planned_error_behavior_matches_scan() {
        let db = sample_db();
        for sql in [
            "select name from nodes, memberships where name = 'x'", // ambiguous
            "select name from nodes where ghost = 1",               // no such column
            "select name from ghost where x = 1",                   // no such table
        ] {
            assert_eq!(
                db.query_ref(sql).unwrap_err(),
                db.query_ref_scan(sql).unwrap_err(),
                "planned error diverged for {sql}"
            );
        }
    }

    #[test]
    fn point_lookup_touches_only_candidates_via_index() {
        let db = sample_db();
        let r = db.query_ref("select name from nodes where ip = '10.1.1.1'").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Text("frontend-0".into())]]);
        // The probe built an index on nodes.ip.
        assert!(db.table("nodes").unwrap().indexed_columns() >= 1);
    }

    #[test]
    fn explain_point_query_shows_index() {
        let mut db = sample_db();
        let r = db.query("explain select name from nodes where ip = '10.1.1.1'").unwrap();
        assert_eq!(r.columns, vec!["plan"]);
        let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert!(text.iter().any(|l| l.contains("index(ip = '10.1.1.1')")), "plan was {text:?}");
    }

    #[test]
    fn explain_join_shows_hash_join_and_pushdown() {
        let mut db = sample_db();
        let r = db
            .query(
                "explain select nodes.name from nodes, memberships where \
                 nodes.membership = memberships.id and memberships.compute = 'yes' \
                 order by nodes.name limit 2",
            )
            .unwrap();
        let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        // The cost-based planner starts from the filtered memberships
        // table and hash-joins nodes into it (reordered from FROM order).
        assert!(
            text.iter().any(|l| l.contains("hash join(memberships.id = nodes.membership)")),
            "plan was {text:?}"
        );
        assert!(text.iter().any(|l| l.contains("filter((memberships.compute = 'yes'))")));
        assert!(text.iter().any(|l| l.contains("join order: memberships, nodes")));
        assert!(text.iter().any(|l| l.contains("[est ")), "steps carry cost annotations: {text:?}");
        assert!(text.iter().any(|l| l.contains("top-2 selection")));
        assert!(text.iter().any(|l| l.contains("limit: 2")));
    }

    #[test]
    fn explain_fallback_mentions_cross_product() {
        let mut db = sample_db();
        // `name` is ambiguous across the two tables: planning declines.
        let r =
            db.query("explain select nodes.name from nodes, memberships where name = 'x'").unwrap();
        let text: Vec<String> = r.rows.iter().map(|row| row[0].render()).collect();
        assert!(text.iter().any(|l| l.contains("cross product")), "plan was {text:?}");
    }

    #[test]
    fn explain_rejects_writes() {
        let mut db = sample_db();
        let err = db.execute("explain delete from nodes").unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn explain_runs_readonly() {
        let db = sample_db();
        let r = db.query_ref("explain select * from nodes where id = 1").unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn top_k_matches_full_sort_including_ties() {
        let mut db = Database::new();
        db.execute("create table t (a int, b text)").unwrap();
        // Lots of duplicate keys so stability matters.
        for i in 0..40 {
            db.execute(&format!("insert into t values ({}, 'row-{i}')", i % 5)).unwrap();
        }
        for k in [0, 1, 3, 7, 39, 40, 100] {
            let fast = db.query(&format!("select a, b from t order by a limit {k}")).unwrap();
            // Reference: full sort (no limit), truncated by hand.
            let mut full = db.query("select a, b from t order by a").unwrap();
            full.rows.truncate(k);
            assert_eq!(fast.rows, full.rows, "top-k diverged for k={k}");
        }
        // Descending with a secondary key.
        let fast = db.query("select a, b from t order by a desc, b limit 5").unwrap();
        let mut full = db.query("select a, b from t order by a desc, b").unwrap();
        full.rows.truncate(5);
        assert_eq!(fast.rows, full.rows);
    }

    #[test]
    fn render_ascii_aligns_multibyte_utf8() {
        let mut db = Database::new();
        db.execute("create table t (name text, comment text)").unwrap();
        db.execute("insert into t values ('köln-0', 'ascii row')").unwrap();
        db.execute("insert into t values ('plain', 'Grüße aus München ☀')").unwrap();
        let text = db.query("select name, comment from t").unwrap().render_ascii();
        let widths: Vec<usize> = text.lines().map(|l| l.chars().count()).collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "misaligned table (char widths {widths:?}):\n{text}"
        );
    }

    #[test]
    fn index_stays_correct_across_writes() {
        let mut db = sample_db();
        // Build the index via a read...
        let _ = db.query_ref("select name from nodes where membership = 2").unwrap();
        // ...then mutate through every write path and re-compare.
        db.execute("insert into nodes values (9, 'compute-1-0', 2, 1, 0, '10.9.9.9', NULL)")
            .unwrap();
        let sql = "select name from nodes where membership = 2 order by id";
        assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap());
        db.execute("update nodes set membership = 8 where name = 'compute-0-1'").unwrap();
        assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap());
        db.execute("delete from nodes where membership = 8").unwrap();
        assert_eq!(db.query_ref(sql).unwrap(), db.query_ref_scan(sql).unwrap());
    }

    #[test]
    fn coercion_pitfalls_match_scan() {
        let mut db = Database::new();
        db.execute("create table t (id int, tag text)").unwrap();
        for (id, tag) in [(1, "'5'"), (2, "'05'"), (3, "' 5'"), (4, "'x'"), (5, "NULL"), (6, "'6'")]
        {
            db.execute(&format!("insert into t values ({id}, {tag})")).unwrap();
        }
        for sql in [
            "select id from t where tag = '5'",
            "select id from t where tag = '05'",
            "select id from t where tag = ' 5'",
            "select id from t where tag = 5",
            "select id from t where id = '05'",
            "select id from t where tag = 'x'",
            "select id from t where tag = NULL",
        ] {
            assert_eq!(
                db.query_ref(sql).unwrap(),
                db.query_ref_scan(sql).unwrap(),
                "coercion diverged for {sql}"
            );
        }
    }
}
