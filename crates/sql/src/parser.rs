//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::lexer::{lex, Token};
use crate::table::ColumnType;
use crate::value::Value;
use crate::{Result, SqlError};

/// Parse one statement (a trailing semicolon is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_optional_semicolon();
    if p.pos != p.tokens.len() {
        return Err(SqlError::Parse(format!(
            "trailing tokens after statement: {:?}",
            &p.tokens[p.pos..]
        )));
    }
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Consume the next token if it is the given keyword (case-insensitive).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if let Some(Token::Word(w)) = self.peek() {
            if w.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected keyword {kw:?}, found {:?}", self.peek())))
        }
    }

    fn eat_tok(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_tok(&mut self, tok: Token) -> Result<()> {
        if self.eat_tok(&tok) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!("expected {tok:?}, found {:?}", self.peek())))
        }
    }

    fn eat_optional_semicolon(&mut self) {
        while self.eat_tok(&Token::Semicolon) {}
    }

    fn identifier(&mut self, what: &str) -> Result<String> {
        match self.next() {
            Some(Token::Word(w)) => Ok(w.to_ascii_lowercase()),
            other => Err(SqlError::Parse(format!("expected {what}, found {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        if self.eat_kw("create") {
            self.create_table()
        } else if self.eat_kw("insert") {
            self.insert()
        } else if self.eat_kw("select") {
            self.select()
        } else if self.eat_kw("update") {
            self.update()
        } else if self.eat_kw("delete") {
            self.delete()
        } else if self.eat_kw("drop") {
            self.expect_kw("table")?;
            let name = self.identifier("table name")?;
            Ok(Statement::DropTable { name })
        } else if self.eat_kw("explain") {
            Ok(Statement::Explain(Box::new(self.statement()?)))
        } else {
            Err(SqlError::Parse(format!("expected a statement, found {:?}", self.peek())))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("table")?;
        let name = self.identifier("table name")?;
        self.expect_tok(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.identifier("column name")?;
            let ty_word = self.identifier("column type")?;
            let ty = match ty_word.as_str() {
                "int" | "integer" | "bigint" | "smallint" => ColumnType::Int,
                "text" | "varchar" | "char" | "string" => ColumnType::Text,
                other => return Err(SqlError::Parse(format!("unknown column type {other:?}"))),
            };
            // Tolerate a length suffix like varchar(32).
            if self.eat_tok(&Token::LParen) {
                match self.next() {
                    Some(Token::Int(_)) => {}
                    other => {
                        return Err(SqlError::Parse(format!(
                            "expected length in type suffix, found {other:?}"
                        )))
                    }
                }
                self.expect_tok(Token::RParen)?;
            }
            columns.push((col, ty));
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_tok(Token::RParen)?;
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.identifier("table name")?;
        let columns = if self.eat_tok(&Token::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.identifier("column name")?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(Token::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_tok(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(Token::RParen)?;
            rows.push(row);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Value::Int(n)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("null") => Ok(Value::Null),
            other => Err(SqlError::Parse(format!("expected a literal, found {other:?}"))),
        }
    }

    fn select(&mut self) -> Result<Statement> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            from.push(self.identifier("table name")?);
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.column_ref()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let column = self.column_ref()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderKey { column, desc });
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!("expected LIMIT count, found {other:?}")))
                }
            }
        } else {
            None
        };
        Ok(Statement::Select { items, from, where_clause, group_by, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.eat_tok(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregates: COUNT(*), MIN(col), MAX(col).
        if let Some(Token::Word(w)) = self.peek() {
            let kw = w.to_ascii_lowercase();
            if matches!(kw.as_str(), "count" | "min" | "max" | "sum")
                && self.tokens.get(self.pos + 1) == Some(&Token::LParen)
            {
                self.pos += 2; // word + lparen
                let item = match kw.as_str() {
                    "count" => {
                        self.expect_tok(Token::Star)?;
                        SelectItem::CountStar
                    }
                    "min" => SelectItem::Min(self.column_ref()?),
                    "max" => SelectItem::Max(self.column_ref()?),
                    "sum" => SelectItem::Sum(self.column_ref()?),
                    _ => unreachable!(),
                };
                self.expect_tok(Token::RParen)?;
                return Ok(item);
            }
        }
        Ok(SelectItem::Column(self.column_ref()?))
    }

    fn column_ref(&mut self) -> Result<ColumnRef> {
        let first = self.identifier("column name")?;
        if self.eat_tok(&Token::Dot) {
            let column = self.identifier("column name after '.'")?;
            Ok(ColumnRef { table: Some(first), column })
        } else {
            Ok(ColumnRef { table: None, column: first })
        }
    }

    fn update(&mut self) -> Result<Statement> {
        let table = self.identifier("table name")?;
        self.expect_kw("set")?;
        let mut sets = Vec::new();
        loop {
            let col = self.identifier("column name")?;
            self.expect_tok(Token::Eq)?;
            sets.push((col, self.primary_expr()?));
            if !self.eat_tok(&Token::Comma) {
                break;
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, sets, where_clause })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("from")?;
        let table = self.identifier("table name")?;
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Delete { table, where_clause })
    }

    // Expression grammar, lowest to highest precedence:
    //   expr     := and_expr (OR and_expr)*
    //   and_expr := not_expr (AND not_expr)*
    //   not_expr := NOT not_expr | comparison
    //   comparison := primary ((=|!=|<|<=|>|>=) primary
    //                          | [NOT] LIKE 'pat'
    //                          | IS [NOT] NULL
    //                          | [NOT] IN (lit, ...))?
    //   primary  := literal | column | '(' expr ')'
    fn expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.eat_kw("or") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary { op: BinOp::Or, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.eat_kw("and") {
            let rhs = self.not_expr()?;
            lhs = Expr::Binary { op: BinOp::And, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let lhs = self.primary_expr()?;

        let op = match self.peek() {
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::NotEq) => Some(BinOp::NotEq),
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::LtEq) => Some(BinOp::LtEq),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let rhs = self.primary_expr()?;
            return Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) });
        }

        // Postfix predicates.
        let negated = {
            // `NOT` here must be followed by LIKE or IN to be postfix.
            if let Some(Token::Word(w)) = self.peek() {
                if w.eq_ignore_ascii_case("not") {
                    let next = self.tokens.get(self.pos + 1);
                    if let Some(Token::Word(nw)) = next {
                        if nw.eq_ignore_ascii_case("like") || nw.eq_ignore_ascii_case("in") {
                            self.pos += 1;
                            true
                        } else {
                            false
                        }
                    } else {
                        false
                    }
                } else {
                    false
                }
            } else {
                false
            }
        };

        if self.eat_kw("like") {
            match self.next() {
                Some(Token::Str(pattern)) => {
                    return Ok(Expr::Like { expr: Box::new(lhs), pattern, negated })
                }
                other => {
                    return Err(SqlError::Parse(format!(
                        "expected string pattern after LIKE, found {other:?}"
                    )))
                }
            }
        }
        if self.eat_kw("in") {
            self.expect_tok(Token::LParen)?;
            let mut list = Vec::new();
            loop {
                list.push(self.literal()?);
                if !self.eat_tok(&Token::Comma) {
                    break;
                }
            }
            self.expect_tok(Token::RParen)?;
            return Ok(Expr::InList { expr: Box::new(lhs), list, negated });
        }
        if negated {
            return Err(SqlError::Parse("dangling NOT before non-predicate".into()));
        }
        if self.eat_kw("is") {
            let negated = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(lhs), negated });
        }
        Ok(lhs)
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::LParen) => {
                self.pos += 1;
                let inner = self.expr()?;
                self.expect_tok(Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Int(_)) | Some(Token::Str(_)) => Ok(Expr::Literal(self.literal()?)),
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("null") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Word(_)) => Ok(Expr::Column(self.column_ref()?)),
            other => Err(SqlError::Parse(format!("expected an expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse("CREATE TABLE nodes (id INT, mac VARCHAR(17), name TEXT)").unwrap();
        assert_eq!(
            stmt,
            Statement::CreateTable {
                name: "nodes".into(),
                columns: vec![
                    ("id".into(), ColumnType::Int),
                    ("mac".into(), ColumnType::Text),
                    ("name".into(), ColumnType::Text),
                ],
            }
        );
    }

    #[test]
    fn parses_multi_row_insert() {
        let stmt = parse("insert into t (a, b) values (1, 'x'), (2, NULL)").unwrap();
        assert_eq!(
            stmt,
            Statement::Insert {
                table: "t".into(),
                columns: Some(vec!["a".into(), "b".into()]),
                rows: vec![
                    vec![Value::Int(1), Value::Text("x".into())],
                    vec![Value::Int(2), Value::Null],
                ],
            }
        );
    }

    #[test]
    fn parses_paper_join_query() {
        let stmt = parse(
            "select nodes.name from nodes,memberships where \
             nodes.membership = memberships.id and memberships.name = 'Compute'",
        )
        .unwrap();
        match stmt {
            Statement::Select { items, from, where_clause, .. } => {
                assert_eq!(items, vec![SelectItem::Column(ColumnRef::qualified("nodes", "name"))]);
                assert_eq!(from, vec!["nodes".to_string(), "memberships".to_string()]);
                // Top-level operator must be AND over the two equalities.
                match where_clause.unwrap() {
                    Expr::Binary { op: BinOp::And, .. } => {}
                    other => panic!("expected AND, got {other:?}"),
                }
            }
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let stmt = parse("select a from t where a=1 or b=2 and c=3").unwrap();
        if let Statement::Select { where_clause: Some(Expr::Binary { op, rhs, .. }), .. } = stmt {
            assert_eq!(op, BinOp::Or);
            assert!(matches!(*rhs, Expr::Binary { op: BinOp::And, .. }));
        } else {
            panic!("bad parse");
        }
    }

    #[test]
    fn parentheses_override_precedence() {
        let stmt = parse("select a from t where (a=1 or b=2) and c=3").unwrap();
        if let Statement::Select { where_clause: Some(Expr::Binary { op, lhs, .. }), .. } = stmt {
            assert_eq!(op, BinOp::And);
            assert!(matches!(*lhs, Expr::Binary { op: BinOp::Or, .. }));
        } else {
            panic!("bad parse");
        }
    }

    #[test]
    fn like_in_isnull_and_not() {
        assert!(parse("select a from t where name like 'compute-%'").is_ok());
        assert!(parse("select a from t where name not like 'x%'").is_ok());
        assert!(parse("select a from t where rack in (1, 2, 3)").is_ok());
        assert!(parse("select a from t where rack not in (1, 2)").is_ok());
        assert!(parse("select a from t where comment is null").is_ok());
        assert!(parse("select a from t where comment is not null").is_ok());
        assert!(parse("select a from t where not (a = 1)").is_ok());
    }

    #[test]
    fn aggregates() {
        let stmt = parse("select count(*), min(rank), max(rank) from nodes").unwrap();
        if let Statement::Select { items, .. } = stmt {
            assert_eq!(items.len(), 3);
            assert_eq!(items[0], SelectItem::CountStar);
            assert_eq!(items[1], SelectItem::Min(ColumnRef::bare("rank")));
            assert_eq!(items[2], SelectItem::Max(ColumnRef::bare("rank")));
        } else {
            panic!("bad parse");
        }
    }

    #[test]
    fn order_by_and_limit() {
        let stmt = parse("select * from nodes order by rack desc, rank limit 5").unwrap();
        if let Statement::Select { order_by, limit, .. } = stmt {
            assert_eq!(order_by.len(), 2);
            assert!(order_by[0].desc);
            assert!(!order_by[1].desc);
            assert_eq!(limit, Some(5));
        } else {
            panic!("bad parse");
        }
    }

    #[test]
    fn update_and_delete() {
        assert_eq!(
            parse("update nodes set rack = 2 where name = 'compute-0-0'").unwrap(),
            Statement::Update {
                table: "nodes".into(),
                sets: vec![("rack".into(), Expr::Literal(Value::Int(2)))],
                where_clause: Some(Expr::Binary {
                    op: BinOp::Eq,
                    lhs: Box::new(Expr::Column(ColumnRef::bare("name"))),
                    rhs: Box::new(Expr::Literal(Value::Text("compute-0-0".into()))),
                }),
            }
        );
        assert!(parse("delete from nodes where id = 3").is_ok());
        assert!(parse("delete from nodes").is_ok());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("selec a from t").is_err());
        assert!(parse("select from t").is_err());
        assert!(parse("select a from t where").is_err());
        assert!(parse("select a from t extra junk").is_err());
        assert!(parse("insert into t values").is_err());
        assert!(parse("create table t ()").is_err());
        assert!(parse("select a from t where a like 5").is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        assert!(parse("select a from t;").is_ok());
        assert!(parse("drop table t;").is_ok());
    }
}
