//! B-trees over snapshot pages: the primary-table and secondary-index
//! format inside a checkpoint.
//!
//! Keys and values are byte strings; keys are compared lexicographically
//! (callers use order-preserving encodings — big-endian rowids for
//! primary tables, `codec::put_index_key` for secondary indexes). Nodes
//! are built in memory with real size-bounded splits and then serialized
//! post-order into [`SnapshotWriter`] pages; reads descend the on-disk
//! pages directly. There is no in-place on-disk update — the engine's
//! checkpoints rebuild snapshots wholesale (an LSM-style design: the WAL
//! is the write path, the B-tree the read-optimized level).
//!
//! # Page layout (within a page's CRC-checked payload)
//!
//! ```text
//! leaf     := [1u8] [n u16] { [key_len u16] [val_len u32] key val } * n
//! internal := [2u8] [n u16] [child0 u32] { [key_len u16] key [child u32] } * n
//! ```
//!
//! In an internal node, `child0` holds keys `< key[0]`; `child[i+1]`
//! holds keys `>= key[i]`.

use crate::pager::{Pager, SnapshotMeta, SnapshotWriter, PAGE_PAYLOAD};
use crate::recovery::RecoveryError;

const KIND_LEAF: u8 = 1;
const KIND_INTERNAL: u8 = 2;

/// Per-cell byte overhead in a serialized leaf (key_len + val_len).
const LEAF_CELL_OVERHEAD: usize = 2 + 4;
/// Node header: kind + count.
const NODE_HEADER: usize = 3;

enum Node {
    Leaf {
        cells: Vec<(Vec<u8>, Vec<u8>)>,
        /// Serialized size, maintained incrementally.
        size: usize,
    },
    Internal {
        /// `keys.len() == children.len() - 1`.
        keys: Vec<Vec<u8>>,
        children: Vec<Node>,
    },
}

impl Node {
    fn empty_leaf() -> Node {
        Node::Leaf { cells: Vec::new(), size: NODE_HEADER }
    }

    fn internal_size(keys: &[Vec<u8>]) -> usize {
        NODE_HEADER + 4 + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
    }
}

/// An in-memory B-tree under construction (checkpoint path).
pub struct BTreeBuilder {
    root: Node,
    entries: u64,
}

impl Default for BTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl BTreeBuilder {
    /// An empty tree.
    pub fn new() -> Self {
        BTreeBuilder { root: Node::empty_leaf(), entries: 0 }
    }

    /// Entries inserted.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True when no entries have been inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Insert a key/value pair. Duplicate keys keep both cells adjacent
    /// (primary keys are unique rowids; secondary keys embed the rowid,
    /// so true duplicates never arise there either).
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) {
        let cell_size = LEAF_CELL_OVERHEAD + key.len() + value.len();
        assert!(
            NODE_HEADER + cell_size <= PAGE_PAYLOAD,
            "cell of {cell_size} bytes exceeds page capacity"
        );
        self.entries += 1;
        if let Some((sep, sibling)) = Self::insert_into(&mut self.root, key, value) {
            // Root split: grow the tree by one level.
            let old_root = std::mem::replace(&mut self.root, Node::empty_leaf());
            self.root = Node::Internal { keys: vec![sep], children: vec![old_root, sibling] };
        }
    }

    /// Recursive insert; returns `Some((separator, right_sibling))` when
    /// the node split.
    fn insert_into(node: &mut Node, key: Vec<u8>, value: Vec<u8>) -> Option<(Vec<u8>, Node)> {
        match node {
            Node::Leaf { cells, size } => {
                let pos = cells.partition_point(|(k, _)| k.as_slice() <= key.as_slice());
                *size += LEAF_CELL_OVERHEAD + key.len() + value.len();
                cells.insert(pos, (key, value));
                if *size <= PAGE_PAYLOAD {
                    return None;
                }
                // Split at the byte midpoint so both halves fit.
                let mut left_size = NODE_HEADER;
                let mut cut = 0;
                for (i, (k, v)) in cells.iter().enumerate() {
                    let c = LEAF_CELL_OVERHEAD + k.len() + v.len();
                    if left_size + c > (*size - NODE_HEADER) / 2 + NODE_HEADER && i > 0 {
                        break;
                    }
                    left_size += c;
                    cut = i + 1;
                }
                let right: Vec<(Vec<u8>, Vec<u8>)> = cells.split_off(cut);
                let right_size = NODE_HEADER
                    + right
                        .iter()
                        .map(|(k, v)| LEAF_CELL_OVERHEAD + k.len() + v.len())
                        .sum::<usize>();
                *size = left_size;
                let sep = right[0].0.clone();
                Some((sep, Node::Leaf { cells: right, size: right_size }))
            }
            Node::Internal { keys, children } => {
                let child = keys.partition_point(|k| k.as_slice() <= key.as_slice());
                let split = Self::insert_into(&mut children[child], key, value)?;
                keys.insert(child, split.0);
                children.insert(child + 1, split.1);
                if Node::internal_size(keys) <= PAGE_PAYLOAD {
                    return None;
                }
                // Split the internal node down the middle; the separator
                // moves up, as in a classic B-tree.
                let mid = keys.len() / 2;
                let up = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up` moves to the parent.
                let right_children = children.split_off(mid + 1);
                Some((up, Node::Internal { keys: right_keys, children: right_children }))
            }
        }
    }

    /// Serialize post-order into `writer`; returns the root page id.
    pub fn serialize(self, writer: &mut SnapshotWriter) -> u32 {
        Self::write_node(&self.root, writer)
    }

    fn write_node(node: &Node, writer: &mut SnapshotWriter) -> u32 {
        match node {
            Node::Leaf { cells, .. } => {
                let mut payload = Vec::with_capacity(PAGE_PAYLOAD);
                payload.push(KIND_LEAF);
                payload.extend_from_slice(&(cells.len() as u16).to_le_bytes());
                for (k, v) in cells {
                    payload.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    payload.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    payload.extend_from_slice(k);
                    payload.extend_from_slice(v);
                }
                writer.push_page(payload)
            }
            Node::Internal { keys, children } => {
                let child_ids: Vec<u32> =
                    children.iter().map(|c| Self::write_node(c, writer)).collect();
                let mut payload = Vec::with_capacity(PAGE_PAYLOAD);
                payload.push(KIND_INTERNAL);
                payload.extend_from_slice(&(keys.len() as u16).to_le_bytes());
                payload.extend_from_slice(&child_ids[0].to_le_bytes());
                for (k, &child) in keys.iter().zip(&child_ids[1..]) {
                    payload.extend_from_slice(&(k.len() as u16).to_le_bytes());
                    payload.extend_from_slice(k);
                    payload.extend_from_slice(&child.to_le_bytes());
                }
                writer.push_page(payload)
            }
        }
    }
}

/// Decoded page view used by the read path.
enum PageView {
    Leaf(Vec<(Vec<u8>, Vec<u8>)>),
    Internal { keys: Vec<Vec<u8>>, children: Vec<u32> },
}

fn decode_page(payload: &[u8], page: u32) -> Result<PageView, RecoveryError> {
    let corrupt =
        |what: &str| RecoveryError::Corrupt(format!("b-tree page {page}: malformed node ({what})"));
    if payload.len() < NODE_HEADER {
        return Err(corrupt("short header"));
    }
    let kind = payload[0];
    let n = u16::from_le_bytes(payload[1..3].try_into().expect("2 bytes")) as usize;
    let mut pos = NODE_HEADER;
    let take = |pos: &mut usize, len: usize| -> Result<&[u8], RecoveryError> {
        if *pos + len > payload.len() {
            return Err(corrupt("cell overruns page"));
        }
        let s = &payload[*pos..*pos + len];
        *pos += len;
        Ok(s)
    };
    match kind {
        KIND_LEAF => {
            let mut cells = Vec::with_capacity(n);
            for _ in 0..n {
                let klen =
                    u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
                let vlen =
                    u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")) as usize;
                let k = take(&mut pos, klen)?.to_vec();
                let v = take(&mut pos, vlen)?.to_vec();
                cells.push((k, v));
            }
            Ok(PageView::Leaf(cells))
        }
        KIND_INTERNAL => {
            let mut children = Vec::with_capacity(n + 1);
            children.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")));
            let mut keys = Vec::with_capacity(n);
            for _ in 0..n {
                let klen =
                    u16::from_le_bytes(take(&mut pos, 2)?.try_into().expect("2 bytes")) as usize;
                keys.push(take(&mut pos, klen)?.to_vec());
                children.push(u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes")));
            }
            Ok(PageView::Internal { keys, children })
        }
        _ => Err(corrupt("unknown kind")),
    }
}

/// Visitor callback for [`DiskBTree::for_each`]: one call per
/// (key, value) cell, in key order.
pub type CellVisitor<'a> = dyn FnMut(&[u8], &[u8]) -> Result<(), RecoveryError> + 'a;

/// A read-only B-tree rooted at a page of the live snapshot.
pub struct DiskBTree<'a> {
    pager: &'a Pager,
    meta: &'a SnapshotMeta,
    root: u32,
}

impl<'a> DiskBTree<'a> {
    /// View the tree rooted at `root`.
    pub fn new(pager: &'a Pager, meta: &'a SnapshotMeta, root: u32) -> Self {
        DiskBTree { pager, meta, root }
    }

    /// Point lookup: the value stored under `key`, if any.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, RecoveryError> {
        let mut page = self.root;
        let mut depth = 0;
        loop {
            depth += 1;
            if depth > 64 {
                return Err(RecoveryError::Corrupt("b-tree deeper than 64 levels".into()));
            }
            match decode_page(&self.pager.read_page(self.meta, page)?, page)? {
                PageView::Leaf(cells) => {
                    return Ok(cells
                        .into_iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v));
                }
                PageView::Internal { keys, children } => {
                    let slot = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[slot];
                }
            }
        }
    }

    /// In-order traversal of every cell.
    pub fn for_each(&self, f: &mut CellVisitor<'_>) -> Result<(), RecoveryError> {
        self.walk(self.root, 0, f)
    }

    fn walk(&self, page: u32, depth: u32, f: &mut CellVisitor<'_>) -> Result<(), RecoveryError> {
        if depth > 64 {
            return Err(RecoveryError::Corrupt("b-tree deeper than 64 levels".into()));
        }
        match decode_page(&self.pager.read_page(self.meta, page)?, page)? {
            PageView::Leaf(cells) => {
                for (k, v) in &cells {
                    f(k, v)?;
                }
                Ok(())
            }
            PageView::Internal { children, .. } => {
                for child in children {
                    self.walk(child, depth + 1, f)?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{MemVfs, Vfs};
    use crate::pager::Pager;

    /// Build a tree of `n` entries with the given key/value shapes, write
    /// it through a pager, and return it for reading.
    fn build(n: u64, key: impl Fn(u64) -> Vec<u8>, val: impl Fn(u64) -> Vec<u8>) -> (Pager, u32) {
        let mut tree = BTreeBuilder::new();
        // Insert in a scrambled order so splits happen mid-node, not just
        // at the right edge.
        let mut order: Vec<u64> = (0..n).collect();
        for i in 0..order.len() {
            let j = (i * 2654435761 + 17) % order.len();
            order.swap(i, j);
        }
        for &i in &order {
            tree.insert(key(i), val(i));
        }
        assert_eq!(tree.len(), n);
        let mut w = SnapshotWriter::new();
        let root = tree.serialize(&mut w);
        let catalog_page = w.page_count();
        let vfs = MemVfs::new();
        let mut pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        pager.write_snapshot(w, catalog_page, 0, 1, 1, 1).unwrap();
        (pager, root)
    }

    #[test]
    fn multi_level_tree_round_trips() {
        // Values big enough that 5000 entries force several levels.
        let (pager, root) = build(
            5000,
            |i| i.to_be_bytes().to_vec(),
            |i| format!("row-{i}-{}", "x".repeat((i % 37) as usize)).into_bytes(),
        );
        let meta = *pager.live().unwrap();
        assert!(meta.pages > 4, "expected a multi-page tree, got {}", meta.pages);
        let tree = DiskBTree::new(&pager, &meta, root);
        // Point lookups.
        for i in [0u64, 1, 1234, 4999] {
            let v = tree.get(&i.to_be_bytes()).unwrap().expect("present");
            assert!(v.starts_with(format!("row-{i}-").as_bytes()));
        }
        assert_eq!(tree.get(&5000u64.to_be_bytes()).unwrap(), None);
        // Full scan is in key order and complete.
        let mut seen = Vec::new();
        tree.for_each(&mut |k, _| {
            seen.push(u64::from_be_bytes(k.try_into().expect("8 bytes")));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 5000);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "scan out of order");
    }

    #[test]
    fn empty_tree_is_valid() {
        let (pager, root) = build(0, |i| i.to_be_bytes().to_vec(), |_| Vec::new());
        let meta = *pager.live().unwrap();
        let tree = DiskBTree::new(&pager, &meta, root);
        assert_eq!(tree.get(b"anything").unwrap(), None);
        let mut count = 0;
        tree.for_each(&mut |_, _| {
            count += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(count, 0);
    }

    #[test]
    fn large_values_split_correctly() {
        let (pager, root) = build(200, |i| i.to_be_bytes().to_vec(), |i| vec![i as u8; 900]);
        let meta = *pager.live().unwrap();
        let tree = DiskBTree::new(&pager, &meta, root);
        for i in 0..200u64 {
            assert_eq!(tree.get(&i.to_be_bytes()).unwrap().unwrap(), vec![i as u8; 900]);
        }
    }
}
