//! The durable engine: an in-memory [`Database`] fronted by a
//! write-ahead log and checkpointed through the pager.
//!
//! The in-memory engine stays the single execution path — every
//! statement runs against `mem` exactly as in the volatile mode — while
//! this wrapper journals the statement text of each successful write and
//! periodically folds the whole state into a B-tree snapshot. Opening an
//! existing directory replays: live snapshot first, then every committed
//! WAL transaction beyond it (see [`crate::recovery`]).
//!
//! Commit protocol (auto-commit shown; explicit transactions just spread
//! the same frames out):
//!
//! ```text
//! append Begin{seq}  →  append Stmt{sql}...  →  append Commit{seq,rev,gen}  →  fsync(wal)
//! ```
//!
//! The single fsync *after* the commit frame is the durability point.
//! Rollback truncates the WAL back to the transaction's start and
//! restores the memory image saved at `begin` — which also restores a
//! cold plan cache, so a statement cached during the transaction can
//! never serve rolled-back rows.

use crate::disk::{DiskError, Vfs};
use crate::exec::ExecOutcome;
use crate::pager::{Pager, SnapshotWriter, PAGE_PAYLOAD};
use crate::recovery::{self, CatalogTable, RecoveryError, RecoveryReport};
use crate::wal::{self, WalRecord, WalWriter};
use crate::{btree::BTreeBuilder, codec};
use crate::{Database, SqlError};
use rocks_trace::{Counter, Registry, Tracer};

/// Checkpoint policy: fold the WAL into a snapshot once it exceeds this
/// many bytes (checked at commit boundaries, never mid-transaction).
const CHECKPOINT_WAL_BYTES: u64 = 256 * 1024;

/// Errors from the durable engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The statement itself failed; nothing was journaled and the
    /// in-memory state is unchanged.
    Sql(SqlError),
    /// The disk failed (includes the fault injector's `Crashed`).
    Disk(DiskError),
    /// Recovery could not reconstruct a committed prefix.
    Recovery(RecoveryError),
    /// Transaction misuse (nested begin, commit without begin, ...).
    Txn(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Sql(e) => write!(f, "sql: {e}"),
            DurableError::Disk(e) => write!(f, "disk: {e}"),
            DurableError::Recovery(e) => write!(f, "recovery: {e}"),
            DurableError::Txn(m) => write!(f, "transaction: {m}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<SqlError> for DurableError {
    fn from(e: SqlError) -> Self {
        DurableError::Sql(e)
    }
}

impl From<DiskError> for DurableError {
    fn from(e: DiskError) -> Self {
        DurableError::Disk(e)
    }
}

impl From<RecoveryError> for DurableError {
    fn from(e: RecoveryError) -> Self {
        DurableError::Recovery(e)
    }
}

/// Result alias for durable-engine operations.
pub type DurableResult<T> = std::result::Result<T, DurableError>;

/// Storage-engine telemetry, [`Registry`]-backed like
/// [`crate::QueryStats`] so one cluster-wide ledger holds everything.
#[derive(Debug, Clone)]
pub struct DurableStats {
    registry: Registry,
    wal_appends: Counter,
    wal_bytes: Counter,
    fsyncs: Counter,
    commits: Counter,
    checkpoints: Counter,
    checkpoint_pages: Counter,
    recovery_replayed: Counter,
    recovery_anomalies: Counter,
}

impl DurableStats {
    fn bound_to(registry: Registry) -> Self {
        DurableStats {
            wal_appends: registry.counter("db.wal.appends"),
            wal_bytes: registry.counter("db.wal.bytes"),
            fsyncs: registry.counter("db.wal.fsyncs"),
            commits: registry.counter("db.commits"),
            checkpoints: registry.counter("db.checkpoints"),
            checkpoint_pages: registry.counter("db.checkpoint.pages"),
            recovery_replayed: registry.counter("db.recovery.commits_replayed"),
            recovery_anomalies: registry.counter("db.recovery.anomalies"),
            registry,
        }
    }

    /// The registry these counters feed.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// WAL frames appended.
    pub fn wal_appends(&self) -> u64 {
        self.wal_appends.get()
    }

    /// WAL bytes appended.
    pub fn wal_bytes(&self) -> u64 {
        self.wal_bytes.get()
    }

    /// `fsync` calls issued (WAL and data file).
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.get()
    }

    /// Transactions committed.
    pub fn commits(&self) -> u64 {
        self.commits.get()
    }

    /// Checkpoints completed.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints.get()
    }

    /// Pages written across all checkpoints.
    pub fn checkpoint_pages(&self) -> u64 {
        self.checkpoint_pages.get()
    }

    /// Commits replayed by the open-time recovery.
    pub fn recovery_replayed(&self) -> u64 {
        self.recovery_replayed.get()
    }

    /// Tail anomalies found by the open-time recovery.
    pub fn recovery_anomalies(&self) -> u64 {
        self.recovery_anomalies.get()
    }
}

impl Default for DurableStats {
    fn default() -> Self {
        DurableStats::bound_to(Registry::new())
    }
}

/// Memory image saved at `begin`, restored on rollback.
struct TxnState {
    saved_mem: Database,
    wal_start: u64,
    seq: u64,
}

impl std::fmt::Debug for TxnState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnState").field("seq", &self.seq).finish()
    }
}

/// A [`Database`] that survives restarts. See the module docs.
#[derive(Debug)]
pub struct DurableDatabase {
    mem: Database,
    wal: WalWriter,
    pager: Pager,
    /// Last committed transaction sequence number.
    seq: u64,
    /// Revision metadata journaled with the next commit (the `ClusterDb`
    /// counter; plain `0` for standalone use).
    revision: u64,
    txn: Option<TxnState>,
    report: RecoveryReport,
    stats: DurableStats,
    tracer: Tracer,
}

impl DurableDatabase {
    /// Open (or create) the database stored in `vfs`, replaying as
    /// needed.
    pub fn open(vfs: &dyn Vfs) -> DurableResult<Self> {
        Self::open_with_tracer(vfs, Tracer::disabled())
    }

    /// [`open`](Self::open) with spans and counters flowing into
    /// `tracer`.
    pub fn open_with_tracer(vfs: &dyn Vfs, tracer: Tracer) -> DurableResult<Self> {
        let stats = match tracer.registry() {
            Some(r) => DurableStats::bound_to(r.clone()),
            None => DurableStats::default(),
        };
        let _span = tracer.span("db.recovery");
        let wal_file = vfs.open("wal")?;
        let data_file = vfs.open("data")?;
        let mut pager = Pager::open(data_file)?;

        let mut report = RecoveryReport::default();
        let (mut mem, mut seq, mut revision) = match pager.live() {
            Some(meta) => {
                let (db, verified) = recovery::load_snapshot(&pager, meta)?;
                report.checkpoint_seq = meta.checkpoint_seq;
                report.index_entries_verified = verified;
                (db, meta.checkpoint_seq, meta.revision)
            }
            None => (Database::new(), 0, 0),
        };

        let scan = wal::scan(&*wal_file)?;
        report.anomalies = scan.anomalies.clone();
        if pager.headerless_damage() {
            // A non-empty data file with no valid header is survivable
            // only if the crash hit the *first* checkpoint — then the WAL
            // was never truncated and must still start at commit 1. A log
            // starting later means a once-valid snapshot was destroyed
            // and the committed prefix is gone: hard error.
            if let Some(first) = scan.txns.first() {
                if first.seq != 1 {
                    return Err(RecoveryError::ChecksumMismatch(format!(
                        "no valid snapshot header, but the log starts at commit {} — \
                         a completed checkpoint has been destroyed",
                        first.seq
                    ))
                    .into());
                }
            }
            report.anomalies.push(RecoveryError::TornWrite(
                "snapshot header never became valid; rebuilding from the log".into(),
            ));
            pager.reset_damaged()?;
        }
        let (new_seq, last_rev) = recovery::replay(&mut mem, &scan, seq, &mut report)?;
        if new_seq > seq {
            seq = new_seq;
            revision = last_rev;
        }

        // Repair: drop the damaged/uncommitted tail so new appends start
        // on a committed prefix. (Replay is idempotent regardless — a
        // second open sees the same committed frames — but appending
        // after garbage would not be.)
        let actual_len = wal_file.len()?;
        let mut wal = WalWriter::new(wal_file, scan.committed_len);
        if actual_len > scan.committed_len {
            report.wal_tail_discarded = actual_len - scan.committed_len;
            wal.truncate_to(scan.committed_len)?;
            wal.sync()?;
        }

        stats.recovery_replayed.add(report.commits_replayed);
        stats.recovery_anomalies.add(report.anomalies.len() as u64);
        tracer.mark("db.recovery.commits", report.commits_replayed);

        Ok(DurableDatabase { mem, wal, pager, seq, revision, txn: None, report, stats, tracer })
    }

    /// What open-time recovery found and did.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Read-only view of the in-memory engine: `query_ref`,
    /// `lookup_eq`, and friends.
    pub fn reader(&self) -> &Database {
        &self.mem
    }

    /// Storage telemetry.
    pub fn stats(&self) -> &DurableStats {
        &self.stats
    }

    /// Rebind storage *and* SQL counters to an external registry.
    pub fn bind_stats_registry(&mut self, registry: &Registry) {
        self.stats = DurableStats::bound_to(registry.clone());
        self.mem.bind_stats_registry(registry);
    }

    /// Last committed transaction sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Revision metadata that will ride the next commit record.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Set the revision metadata journaled with the next commit. The
    /// cluster layer calls this with its own counter so recovery can
    /// hand the exact committed revision back.
    pub fn set_revision(&mut self, revision: u64) {
        self.revision = revision;
    }

    /// True while an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        self.txn.is_some()
    }

    /// Open an explicit transaction. Statements executed until
    /// [`commit`](Self::commit) become durable together;
    /// [`rollback`](Self::rollback) (or a crash) undoes all of them.
    pub fn begin(&mut self) -> DurableResult<()> {
        if self.txn.is_some() {
            return Err(DurableError::Txn("transaction already open".into()));
        }
        let seq = self.seq + 1;
        let wal_start = self.wal.len();
        self.append(&WalRecord::Begin { seq })?;
        self.txn = Some(TxnState { saved_mem: self.mem.clone(), wal_start, seq });
        Ok(())
    }

    /// Commit the open transaction: write the commit record and fsync.
    pub fn commit(&mut self) -> DurableResult<()> {
        let txn = self.txn.take().ok_or_else(|| DurableError::Txn("no open transaction".into()))?;
        let _span = self.tracer.span("db.commit");
        // On append/fsync failure durability is unknown; keep the memory
        // image (the statements did execute) and surface the error — the
        // next open() decides from the bytes on disk.
        self.commit_frames(txn.seq)?;
        self.seq = txn.seq;
        self.maybe_checkpoint()
    }

    fn commit_frames(&mut self, seq: u64) -> DurableResult<()> {
        self.append(&WalRecord::Commit {
            seq,
            revision: self.revision,
            schema_gen: self.mem.schema_generation(),
        })?;
        self.wal.sync()?;
        self.stats.fsyncs.incr();
        self.stats.commits.incr();
        Ok(())
    }

    /// Abandon the open transaction: truncate the WAL back to its start
    /// and restore the memory image saved at `begin`. The restored image
    /// carries a cold plan cache (see `Database::clone`), which is what
    /// makes "a cached plan serves rolled-back rows" impossible; the
    /// statement counters keep flowing into the same registry.
    pub fn rollback(&mut self) -> DurableResult<()> {
        let txn = self.txn.take().ok_or_else(|| DurableError::Txn("no open transaction".into()))?;
        let registry = self.mem.stats().registry().clone();
        self.mem = txn.saved_mem;
        self.mem.bind_stats_registry(&registry);
        self.wal.truncate_to(txn.wal_start)?;
        self.wal.sync()?;
        self.stats.fsyncs.incr();
        Ok(())
    }

    /// Execute one statement. Outside a transaction this auto-commits
    /// (Begin + Stmt + Commit + fsync); inside one it only journals the
    /// statement. Failed statements have no effect anywhere — memory,
    /// journal, or disk.
    pub fn execute(&mut self, sql: &str) -> DurableResult<ExecOutcome> {
        // Writes must not slip through the read-only classification:
        // run first, journal on success. The in-memory engine guarantees
        // failed statements change nothing (statement atomicity).
        if self.txn.is_some() {
            let outcome = self.mem.execute(sql)?;
            if written(&outcome) {
                self.append(&WalRecord::Stmt { sql: sql.to_string() })?;
            }
            return Ok(outcome);
        }
        let outcome = self.mem.execute(sql)?;
        if !written(&outcome) {
            return Ok(outcome);
        }
        let seq = self.seq + 1;
        let _span = self.tracer.span("db.commit");
        self.append(&WalRecord::Begin { seq })?;
        self.append(&WalRecord::Stmt { sql: sql.to_string() })?;
        self.commit_frames(seq)?;
        self.seq = seq;
        self.maybe_checkpoint()?;
        Ok(outcome)
    }

    fn append(&mut self, rec: &WalRecord) -> DurableResult<()> {
        let bytes = self.wal.append(rec)?;
        self.stats.wal_appends.incr();
        self.stats.wal_bytes.add(bytes);
        Ok(())
    }

    fn maybe_checkpoint(&mut self) -> DurableResult<()> {
        if self.wal.len() >= CHECKPOINT_WAL_BYTES {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Fold the current state into a fresh snapshot and truncate the
    /// WAL. Safe at any commit boundary; refuses inside a transaction.
    pub fn checkpoint(&mut self) -> DurableResult<()> {
        if self.txn.is_some() {
            return Err(DurableError::Txn("cannot checkpoint inside a transaction".into()));
        }
        let _span = self.tracer.span("db.checkpoint");
        let mut writer = SnapshotWriter::new();
        let mut catalog = Vec::new();
        // `table_names` is sorted; the catalog inherits that order.
        for name in self.mem.table_names() {
            let table = self.mem.table(name).expect("listed table");
            // Primary tree: rowid (current position) → encoded row.
            let mut primary = BTreeBuilder::new();
            for (rowid, row) in table.rows().iter().enumerate() {
                let mut value = Vec::new();
                codec::put_row(&mut value, row);
                if value.len() + 32 > PAGE_PAYLOAD {
                    return Err(DurableError::Sql(SqlError::Unsupported(format!(
                        "row of {} bytes in table {name} exceeds the one-page checkpoint limit",
                        value.len()
                    ))));
                }
                primary.insert((rowid as u64).to_be_bytes().to_vec(), value);
            }
            let rows = primary.len();
            let root = primary.serialize(&mut writer);
            // Secondary trees for every column with a warm hash index.
            let mut indexes = Vec::new();
            for col in table.indexed_column_ids() {
                let mut tree = BTreeBuilder::new();
                for (rowid, row) in table.rows().iter().enumerate() {
                    let mut key = Vec::new();
                    codec::put_index_key(&mut key, &row[col]);
                    key.extend_from_slice(&(rowid as u64).to_be_bytes());
                    tree.insert(key, Vec::new());
                }
                indexes.push((col as u32, tree.serialize(&mut writer)));
            }
            catalog.push(CatalogTable {
                name: name.to_string(),
                columns: table.columns().iter().map(|c| (c.name.clone(), c.ty)).collect(),
                rows,
                root,
                indexes,
                stats_warm: table.stats_if_warm().is_some(),
            });
        }
        // The catalog always encodes at least its table count, so even a
        // zero-table database gets a page and the header points at
        // something readable.
        let catalog_bytes = recovery::encode_catalog(&catalog);
        let catalog_page = writer.page_count();
        for chunk in catalog_bytes.chunks(PAGE_PAYLOAD) {
            writer.push_page(chunk.to_vec());
        }
        let pages = writer.page_count() as u64;
        self.pager.write_snapshot(
            writer,
            catalog_page,
            catalog_bytes.len() as u32,
            self.seq,
            self.revision,
            self.mem.schema_generation(),
        )?;
        // The WAL's content is now folded into the snapshot.
        self.wal.truncate_to(0)?;
        self.wal.sync()?;
        self.stats.fsyncs.add(3); // two data barriers + the wal truncate
        self.stats.checkpoints.incr();
        self.stats.checkpoint_pages.add(pages);
        Ok(())
    }

    /// A fingerprint of the full logical state: every table's schema and
    /// rows plus `(seq, revision, schema generation)`. Two engines with
    /// equal fingerprints answer every query identically — the equality
    /// the crash harness checks across recoveries.
    pub fn state_fingerprint(&self) -> u64 {
        fingerprint_database(&self.mem, self.seq, self.revision)
    }
}

fn written(outcome: &ExecOutcome) -> bool {
    matches!(outcome, ExecOutcome::Written { .. })
}

/// Canonical-state fingerprint (see
/// [`DurableDatabase::state_fingerprint`]).
pub fn fingerprint_database(db: &Database, seq: u64, revision: u64) -> u64 {
    let mut bytes = Vec::new();
    codec::put_u64(&mut bytes, seq);
    codec::put_u64(&mut bytes, revision);
    codec::put_u64(&mut bytes, db.schema_generation());
    for name in db.table_names() {
        let t = db.table(name).expect("listed table");
        codec::put_str(&mut bytes, name);
        for c in t.columns() {
            codec::put_str(&mut bytes, &c.name);
            codec::put_u8(&mut bytes, matches!(c.ty, crate::ColumnType::Text) as u8);
        }
        for row in t.rows() {
            codec::put_row(&mut bytes, row);
        }
    }
    codec::fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemVfs;
    use crate::Value;

    fn mkdb(vfs: &MemVfs) -> DurableDatabase {
        DurableDatabase::open(vfs).unwrap()
    }

    #[test]
    fn survives_reopen() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table nodes (id int, name text)").unwrap();
        db.execute("insert into nodes values (1, 'frontend-0'), (2, 'compute-0-0')").unwrap();
        let fp = db.state_fingerprint();
        drop(db);
        let db2 = mkdb(&vfs);
        assert_eq!(db2.state_fingerprint(), fp);
        assert_eq!(db2.recovery_report().commits_replayed, 2);
        let r = db2.reader().query_ref("select name from nodes where id = 2").unwrap();
        assert_eq!(r.rows[0][0].as_text(), Some("compute-0-0"));
    }

    #[test]
    fn checkpoint_then_reopen_skips_replay() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table t (x int)").unwrap();
        for i in 0..10 {
            db.execute(&format!("insert into t values ({i})")).unwrap();
        }
        db.checkpoint().unwrap();
        db.execute("insert into t values (99)").unwrap();
        let fp = db.state_fingerprint();
        drop(db);
        let db2 = mkdb(&vfs);
        assert_eq!(db2.state_fingerprint(), fp);
        assert_eq!(db2.recovery_report().commits_replayed, 1, "only the post-checkpoint commit");
        assert_eq!(db2.reader().table("t").unwrap().len(), 11);
    }

    #[test]
    fn secondary_indexes_survive_and_verify() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table nodes (id int, ip text)").unwrap();
        db.execute("insert into nodes values (1, '10.0.0.1'), (2, '10.0.0.2')").unwrap();
        // Warm an index so the checkpoint writes a secondary tree.
        db.reader().lookup_eq("nodes", "ip", &Value::Text("10.0.0.2".into())).unwrap();
        db.checkpoint().unwrap();
        drop(db);
        let db2 = mkdb(&vfs);
        assert_eq!(db2.recovery_report().index_entries_verified, 2);
        // The recovered table already carries the warm index.
        assert_eq!(db2.reader().table("nodes").unwrap().indexed_columns(), 1);
    }

    #[test]
    fn rollback_restores_state_and_truncates_wal() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table t (x int)").unwrap();
        db.execute("insert into t values (1)").unwrap();
        let fp = db.state_fingerprint();
        let wal_len = db.wal.len();
        db.begin().unwrap();
        db.execute("insert into t values (2)").unwrap();
        db.execute("create table ghost (y int)").unwrap();
        assert_eq!(db.reader().table("t").unwrap().len(), 2);
        db.rollback().unwrap();
        assert_eq!(db.state_fingerprint(), fp);
        assert_eq!(db.wal.len(), wal_len);
        assert!(db.reader().table("ghost").is_none());
        // And a reopen agrees: the rolled-back work never existed.
        drop(db);
        assert_eq!(mkdb(&vfs).state_fingerprint(), fp);
    }

    #[test]
    fn failed_statements_are_not_journaled() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table t (x int)").unwrap();
        let appends = db.stats().wal_appends();
        assert!(db.execute("insert into t values (1, 2)").is_err());
        assert!(db.execute("insert into missing values (1)").is_err());
        // Multi-row insert with a bad row: statement atomicity means no
        // effect, so nothing may reach the journal either.
        assert!(db.execute("insert into t values (1), ('x')").is_err());
        assert_eq!(db.stats().wal_appends(), appends);
        assert_eq!(db.reader().table("t").unwrap().len(), 0);
    }

    #[test]
    fn reads_do_not_touch_the_wal() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table t (x int)").unwrap();
        let appends = db.stats().wal_appends();
        db.execute("select * from t").unwrap();
        assert_eq!(db.stats().wal_appends(), appends);
    }

    #[test]
    fn wal_growth_triggers_automatic_checkpoint() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.execute("create table t (x int, pad text)").unwrap();
        let pad = "p".repeat(512);
        for i in 0..1000 {
            db.execute(&format!("insert into t values ({i}, '{pad}')")).unwrap();
            if db.stats().checkpoints() > 0 {
                break;
            }
        }
        assert!(db.stats().checkpoints() > 0, "WAL never hit the checkpoint threshold");
        assert!(db.wal.len() < CHECKPOINT_WAL_BYTES);
        let fp = db.state_fingerprint();
        drop(db);
        assert_eq!(mkdb(&vfs).state_fingerprint(), fp);
    }

    #[test]
    fn revision_and_schema_gen_survive_recovery() {
        let vfs = MemVfs::new();
        let mut db = mkdb(&vfs);
        db.set_revision(41);
        db.execute("create table t (x int)").unwrap();
        db.set_revision(42);
        db.execute("insert into t values (1)").unwrap();
        let gen = db.reader().schema_generation();
        drop(db);
        let db2 = mkdb(&vfs);
        assert_eq!(db2.revision(), 42);
        assert_eq!(db2.reader().schema_generation(), gen);
        // Also across a checkpoint boundary.
        let mut db2 = db2;
        db2.checkpoint().unwrap();
        drop(db2);
        let db3 = mkdb(&vfs);
        assert_eq!(db3.revision(), 42);
        assert_eq!(db3.reader().schema_generation(), gen);
    }
}
