//! The pager: page-granular snapshot storage with a double-buffered
//! header, the physical half of the storage engine.
//!
//! The data file holds two fixed header slots followed by page-aligned
//! snapshot regions:
//!
//! ```text
//! [0    .. 2048)  header slot 0
//! [2048 .. 4096)  header slot 1
//! [4096 ..    )   snapshot page runs (4096-byte pages, CRC-prefixed)
//! ```
//!
//! A checkpoint is shadow-written: the complete new snapshot goes to a
//! region that does not overlap the live one (the front of the file when
//! possible, otherwise appended), is synced, and only then is the older
//! header slot overwritten with a higher generation number — the atomic
//! commit point. Recovery reads both slots and trusts whichever has a
//! valid CRC and the higher generation, so a crash at any write boundary
//! leaves either the old snapshot or the new one fully intact, never a
//! blend. After the flip the file is truncated to the end of the new
//! region, which is what keeps the file from growing without bound
//! (checkpoint *compaction*).

use crate::codec::{self, Reader};
use crate::disk::{crc32, DiskError, DiskFile, DiskResult};
use crate::recovery::RecoveryError;

/// On-disk page size.
pub const PAGE_SIZE: usize = 4096;
/// Bytes of payload per page (4 bytes go to the page CRC).
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - 4;

const HEADER_SLOT_SIZE: u64 = 2048;
const SNAPSHOT_START: u64 = 2 * HEADER_SLOT_SIZE;
const HEADER_MAGIC: u64 = 0x524F_434B_5344_4231; // "ROCKSDB1"

/// A decoded header slot: everything needed to locate and interpret the
/// live snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Monotone flip counter; the valid slot with the higher value wins.
    pub generation: u64,
    /// Byte offset of the snapshot's first page.
    pub base: u64,
    /// Number of pages in the snapshot.
    pub pages: u32,
    /// Page index of the first catalog page (B-tree pages come first).
    pub catalog_page: u32,
    /// Catalog length in bytes (spans ceil(len / PAGE_PAYLOAD) pages).
    pub catalog_len: u32,
    /// Highest commit sequence number folded into this snapshot; WAL
    /// replay skips commits at or below it.
    pub checkpoint_seq: u64,
    /// `ClusterDb` revision at checkpoint.
    pub revision: u64,
    /// Schema generation at checkpoint.
    pub schema_gen: u64,
}

fn encode_header(meta: &SnapshotMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    codec::put_u64(&mut out, HEADER_MAGIC);
    codec::put_u64(&mut out, meta.generation);
    codec::put_u64(&mut out, meta.base);
    codec::put_u32(&mut out, meta.pages);
    codec::put_u32(&mut out, meta.catalog_page);
    codec::put_u32(&mut out, meta.catalog_len);
    codec::put_u64(&mut out, meta.checkpoint_seq);
    codec::put_u64(&mut out, meta.revision);
    codec::put_u64(&mut out, meta.schema_gen);
    let crc = crc32(&out);
    codec::put_u32(&mut out, crc);
    out
}

fn decode_header(bytes: &[u8]) -> Option<SnapshotMeta> {
    // Fixed layout: six u64s + three u32s = 60 bytes + 4 CRC.
    const BODY: usize = 60;
    if bytes.len() < BODY + 4 {
        return None;
    }
    let crc = u32::from_le_bytes(bytes[BODY..BODY + 4].try_into().expect("4 bytes"));
    if crc32(&bytes[..BODY]) != crc {
        return None;
    }
    let mut r = Reader::new(&bytes[..BODY]);
    let magic = r.u64().ok()?;
    if magic != HEADER_MAGIC {
        return None;
    }
    Some(SnapshotMeta {
        generation: r.u64().ok()?,
        base: r.u64().ok()?,
        pages: r.u32().ok()?,
        catalog_page: r.u32().ok()?,
        catalog_len: r.u32().ok()?,
        checkpoint_seq: r.u64().ok()?,
        revision: r.u64().ok()?,
        schema_gen: r.u64().ok()?,
    })
}

/// Accumulates the pages of a snapshot being built; nothing touches the
/// disk until [`Pager::write_snapshot`].
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    pages: Vec<Vec<u8>>,
}

impl SnapshotWriter {
    /// An empty snapshot under construction.
    pub fn new() -> Self {
        SnapshotWriter::default()
    }

    /// Add one page (payload at most [`PAGE_PAYLOAD`] bytes, padded with
    /// zeroes); returns its page id.
    pub fn push_page(&mut self, payload: Vec<u8>) -> u32 {
        assert!(payload.len() <= PAGE_PAYLOAD, "page payload overflow: {}", payload.len());
        let id = self.pages.len() as u32;
        self.pages.push(payload);
        id
    }

    /// Pages accumulated so far.
    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }
}

/// The pager: owns the data file and the live-snapshot bookkeeping.
pub struct Pager {
    file: Box<dyn DiskFile>,
    live: Option<SnapshotMeta>,
    /// Which slot the live header occupies (the next flip targets the
    /// other one).
    live_slot: u8,
    /// File was non-empty but neither header slot decoded. Legal only
    /// when a crash interrupted the *first* checkpoint (the WAL then
    /// still holds the full history); the recovery layer decides.
    headerless: bool,
}

impl std::fmt::Debug for Pager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pager")
            .field("live", &self.live)
            .field("live_slot", &self.live_slot)
            .finish()
    }
}

impl Pager {
    /// Open the data file and locate the live snapshot, if any.
    ///
    /// Both-slots-invalid on a non-empty file sets
    /// [`headerless_damage`](Self::headerless_damage) instead of erroring:
    /// whether that state is survivable (crash before the first header
    /// flip — the WAL still has everything) or fatal (a once-valid
    /// snapshot was destroyed) is decided by the recovery layer, which
    /// can see the log.
    pub fn open(file: Box<dyn DiskFile>) -> Result<Pager, RecoveryError> {
        let len = file.len().map_err(RecoveryError::from_disk)?;
        if len == 0 {
            return Ok(Pager { file, live: None, live_slot: 1, headerless: false });
        }
        let mut slots = [None, None];
        for (i, slot) in slots.iter_mut().enumerate() {
            let off = i as u64 * HEADER_SLOT_SIZE;
            if len >= off + HEADER_SLOT_SIZE {
                let mut buf = vec![0u8; HEADER_SLOT_SIZE as usize];
                file.read_exact_at(off, &mut buf).map_err(RecoveryError::from_disk)?;
                *slot = decode_header(&buf);
            }
        }
        let (live_slot, live) = match (slots[0], slots[1]) {
            (Some(a), Some(b)) => {
                if a.generation >= b.generation {
                    (0, Some(a))
                } else {
                    (1, Some(b))
                }
            }
            (Some(a), None) => (0, Some(a)),
            (None, Some(b)) => (1, Some(b)),
            (None, None) => {
                return Ok(Pager { file, live: None, live_slot: 1, headerless: true });
            }
        };
        Ok(Pager { file, live, live_slot, headerless: false })
    }

    /// The live snapshot's metadata, if a checkpoint has ever completed.
    pub fn live(&self) -> Option<&SnapshotMeta> {
        self.live.as_ref()
    }

    /// True when the file was non-empty but held no valid header (see
    /// [`open`](Self::open)).
    pub fn headerless_damage(&self) -> bool {
        self.headerless
    }

    /// Repair a headerless file by erasing it back to emptiness, making
    /// recovery idempotent: once the decision to rebuild from the log is
    /// made, the damaged half-checkpoint must not greet the next open.
    pub fn reset_damaged(&mut self) -> DiskResult<()> {
        self.file.truncate(0)?;
        self.file.sync()?;
        self.headerless = false;
        Ok(())
    }

    /// Read and verify one page of the live snapshot.
    pub fn read_page(&self, meta: &SnapshotMeta, page: u32) -> Result<Vec<u8>, RecoveryError> {
        if page >= meta.pages {
            return Err(RecoveryError::Corrupt(format!(
                "page {page} out of range ({} pages)",
                meta.pages
            )));
        }
        let off = meta.base + page as u64 * PAGE_SIZE as u64;
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file.read_exact_at(off, &mut buf).map_err(RecoveryError::from_disk)?;
        let crc = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
        if crc32(&buf[4..]) != crc {
            return Err(RecoveryError::ChecksumMismatch(format!(
                "snapshot page {page} (offset {off}) fails its CRC"
            )));
        }
        buf.drain(..4);
        Ok(buf)
    }

    /// Reassemble the catalog bytes of the live snapshot.
    pub fn read_catalog(&self, meta: &SnapshotMeta) -> Result<Vec<u8>, RecoveryError> {
        let mut out = Vec::with_capacity(meta.catalog_len as usize);
        let mut page = meta.catalog_page;
        while out.len() < meta.catalog_len as usize {
            let payload = self.read_page(meta, page)?;
            let take = (meta.catalog_len as usize - out.len()).min(PAGE_PAYLOAD);
            out.extend_from_slice(&payload[..take]);
            page += 1;
        }
        Ok(out)
    }

    /// Shadow-write a complete snapshot and flip the header. On return
    /// the new snapshot is durable and live; on a crash anywhere inside,
    /// the previous snapshot (or fresh emptiness) is still intact.
    pub fn write_snapshot(
        &mut self,
        writer: SnapshotWriter,
        catalog_page: u32,
        catalog_len: u32,
        checkpoint_seq: u64,
        revision: u64,
        schema_gen: u64,
    ) -> DiskResult<SnapshotMeta> {
        let new_len = writer.pages.len() as u64 * PAGE_SIZE as u64;
        // Shadow placement: the front region right after the headers, if
        // the live snapshot is not in the way; otherwise right after the
        // live region. Never overlap the live pages.
        let base = match &self.live {
            None => SNAPSHOT_START,
            Some(live) => {
                let live_end = live.base + live.pages as u64 * PAGE_SIZE as u64;
                if live.base >= SNAPSHOT_START + new_len {
                    SNAPSHOT_START
                } else {
                    live_end
                }
            }
        };
        for (i, payload) in writer.pages.iter().enumerate() {
            let mut page = vec![0u8; PAGE_SIZE];
            page[4..4 + payload.len()].copy_from_slice(payload);
            let crc = crc32(&page[4..]);
            page[..4].copy_from_slice(&crc.to_le_bytes());
            self.file.write_at(base + i as u64 * PAGE_SIZE as u64, &page)?;
        }
        // Make sure the file reaches past both header slots even for an
        // empty snapshot (zero tables is legal).
        if self.file.len()? < SNAPSHOT_START {
            self.file.truncate(SNAPSHOT_START)?;
        }
        // Barrier 1: the pages must be stable before the header can
        // point at them.
        self.file.sync()?;

        let meta = SnapshotMeta {
            generation: self.live.map_or(1, |l| l.generation + 1),
            base,
            pages: writer.pages.len() as u32,
            catalog_page,
            catalog_len,
            checkpoint_seq,
            revision,
            schema_gen,
        };
        let target_slot = 1 - self.live_slot;
        self.file.write_at(target_slot as u64 * HEADER_SLOT_SIZE, &encode_header(&meta))?;
        // Barrier 2: the flip itself. After this sync the new snapshot
        // is the recovery target.
        self.file.sync()?;

        // Compaction: everything past the new region is dead.
        let end = base + new_len;
        if self.file.len()? > end.max(SNAPSHOT_START) {
            self.file.truncate(end.max(SNAPSHOT_START))?;
            self.file.sync()?;
        }
        self.live = Some(meta);
        self.live_slot = target_slot;
        self.headerless = false;
        Ok(meta)
    }

    /// Total data-file length (telemetry).
    pub fn file_len(&self) -> DiskResult<u64> {
        self.file.len()
    }
}

impl RecoveryError {
    /// Disk failures during recovery reads surface as `Corrupt` (for
    /// out-of-range reads of a truncated file) or pass `Crashed` through
    /// as an I/O-level corruption marker.
    pub(crate) fn from_disk(e: DiskError) -> RecoveryError {
        match e {
            DiskError::OutOfBounds { .. } => {
                RecoveryError::TornWrite(format!("snapshot read past end of file: {e}"))
            }
            other => RecoveryError::Corrupt(other.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::{MemVfs, Vfs};

    fn snapshot_of(bytes: &[u8]) -> SnapshotWriter {
        let mut w = SnapshotWriter::new();
        for chunk in bytes.chunks(PAGE_PAYLOAD) {
            w.push_page(chunk.to_vec());
        }
        w
    }

    #[test]
    fn header_encode_decode_round_trip() {
        let meta = SnapshotMeta {
            generation: 7,
            base: 8192,
            pages: 3,
            catalog_page: 2,
            catalog_len: 999,
            checkpoint_seq: 41,
            revision: 90,
            schema_gen: 5,
        };
        let bytes = encode_header(&meta);
        assert_eq!(decode_header(&bytes), Some(meta));
        // Any single corrupted byte must invalidate the slot.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert_eq!(decode_header(&bad), None, "byte {i} corruption undetected");
        }
    }

    #[test]
    fn fresh_file_has_no_snapshot() {
        let vfs = MemVfs::new();
        let pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        assert!(pager.live().is_none());
    }

    #[test]
    fn snapshot_round_trip_and_generation_flip() {
        let vfs = MemVfs::new();
        let mut pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        let m1 = pager.write_snapshot(snapshot_of(b"first snapshot"), 0, 14, 3, 30, 2).unwrap();
        assert_eq!(m1.generation, 1);
        assert_eq!(pager.read_catalog(&m1).unwrap(), b"first snapshot");

        let big = vec![7u8; PAGE_PAYLOAD + 100];
        let m2 = pager.write_snapshot(snapshot_of(&big), 0, big.len() as u32, 5, 50, 2).unwrap();
        assert_eq!(m2.generation, 2);
        assert_eq!(pager.read_catalog(&m2).unwrap(), big);

        // A reopen finds the latest generation.
        let pager2 = Pager::open(vfs.open("data").unwrap()).unwrap();
        let live = *pager2.live().unwrap();
        assert_eq!(live, m2);
        assert_eq!(pager2.read_catalog(&live).unwrap(), big);
    }

    #[test]
    fn page_corruption_is_detected() {
        let vfs = MemVfs::new();
        let mut pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        let meta = pager.write_snapshot(snapshot_of(b"payload"), 0, 7, 1, 1, 1).unwrap();
        // Flip a byte inside the page region, behind the pager's back.
        let mut f = vfs.open("data").unwrap();
        let mut b = [0u8; 1];
        f.read_exact_at(meta.base + 10, &mut b).unwrap();
        f.write_at(meta.base + 10, &[b[0] ^ 0xFF]).unwrap();
        f.sync().unwrap();
        let pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        let live = *pager.live().unwrap();
        assert!(matches!(pager.read_page(&live, 0), Err(RecoveryError::ChecksumMismatch(_))));
    }

    #[test]
    fn both_headers_bad_is_flagged_for_recovery() {
        let vfs = MemVfs::new();
        let mut f = vfs.open("data").unwrap();
        f.write_at(0, &vec![0xABu8; 2 * HEADER_SLOT_SIZE as usize]).unwrap();
        f.sync().unwrap();
        let pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        assert!(pager.live().is_none());
        assert!(pager.headerless_damage());
    }

    #[test]
    fn checkpoints_compact_instead_of_growing() {
        let vfs = MemVfs::new();
        let mut pager = Pager::open(vfs.open("data").unwrap()).unwrap();
        let payload = vec![1u8; 3 * PAGE_PAYLOAD];
        let mut lens = Vec::new();
        for seq in 0..8 {
            pager
                .write_snapshot(snapshot_of(&payload), 0, payload.len() as u32, seq, seq, 1)
                .unwrap();
            lens.push(pager.file_len().unwrap());
        }
        // Ping-pong placement bounds the file at headers + two regions.
        let bound = SNAPSHOT_START + 2 * 3 * PAGE_SIZE as u64;
        assert!(lens.iter().all(|&l| l <= bound), "file grew: {lens:?}");
    }
}
