//! Schema creation and the typed row records for Tables II and III.

use crate::ip::Ipv4;
use rocks_sql::{Database, Value};

/// A row of the `memberships` table (paper Table III, plus the basename
/// column the real Rocks schema uses to build hostnames like
/// `compute-0-0` and `network-0-0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Membership {
    /// Primary key.
    pub id: i64,
    /// Display name, e.g. `Compute`, `Ethernet Switches`.
    pub name: String,
    /// Appliance id: which graph root installs this class (Table III
    /// maps both switch types to appliance 4, for example).
    pub appliance: i64,
    /// Whether nodes of this class run jobs (the `Compute` column).
    pub compute: bool,
    /// Hostname prefix, e.g. `compute`, `network`, `nfs`, `web`.
    pub basename: String,
}

impl Membership {
    /// Build from a full `select * from memberships` row.
    pub fn from_row(row: &[Value]) -> Membership {
        Membership {
            id: row[0].as_int().unwrap_or(0),
            name: row[1].render(),
            appliance: row[2].as_int().unwrap_or(0),
            compute: row[3].as_text() == Some("yes"),
            basename: row[4].render(),
        }
    }
}

/// A row of the `nodes` table (paper Table II).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeRecord {
    /// Primary key.
    pub id: i64,
    /// Ethernet MAC address, the stable hardware identity.
    pub mac: String,
    /// Hostname, `<basename>-<rack>-<rank>`.
    pub name: String,
    /// Foreign key into `memberships`.
    pub membership: i64,
    /// Cabinet number.
    pub rack: i64,
    /// Position within the cabinet.
    pub rank: i64,
    /// Cluster-internal address.
    pub ip: Ipv4,
    /// Free-text comment (`Gateway machine`, `Compute node`, ...).
    pub comment: Option<String>,
}

impl NodeRecord {
    /// Convenience constructor without a comment.
    pub fn new(
        id: i64,
        mac: &str,
        name: &str,
        membership: i64,
        rack: i64,
        rank: i64,
        ip: Ipv4,
    ) -> NodeRecord {
        NodeRecord {
            id,
            mac: mac.to_string(),
            name: name.to_string(),
            membership,
            rack,
            rank,
            ip,
            comment: None,
        }
    }

    /// Attach a comment.
    pub fn with_comment(mut self, comment: &str) -> NodeRecord {
        self.comment = Some(comment.to_string());
        self
    }

    /// Build from a full `select * from nodes` row.
    pub fn from_row(row: &[Value]) -> NodeRecord {
        NodeRecord {
            id: row[0].as_int().unwrap_or(0),
            mac: row[1].render(),
            name: row[2].render(),
            membership: row[3].as_int().unwrap_or(0),
            rack: row[4].as_int().unwrap_or(0),
            rank: row[5].as_int().unwrap_or(0),
            ip: row[6].as_text().and_then(Ipv4::parse).unwrap_or(Ipv4::NETWORK),
            comment: if row[7].is_null() { None } else { Some(row[7].render()) },
        }
    }
}

/// The default memberships exactly as listed in Table III, with the
/// hostname basenames the rest of the paper shows (Table II uses
/// `network-` for Ethernet switch entries).
pub const DEFAULT_MEMBERSHIPS: &[(i64, &str, i64, bool, &str)] = &[
    (1, "Frontend", 1, false, "frontend"),
    (2, "Compute", 2, true, "compute"),
    (3, "External", 1, false, "external"),
    (4, "Ethernet Switches", 4, false, "network"),
    (5, "Myrinet Switches", 4, false, "myrinet"),
    (6, "Power Units", 5, false, "power"),
];

/// The DDL and seed statements that build the Rocks schema, in
/// execution order. Shared by the in-memory and durable open paths (the
/// durable path journals them like any other transaction, so a replayed
/// frontend rebuilds the identical schema).
pub fn schema_statements() -> Vec<String> {
    let mut stmts = vec![
        "create table nodes (id int, mac text, name text, membership int, \
         rack int, rank int, ip text, comment text)"
            .to_string(),
        "create table memberships (id int, name text, appliance int, \
         compute text, basename text)"
            .to_string(),
        "create table appliances (id int, name text, graph_node text)".to_string(),
        "create table app_globals (name text, value text)".to_string(),
    ];

    for (id, name, appliance, compute, basename) in DEFAULT_MEMBERSHIPS {
        stmts.push(format!(
            "insert into memberships values ({id}, '{name}', {appliance}, '{}', '{basename}')",
            if *compute { "yes" } else { "no" },
        ));
    }

    // Appliances: graph roots (paper Figure 4 shows `compute` and
    // `frontend` as roots; switches and PDUs are tracked but not
    // kickstarted).
    for (id, name, graph_node) in [
        (1, "frontend", "frontend"),
        (2, "compute", "compute"),
        (3, "nfs", "nfs-server"),
        (4, "switch", ""),
        (5, "power", ""),
    ] {
        stmts.push(format!("insert into appliances values ({id}, '{name}', '{graph_node}')"));
    }
    stmts
}

/// Create the Rocks tables and seed Table III's memberships.
pub fn create_schema(db: &mut Database) {
    for stmt in schema_statements() {
        db.execute(&stmt).expect("schema statement");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_creates_all_tables() {
        let mut db = Database::new();
        create_schema(&mut db);
        for table in ["nodes", "memberships", "appliances", "app_globals"] {
            assert!(db.table(table).is_some(), "{table} missing");
        }
    }

    #[test]
    fn membership_round_trip_via_rows() {
        let mut db = Database::new();
        create_schema(&mut db);
        let result = db.query("select * from memberships where id = 2").unwrap();
        let m = Membership::from_row(&result.rows[0]);
        assert_eq!(m.name, "Compute");
        assert!(m.compute);
        assert_eq!(m.basename, "compute");
    }

    #[test]
    fn node_record_round_trip() {
        let mut db = Database::new();
        create_schema(&mut db);
        db.execute(
            "insert into nodes values (4, '00:50:8b:e0:3a:a7', 'compute-0-0', 2, 0, 0, \
             '10.255.255.245', 'Compute node')",
        )
        .unwrap();
        let result = db.query("select * from nodes").unwrap();
        let n = NodeRecord::from_row(&result.rows[0]);
        assert_eq!(n.name, "compute-0-0");
        assert_eq!(n.ip, Ipv4::new(10, 255, 255, 245));
        assert_eq!(n.comment.as_deref(), Some("Compute node"));
    }

    #[test]
    fn table_iii_ids_are_exact() {
        // Guard against reordering: the paper's Table III ids are part of
        // the reproduction.
        let ids: Vec<i64> = DEFAULT_MEMBERSHIPS.iter().map(|(id, ..)| *id).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5, 6]);
        let compute_flags: Vec<bool> =
            DEFAULT_MEMBERSHIPS.iter().map(|(_, _, _, c, _)| *c).collect();
        assert_eq!(compute_flags, vec![false, true, false, false, false, false]);
    }
}
