//! IPv4 helpers for cluster address management.
//!
//! Rocks clusters use the private 10.0.0.0/8 network internally; the
//! frontend takes `10.1.1.1` and insert-ethers hands out addresses
//! descending from `10.255.255.254` (Table II shows the pattern:
//! `10.255.255.253`, `.249`, `.245`, ...).

use std::fmt;

/// A plain IPv4 address with ordering (descending allocation needs it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4(pub u32);

impl Ipv4 {
    /// From dotted quads.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Ipv4 {
        Ipv4(((a as u32) << 24) | ((b as u32) << 16) | ((c as u32) << 8) | d as u32)
    }

    /// Parse dotted-quad text.
    pub fn parse(s: &str) -> Option<Ipv4> {
        let mut parts = s.split('.');
        let mut octets = [0u8; 4];
        for octet in &mut octets {
            *octet = parts.next()?.parse().ok()?;
        }
        if parts.next().is_some() {
            return None;
        }
        Some(Ipv4::new(octets[0], octets[1], octets[2], octets[3]))
    }

    /// The four octets.
    pub fn octets(self) -> [u8; 4] {
        [(self.0 >> 24) as u8, (self.0 >> 16) as u8, (self.0 >> 8) as u8, self.0 as u8]
    }

    /// The previous address (wrapping is the caller's concern; allocation
    /// bounds-checks against the network base).
    pub fn prev(self) -> Ipv4 {
        Ipv4(self.0.wrapping_sub(1))
    }

    /// The next address.
    pub fn next(self) -> Ipv4 {
        Ipv4(self.0.wrapping_add(1))
    }

    /// True when `self` lies within `network/prefix_len`.
    pub fn in_network(self, network: Ipv4, prefix_len: u8) -> bool {
        if prefix_len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - prefix_len as u32);
        (self.0 & mask) == (network.0 & mask)
    }

    /// The frontend's conventional internal address.
    pub const FRONTEND: Ipv4 = Ipv4::new(10, 1, 1, 1);
    /// The top of the insert-ethers allocation range.
    pub const ALLOC_TOP: Ipv4 = Ipv4::new(10, 255, 255, 254);
    /// The cluster-internal network base.
    pub const NETWORK: Ipv4 = Ipv4::new(10, 0, 0, 0);
    /// The cluster-internal netmask prefix length.
    pub const PREFIX_LEN: u8 = 8;
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Allocate the highest free address at or below `top`, avoiding `used`,
/// staying inside the cluster network. This matches insert-ethers'
/// "determines the next *free* IP address" with the descending convention
/// visible in Table II.
pub fn alloc_descending(top: Ipv4, used: &[Ipv4]) -> Option<Ipv4> {
    let mut candidate = top;
    loop {
        if !candidate.in_network(Ipv4::NETWORK, Ipv4::PREFIX_LEN) {
            return None;
        }
        if !used.contains(&candidate) && candidate != Ipv4::FRONTEND {
            return Some(candidate);
        }
        candidate = candidate.prev();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["10.1.1.1", "10.255.255.254", "0.0.0.0", "255.255.255.255"] {
            assert_eq!(Ipv4::parse(s).unwrap().to_string(), s);
        }
        assert_eq!(Ipv4::parse("10.1.1"), None);
        assert_eq!(Ipv4::parse("10.1.1.1.1"), None);
        assert_eq!(Ipv4::parse("10.1.1.300"), None);
        assert_eq!(Ipv4::parse("ten.one.one.one"), None);
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Ipv4::new(10, 255, 255, 254) > Ipv4::new(10, 255, 255, 245));
        assert!(Ipv4::new(10, 1, 1, 1) < Ipv4::new(10, 2, 0, 0));
    }

    #[test]
    fn prev_next() {
        assert_eq!(Ipv4::new(10, 255, 255, 254).prev(), Ipv4::new(10, 255, 255, 253));
        assert_eq!(Ipv4::new(10, 0, 0, 255).next(), Ipv4::new(10, 0, 1, 0));
        assert_eq!(Ipv4::new(10, 1, 0, 0).prev(), Ipv4::new(10, 0, 255, 255));
    }

    #[test]
    fn network_membership() {
        assert!(Ipv4::new(10, 9, 9, 9).in_network(Ipv4::NETWORK, 8));
        assert!(!Ipv4::new(11, 0, 0, 1).in_network(Ipv4::NETWORK, 8));
        assert!(Ipv4::new(192, 168, 1, 5).in_network(Ipv4::new(192, 168, 1, 0), 24));
        assert!(!Ipv4::new(192, 168, 2, 5).in_network(Ipv4::new(192, 168, 1, 0), 24));
    }

    #[test]
    fn descending_allocation_skips_used() {
        let used = vec![
            Ipv4::new(10, 255, 255, 254),
            Ipv4::new(10, 255, 255, 253),
            Ipv4::new(10, 255, 255, 251),
        ];
        assert_eq!(alloc_descending(Ipv4::ALLOC_TOP, &used), Some(Ipv4::new(10, 255, 255, 252)));
        assert_eq!(alloc_descending(Ipv4::ALLOC_TOP, &[]), Some(Ipv4::ALLOC_TOP));
    }

    #[test]
    fn allocation_never_hands_out_frontend_ip() {
        // Exhaustively walking down to the frontend address would take a
        // while; start just above it instead.
        let top = Ipv4::FRONTEND.next();
        let got = alloc_descending(top, &[top]);
        assert_eq!(got, Some(Ipv4::FRONTEND.prev()));
        assert_ne!(got, Some(Ipv4::FRONTEND));
    }

    #[test]
    fn allocation_exhaustion_returns_none() {
        // A /31-equivalent scenario: everything from top down to the
        // network edge used. Use a tiny custom walk by filling all of
        // 10.0.0.0..=10.0.0.1 and starting at 10.0.0.1.
        let used: Vec<Ipv4> = vec![Ipv4::new(10, 0, 0, 0), Ipv4::new(10, 0, 0, 1)];
        assert_eq!(alloc_descending(Ipv4::new(10, 0, 0, 1), &used), None);
    }
}
