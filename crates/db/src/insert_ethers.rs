//! `insert-ethers`: integrating new hardware into the cluster database.
//!
//! Paper §6.4: "Insert-ethers monitors syslog messages for DHCP requests
//! from new hosts and when found, generates a hostname, determines the
//! next free IP address, binds the hostname and IP address to its Ethernet
//! MAC address, and inserts this information into the database.
//! Insert-ethers then rebuilds service-specific configuration files by
//! running queries against the database, and restarting the respective
//! services." Nodes are booted *sequentially* so rack/rank follow
//! physical position.

use crate::ip::{alloc_descending, Ipv4};
use crate::reports;
use crate::schema::NodeRecord;
use crate::{ClusterDb, DbError, Result};

/// One observed DHCP DISCOVER from an unknown host, as insert-ethers sees
/// it via syslog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhcpRequest {
    /// The requesting NIC's MAC address.
    pub mac: String,
}

/// A running insert-ethers session: an appliance class (chosen by the
/// administrator in the real curses UI) plus the cabinet being populated.
#[derive(Debug)]
pub struct InsertEthers<'a> {
    db: &'a mut ClusterDb,
    membership_id: i64,
    rack: i64,
    /// Rank for the next node; advances as nodes are integrated.
    next_rank: i64,
    /// Reports regenerated after each insertion (the paper's "rebuilds
    /// service-specific configuration files").
    pub last_reports: Option<reports::GeneratedReports>,
}

impl<'a> InsertEthers<'a> {
    /// Begin integrating nodes of membership `membership_name` into
    /// cabinet `rack`. Rank continues from the database's current maximum
    /// so a second session appends rather than collides.
    pub fn start(db: &'a mut ClusterDb, membership_name: &str, rack: i64) -> Result<Self> {
        let membership = db.membership_by_name(membership_name)?;
        let next_rank = db.max_rank(membership.id, rack)?.map_or(0, |r| r + 1);
        Ok(InsertEthers { db, membership_id: membership.id, rack, next_rank, last_reports: None })
    }

    /// Handle one DHCP request: name the node, allocate an address,
    /// insert the row, regenerate reports. Returns the new record.
    ///
    /// A request from an already-known MAC is *not* an error — booting an
    /// installed node re-DHCPs — it is simply ignored (returns `Ok(None)`).
    pub fn observe(&mut self, request: &DhcpRequest) -> Result<Option<NodeRecord>> {
        // Indexed read-only probe: a re-DHCPing installed node must not
        // bump the revision (and so must not invalidate profile caches).
        if self.db.node_by_mac(&request.mac)?.is_some() {
            return Ok(None);
        }

        let membership = self.db.membership(self.membership_id)?;
        let id = self.db.next_node_id()?;
        let rank = self.next_rank;
        let name = format!("{}-{}-{}", membership.basename, self.rack, rank);
        let used = self.db.used_ips()?;
        let ip = alloc_descending(Ipv4::ALLOC_TOP, &used).ok_or(DbError::NoFreeAddress)?;

        let record = NodeRecord {
            id,
            mac: request.mac.clone(),
            name,
            membership: membership.id,
            rack: self.rack,
            rank,
            ip,
            comment: Some(format!("{} node", membership.name)),
        };
        self.db.add_node(&record)?;
        self.next_rank += 1;

        // Rebuild the generated configuration files from the database.
        self.last_reports = Some(reports::generate_all(self.db)?);
        Ok(Some(record))
    }

    /// Integrate a whole sequence of boot events (the sequential cabinet
    /// walk the paper describes). Returns the records created.
    pub fn observe_all(&mut self, requests: &[DhcpRequest]) -> Result<Vec<NodeRecord>> {
        let mut out = Vec::new();
        for request in requests {
            if let Some(record) = self.observe(request)? {
                out.push(record);
            }
        }
        Ok(out)
    }
}

/// Replace failed hardware while keeping the node's identity (§3.1:
/// clusters "evolve into heterogeneous systems ... as failed components
/// are replaced"). The new machine keeps the hostname, IP, rack and rank
/// — only the MAC binding changes — so generated configuration stays
/// stable and the next boot reinstalls the same appliance.
pub fn replace_node(db: &mut ClusterDb, name: &str, new_mac: &str) -> Result<NodeRecord> {
    let _ = db.node_by_name(name)?; // must exist
    let clash = db.node_by_mac(new_mac)?.map(|n| n.name);
    if let Some(owner) = clash {
        if owner != name {
            return Err(DbError::DuplicateMac(new_mac.to_string()));
        }
    }
    db.execute_raw(&format!(
        "update nodes set mac = '{}' where name = '{}'",
        crate::sql_escape(new_mac),
        crate::sql_escape(name)
    ))?;
    reports::generate_all(db)?;
    db.node_by_name(name)
}

/// Register the frontend itself — done at frontend install time, before
/// any insert-ethers session ("When the frontend machine is installed from
/// the Rocks CD distribution, the database is created, and an entry for
/// this machine is added").
pub fn register_frontend(db: &mut ClusterDb, mac: &str, name: &str) -> Result<NodeRecord> {
    let id = db.next_node_id()?;
    let record = NodeRecord {
        id,
        mac: mac.to_string(),
        name: name.to_string(),
        membership: 1,
        rack: 0,
        rank: 0,
        ip: Ipv4::FRONTEND,
        comment: Some("Gateway machine".to_string()),
    };
    db.add_node(&record)?;
    Ok(record)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(i: u8) -> String {
        format!("00:50:8b:e0:00:{i:02x}")
    }

    #[test]
    fn sequential_integration_assigns_rack_rank_and_descending_ips() {
        let mut db = ClusterDb::new();
        register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
        let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        let reqs: Vec<DhcpRequest> = (1..=4).map(|i| DhcpRequest { mac: mac(i) }).collect();
        let records = session.observe_all(&reqs).unwrap();

        assert_eq!(records.len(), 4);
        assert_eq!(records[0].name, "compute-0-0");
        assert_eq!(records[3].name, "compute-0-3");
        assert_eq!(records[0].ip, Ipv4::new(10, 255, 255, 254));
        assert_eq!(records[1].ip, Ipv4::new(10, 255, 255, 253));
        assert_eq!(records[0].rank, 0);
        assert_eq!(records[3].rank, 3);
        assert!(records.iter().all(|r| r.rack == 0));
    }

    #[test]
    fn rebooted_known_node_is_ignored() {
        let mut db = ClusterDb::new();
        let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        let req = DhcpRequest { mac: mac(1) };
        assert!(session.observe(&req).unwrap().is_some());
        let revision = session.db.revision();
        assert!(session.observe(&req).unwrap().is_none());
        assert_eq!(session.db.nodes().unwrap().len(), 1);
        assert_eq!(
            session.db.revision(),
            revision,
            "ignoring a known MAC is a pure read and must not invalidate caches"
        );
    }

    #[test]
    fn second_session_continues_rank() {
        let mut db = ClusterDb::new();
        {
            let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
            s.observe(&DhcpRequest { mac: mac(1) }).unwrap();
            s.observe(&DhcpRequest { mac: mac(2) }).unwrap();
        }
        {
            let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
            let r = s.observe(&DhcpRequest { mac: mac(3) }).unwrap().unwrap();
            assert_eq!(r.name, "compute-0-2");
        }
    }

    #[test]
    fn different_membership_uses_its_basename() {
        let mut db = ClusterDb::new();
        let mut s = InsertEthers::start(&mut db, "Ethernet Switches", 0).unwrap();
        let r = s.observe(&DhcpRequest { mac: mac(9) }).unwrap().unwrap();
        assert_eq!(r.name, "network-0-0"); // Table II's switch entry
    }

    #[test]
    fn unknown_membership_errors() {
        let mut db = ClusterDb::new();
        assert!(matches!(
            InsertEthers::start(&mut db, "Toasters", 0),
            Err(DbError::NoSuchMembership(_))
        ));
    }

    #[test]
    fn reports_are_regenerated_after_each_insert() {
        let mut db = ClusterDb::new();
        register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
        let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        s.observe(&DhcpRequest { mac: mac(1) }).unwrap();
        let reports = s.last_reports.as_ref().unwrap();
        assert!(reports.hosts.contains("compute-0-0"));
        assert!(reports.dhcpd_conf.contains(&mac(1)));
        assert!(reports.pbs_nodes.contains("compute-0-0"));
    }

    #[test]
    fn replace_node_keeps_identity_changes_mac() {
        let mut db = ClusterDb::new();
        let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        let original = s.observe(&DhcpRequest { mac: mac(1) }).unwrap().unwrap();

        let replaced = replace_node(&mut db, "compute-0-0", &mac(99)).unwrap();
        assert_eq!(replaced.name, original.name);
        assert_eq!(replaced.ip, original.ip);
        assert_eq!(replaced.rack, original.rack);
        assert_eq!(replaced.rank, original.rank);
        assert_eq!(replaced.mac, mac(99));

        // The old MAC is gone; the new one answers.
        let rows = db
            .sql_ref()
            .query_ref(&format!("select name from nodes where mac = '{}'", mac(1)))
            .unwrap();
        assert!(rows.rows.is_empty());
    }

    #[test]
    fn replace_node_rejects_stolen_mac() {
        let mut db = ClusterDb::new();
        let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
        s.observe(&DhcpRequest { mac: mac(1) }).unwrap();
        s.observe(&DhcpRequest { mac: mac(2) }).unwrap();
        assert!(matches!(
            replace_node(&mut db, "compute-0-0", &mac(2)),
            Err(DbError::DuplicateMac(_))
        ));
        // Re-asserting a node's own MAC is a no-op, not an error.
        assert!(replace_node(&mut db, "compute-0-0", &mac(1)).is_ok());
    }

    #[test]
    fn separate_racks_restart_rank_at_zero() {
        let mut db = ClusterDb::new();
        {
            let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
            s.observe(&DhcpRequest { mac: mac(1) }).unwrap();
        }
        let mut s = InsertEthers::start(&mut db, "Compute", 1).unwrap();
        let r = s.observe(&DhcpRequest { mac: mac(2) }).unwrap().unwrap();
        assert_eq!(r.name, "compute-1-0");
    }
}
