#![warn(missing_docs)]

//! The Rocks cluster database (paper §6.4).
//!
//! "Rocks clusters use a MySQL database for site configuration. The two
//! key tables we provide are, 1) a site-specific configuration table and,
//! 2) a nodes table. From these tables we generate the /etc/hosts,
//! /etc/dhcpd.conf, and PBS configuration files."
//!
//! This crate layers the Rocks schema and tooling over the [`rocks_sql`]
//! engine:
//!
//! * [`schema`] — creates and seeds the `nodes`, `memberships`,
//!   `appliances`, and `app_globals` tables (Tables II and III),
//! * [`ClusterDb`] — a typed facade over the SQL tables, while still
//!   accepting raw SQL for the `--query` interface,
//! * [`insert_ethers`] — the discovery tool that watches DHCP requests,
//!   names new nodes, allocates addresses, and refreshes reports,
//! * [`reports`] — the generated service configuration files
//!   (`/etc/hosts`, `/etc/dhcpd.conf`, the PBS nodes file),
//! * [`ip`] — small IPv4 helpers for address allocation.

pub mod insert_ethers;
pub mod ip;
pub mod reports;
pub mod schema;

pub use insert_ethers::{DhcpRequest, InsertEthers};
pub use ip::Ipv4;
pub use schema::{Membership, NodeRecord, DEFAULT_MEMBERSHIPS};

use rocks_sql::{Database, DurableDatabase, DurableError, RecoveryReport, SqlError, Value, Vfs};
use rocks_trace::{Registry, Tracer};

/// Errors from cluster-database operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Underlying SQL failure.
    Sql(SqlError),
    /// Storage-engine failure (durable mode only): disk, recovery, or
    /// transaction misuse.
    Storage(DurableError),
    /// Unknown membership id or name.
    NoSuchMembership(String),
    /// Duplicate MAC address registration.
    DuplicateMac(String),
    /// Address pool exhausted.
    NoFreeAddress,
    /// Node lookup failed.
    NoSuchNode(String),
}

impl From<SqlError> for DbError {
    fn from(e: SqlError) -> Self {
        DbError::Sql(e)
    }
}

impl From<DurableError> for DbError {
    fn from(e: DurableError) -> Self {
        // Plain statement failures surface identically in both modes.
        match e {
            DurableError::Sql(e) => DbError::Sql(e),
            other => DbError::Storage(other),
        }
    }
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Sql(e) => write!(f, "sql: {e}"),
            DbError::Storage(e) => write!(f, "storage: {e}"),
            DbError::NoSuchMembership(m) => write!(f, "no such membership: {m}"),
            DbError::DuplicateMac(m) => write!(f, "MAC already registered: {m}"),
            DbError::NoFreeAddress => write!(f, "no free IP address in the cluster network"),
            DbError::NoSuchNode(n) => write!(f, "no such node: {n}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, DbError>;

/// The cluster database: a [`rocks_sql::Database`] holding the Rocks
/// schema, plus typed accessors.
///
/// Every mutation bumps a monotonically increasing [`revision`]
/// counter. Caches layered above the database (notably the Kickstart
/// generation service's profile cache) key their entries on this
/// revision, so a `nodes`/`memberships` write — or any statement issued
/// through the raw [`sql`] handle — invalidates them automatically.
///
/// [`revision`]: Self::revision
/// [`sql`]: Self::sql
#[derive(Debug)]
enum Store {
    /// The default volatile engine.
    Memory(Database),
    /// WAL + checkpoint storage: state survives a restart (or crash) of
    /// the frontend.
    Durable(Box<DurableDatabase>),
}

/// See the [crate docs](crate) and [`Store`].
#[derive(Debug)]
pub struct ClusterDb {
    store: Store,
    revision: u64,
    /// Memory-mode transaction state: the image and revision saved at
    /// `begin_txn`. (Durable mode keeps its own inside the engine.)
    mem_txn: Option<(Database, u64)>,
}

impl Clone for ClusterDb {
    /// Cloning always yields a *detached in-memory* database with the
    /// same contents and revision: simulation fan-out wants cheap
    /// independent copies, never two writers of one WAL.
    fn clone(&self) -> Self {
        ClusterDb {
            store: Store::Memory(self.sql_ref().clone()),
            revision: self.revision,
            mem_txn: None,
        }
    }
}

impl Default for ClusterDb {
    fn default() -> Self {
        Self::new()
    }
}

impl ClusterDb {
    /// Create a database with the Rocks schema and the default
    /// memberships of Table III.
    pub fn new() -> Self {
        let mut db = Database::new();
        schema::create_schema(&mut db);
        ClusterDb { store: Store::Memory(db), revision: 0, mem_txn: None }
    }

    /// Open (or create) a durable cluster database on `vfs`. A fresh
    /// store is seeded with the Rocks schema in one transaction; an
    /// existing one is recovered — revision counter included — from its
    /// snapshot and log.
    pub fn open_durable(vfs: &dyn Vfs) -> Result<Self> {
        Self::open_durable_with_tracer(vfs, Tracer::disabled())
    }

    /// [`open_durable`](Self::open_durable) with storage telemetry
    /// flowing into `tracer`.
    pub fn open_durable_with_tracer(vfs: &dyn Vfs, tracer: Tracer) -> Result<Self> {
        let mut d = DurableDatabase::open_with_tracer(vfs, tracer).map_err(DbError::from)?;
        let fresh = d.seq() == 0 && d.reader().table_names().is_empty();
        if fresh {
            d.set_revision(0);
            d.begin().map_err(DbError::from)?;
            for stmt in schema::schema_statements() {
                d.execute(&stmt).map_err(DbError::from)?;
            }
            d.commit().map_err(DbError::from)?;
        }
        let revision = d.revision();
        Ok(ClusterDb { store: Store::Durable(Box::new(d)), revision, mem_txn: None })
    }

    /// True when backed by the durable engine.
    pub fn is_durable(&self) -> bool {
        matches!(self.store, Store::Durable(_))
    }

    /// What open-time recovery found and did (durable mode only).
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        match &self.store {
            Store::Memory(_) => None,
            Store::Durable(d) => Some(d.recovery_report()),
        }
    }

    /// Force a checkpoint (durable mode; a no-op in memory mode).
    pub fn checkpoint(&mut self) -> Result<()> {
        match &mut self.store {
            Store::Memory(_) => Ok(()),
            Store::Durable(d) => Ok(d.checkpoint()?),
        }
    }

    /// Route all query/storage counters into `registry`. Not a write:
    /// the revision is untouched.
    pub fn bind_stats_registry(&mut self, registry: &Registry) {
        match &mut self.store {
            Store::Memory(db) => db.bind_stats_registry(registry),
            Store::Durable(d) => d.bind_stats_registry(registry),
        }
    }

    /// Execute one raw SQL write in whichever store backs this database,
    /// bumping the revision. This is the mode-agnostic form of
    /// [`sql`](Self::sql) for tools that issue statement text.
    pub fn execute_raw(&mut self, sql: &str) -> Result<()> {
        self.exec(sql)
    }

    /// Run `sql` against the store, bumping the revision first so a
    /// durable commit journals the post-write revision.
    fn exec(&mut self, sql: &str) -> Result<()> {
        self.revision += 1;
        match &mut self.store {
            Store::Memory(db) => {
                db.execute(sql)?;
            }
            Store::Durable(d) => {
                d.set_revision(self.revision);
                d.execute(sql)?;
            }
        }
        Ok(())
    }

    /// Open an explicit transaction. Writes until
    /// [`commit_txn`](Self::commit_txn) apply (and, in durable mode,
    /// become durable) together; [`rollback_txn`](Self::rollback_txn)
    /// undoes all of them.
    pub fn begin_txn(&mut self) -> Result<()> {
        match &mut self.store {
            Store::Memory(db) => {
                if self.mem_txn.is_some() {
                    return Err(DbError::Storage(DurableError::Txn(
                        "transaction already open".into(),
                    )));
                }
                self.mem_txn = Some((db.clone(), self.revision));
                Ok(())
            }
            Store::Durable(d) => Ok(d.begin()?),
        }
    }

    /// Commit the open transaction.
    pub fn commit_txn(&mut self) -> Result<()> {
        match &mut self.store {
            Store::Memory(_) => {
                self.mem_txn.take().ok_or_else(|| {
                    DbError::Storage(DurableError::Txn("no open transaction".into()))
                })?;
                Ok(())
            }
            Store::Durable(d) => Ok(d.commit()?),
        }
    }

    /// Roll the open transaction back. The database contents return to
    /// their pre-transaction state, but the revision moves strictly
    /// *forward* past every provisional value handed out inside the
    /// transaction — caches may have keyed entries on those revisions
    /// against rolled-back contents, and a revision that never repeats is
    /// what keeps such entries unreachable forever.
    pub fn rollback_txn(&mut self) -> Result<()> {
        match &mut self.store {
            Store::Memory(db) => {
                let (saved, _) = self.mem_txn.take().ok_or_else(|| {
                    DbError::Storage(DurableError::Txn("no open transaction".into()))
                })?;
                *db = saved;
            }
            Store::Durable(d) => {
                d.rollback()?;
            }
        }
        self.revision += 1;
        if let Store::Durable(d) = &mut self.store {
            d.set_revision(self.revision);
        }
        Ok(())
    }

    /// True while an explicit transaction is open.
    pub fn in_txn(&self) -> bool {
        match &self.store {
            Store::Memory(_) => self.mem_txn.is_some(),
            Store::Durable(d) => d.in_txn(),
        }
    }

    /// The mutation counter. Strictly increases on every write (typed or
    /// raw); equal revisions guarantee identical database contents, which
    /// is the invalidation contract the generation-service cache relies on.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// Raw SQL access — the paper deliberately exposes this to
    /// administrators (`cluster-kill --query="select ..."`).
    ///
    /// Handing out `&mut Database` means any statement — including
    /// writes — may run, so the revision is bumped conservatively. Use
    /// [`sql_ref`](Self::sql_ref) for queries that must not invalidate
    /// caches.
    ///
    /// # Panics
    ///
    /// In durable mode: statements that bypass the journal would be
    /// silently lost on restart. Use [`execute_raw`](Self::execute_raw)
    /// for writes and [`sql_ref`](Self::sql_ref) for queries instead.
    pub fn sql(&mut self) -> &mut Database {
        self.revision += 1;
        match &mut self.store {
            Store::Memory(db) => db,
            Store::Durable(_) => panic!(
                "ClusterDb::sql() bypasses the write-ahead log; durable mode requires \
                 execute_raw() for writes or sql_ref() for queries"
            ),
        }
    }

    /// Shared read-only SQL access: `SELECT` only, callable from any
    /// number of threads at once, never bumps the revision. This is the
    /// read path the parallel Kickstart generation workers use.
    pub fn sql_ref(&self) -> &Database {
        match &self.store {
            Store::Memory(db) => db,
            Store::Durable(d) => d.reader(),
        }
    }

    /// Run a query and return the first column as strings: the exact
    /// contract of the `--query` flag in §6.4. Read-only — shareable
    /// across threads.
    pub fn query_names(&self, sql: &str) -> Result<Vec<String>> {
        Ok(self.sql_ref().query_column_ref(sql)?)
    }

    /// Register a membership (appliance class) and return its id.
    pub fn add_membership(&mut self, m: &Membership) -> Result<()> {
        self.exec(&format!(
            "insert into memberships values ({}, '{}', {}, '{}', '{}')",
            m.id,
            sql_escape(&m.name),
            m.appliance,
            if m.compute { "yes" } else { "no" },
            sql_escape(&m.basename),
        ))?;
        Ok(())
    }

    /// Look up a membership by id. Read-only: an indexed point lookup
    /// through [`rocks_sql::Database::lookup_eq`], no SQL text involved.
    pub fn membership(&self, id: i64) -> Result<Membership> {
        let result = self.sql_ref().lookup_eq("memberships", "id", &Value::Int(id))?;
        let row = result.rows.first().ok_or(DbError::NoSuchMembership(id.to_string()))?;
        Ok(Membership::from_row(row))
    }

    /// Look up a membership by (case-insensitive) name. Read-only.
    pub fn membership_by_name(&self, name: &str) -> Result<Membership> {
        let result = self.sql_ref().query_ref("select * from memberships")?;
        result
            .rows
            .iter()
            .map(|r| Membership::from_row(r))
            .find(|m| m.name.eq_ignore_ascii_case(name))
            .ok_or_else(|| DbError::NoSuchMembership(name.to_string()))
    }

    /// All memberships, ordered by id. Read-only.
    pub fn memberships(&self) -> Result<Vec<Membership>> {
        let result = self.sql_ref().query_ref("select * from memberships order by id")?;
        Ok(result.rows.iter().map(|r| Membership::from_row(r)).collect())
    }

    /// Insert a node row exactly as given (used by insert-ethers and by
    /// the Table II reproduction). Rejects duplicate MACs.
    pub fn add_node(&mut self, node: &NodeRecord) -> Result<()> {
        if self.node_by_mac(&node.mac)?.is_some() {
            return Err(DbError::DuplicateMac(node.mac.clone()));
        }
        let comment = match &node.comment {
            Some(c) => format!("'{}'", sql_escape(c)),
            None => "NULL".to_string(),
        };
        self.exec(&format!(
            "insert into nodes values ({}, '{}', '{}', {}, {}, {}, '{}', {})",
            node.id,
            sql_escape(&node.mac),
            sql_escape(&node.name),
            node.membership,
            node.rack,
            node.rank,
            node.ip,
            comment,
        ))?;
        Ok(())
    }

    /// All nodes ordered by id. Read-only.
    pub fn nodes(&self) -> Result<Vec<NodeRecord>> {
        let result = self.sql_ref().query_ref("select * from nodes order by id")?;
        Ok(result.rows.iter().map(|r| NodeRecord::from_row(r)).collect())
    }

    /// A node by name. Read-only indexed lookup.
    pub fn node_by_name(&self, name: &str) -> Result<NodeRecord> {
        let result = self.sql_ref().lookup_eq("nodes", "name", &Value::Text(name.to_string()))?;
        let row = result.rows.first().ok_or_else(|| DbError::NoSuchNode(name.to_string()))?;
        Ok(NodeRecord::from_row(row))
    }

    /// A node by its cluster-internal IP address — the lookup that keys
    /// the §6.1 CGI flow ("uses the requesting node's IP address").
    /// Read-only: generation workers resolve requesters concurrently, and
    /// the hash index on `nodes.ip` makes each probe O(1) instead of a
    /// table scan per request.
    pub fn node_by_ip(&self, ip: &str) -> Result<NodeRecord> {
        let result = self.sql_ref().lookup_eq("nodes", "ip", &Value::Text(ip.to_string()))?;
        let row = result.rows.first().ok_or_else(|| DbError::NoSuchNode(ip.to_string()))?;
        Ok(NodeRecord::from_row(row))
    }

    /// A node by MAC address, or `None` when the MAC is unknown.
    /// Read-only — this is the insert-ethers "have we seen this host?"
    /// probe, which must not bump the revision (a rebooting installed
    /// node would otherwise invalidate every cached profile).
    pub fn node_by_mac(&self, mac: &str) -> Result<Option<NodeRecord>> {
        let result = self.sql_ref().lookup_eq("nodes", "mac", &Value::Text(mac.to_string()))?;
        Ok(result.rows.first().map(|r| NodeRecord::from_row(r)))
    }

    /// The graph root (appliance name) that kickstarts `appliance`, or
    /// `None` when the appliance is tracked but not kickstartable
    /// (switches, PDUs). Read-only.
    pub fn appliance_root(&self, appliance: i64) -> Result<Option<String>> {
        let result = self.sql_ref().lookup_eq("appliances", "id", &Value::Int(appliance))?;
        // Column 2 is `graph_node`; empty means "tracked, not kickstartable".
        Ok(result.rows.first().map(|r| r[2].render()).filter(|r| !r.is_empty()))
    }

    /// Nodes whose membership is flagged `compute = 'yes'` — the join the
    /// paper demonstrates (§6.4). Read-only.
    pub fn compute_nodes(&self) -> Result<Vec<NodeRecord>> {
        let result = self.sql_ref().query_ref(
            "select nodes.id, nodes.mac, nodes.name, nodes.membership, nodes.rack, \
             nodes.rank, nodes.ip, nodes.comment \
             from nodes, memberships \
             where nodes.membership = memberships.id and memberships.compute = 'yes' \
             order by nodes.id",
        )?;
        Ok(result.rows.iter().map(|r| NodeRecord::from_row(r)).collect())
    }

    /// Next unused node id. Read-only.
    pub fn next_node_id(&self) -> Result<i64> {
        let result = self.sql_ref().query_ref("select max(id) from nodes")?;
        Ok(match result.rows[0][0] {
            Value::Int(n) => n + 1,
            _ => 1,
        })
    }

    /// Highest rank already used in `(membership, rack)`, or None.
    /// Read-only.
    pub fn max_rank(&self, membership: i64, rack: i64) -> Result<Option<i64>> {
        let result = self.sql_ref().query_ref(&format!(
            "select max(rank) from nodes where membership = {membership} and rack = {rack}"
        ))?;
        Ok(result.rows[0][0].as_int())
    }

    /// Set a site-global key (the "site-specific configuration table").
    /// The delete + insert pair is one logical write: in durable mode it
    /// runs inside a transaction so a crash between the two statements
    /// cannot resurrect a key half-set.
    pub fn set_global(&mut self, key: &str, value: &str) -> Result<()> {
        let delete = format!("delete from app_globals where name = '{}'", sql_escape(key));
        let insert = format!(
            "insert into app_globals values ('{}', '{}')",
            sql_escape(key),
            sql_escape(value)
        );
        self.revision += 1;
        match &mut self.store {
            Store::Memory(db) => {
                db.execute(&delete)?;
                db.execute(&insert)?;
            }
            Store::Durable(d) => {
                d.set_revision(self.revision);
                let wrap = !d.in_txn();
                if wrap {
                    d.begin()?;
                }
                d.execute(&delete)?;
                d.execute(&insert)?;
                if wrap {
                    d.commit()?;
                }
            }
        }
        Ok(())
    }

    /// Read a site-global key. Read-only indexed lookup.
    pub fn global(&self, key: &str) -> Result<Option<String>> {
        let result =
            self.sql_ref().lookup_eq("app_globals", "name", &Value::Text(key.to_string()))?;
        // Column 1 is `value`.
        Ok(result.rows.first().map(|r| r[1].render()))
    }

    /// All IPs currently assigned. Read-only.
    pub fn used_ips(&self) -> Result<Vec<Ipv4>> {
        let result = self.sql_ref().query_ref("select ip from nodes")?;
        Ok(result.rows.iter().filter_map(|r| r[0].as_text().and_then(Ipv4::parse)).collect())
    }

    /// Every kickstartable node, fully resolved for mass generation and
    /// sorted by name: the bulk form of the three per-node queries the
    /// §6.1 CGI path would issue. Nodes whose appliance has no graph root
    /// (switches, PDUs) are skipped — they never request a kickstart.
    /// Read-only.
    pub fn kickstart_targets(&self) -> Result<Vec<KickstartTarget>> {
        let mut roots: std::collections::HashMap<i64, (String, Option<String>)> =
            std::collections::HashMap::new();
        for membership in self.memberships()? {
            let root = self.appliance_root(membership.appliance)?;
            roots.insert(membership.id, (membership.name, root));
        }
        let mut targets = Vec::new();
        for node in self.nodes()? {
            let Some((membership, Some(root))) = roots.get(&node.membership) else {
                continue;
            };
            targets.push(KickstartTarget {
                name: node.name,
                ip: node.ip.to_string(),
                root: root.clone(),
                membership: membership.clone(),
            });
        }
        targets.sort();
        Ok(targets)
    }
}

/// One kickstartable node as resolved by
/// [`ClusterDb::kickstart_targets`]: everything the generation service
/// needs to produce its profile without touching SQL again.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct KickstartTarget {
    /// Node hostname (`compute-0-0`, ...).
    pub name: String,
    /// The node's private address, rendered.
    pub ip: String,
    /// Graph root (appliance name) whose traversal builds the skeleton.
    pub root: String,
    /// Membership name, for per-node localization.
    pub membership: String,
}

/// Escape a string for inclusion in a single-quoted SQL literal.
pub fn sql_escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_seeds_table_iii_memberships() {
        let db = ClusterDb::new();
        let ms = db.memberships().unwrap();
        assert_eq!(ms.len(), DEFAULT_MEMBERSHIPS.len());
        let compute = db.membership_by_name("Compute").unwrap();
        assert_eq!(compute.id, 2);
        assert!(compute.compute);
        let frontend = db.membership_by_name("Frontend").unwrap();
        assert!(!frontend.compute);
    }

    #[test]
    fn duplicate_mac_rejected() {
        let mut db = ClusterDb::new();
        let node = NodeRecord::new(
            1,
            "00:50:8b:e0:3a:a7",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 245),
        );
        db.add_node(&node).unwrap();
        let err = db.add_node(&node).unwrap_err();
        assert!(matches!(err, DbError::DuplicateMac(_)));
    }

    #[test]
    fn compute_nodes_join() {
        let mut db = ClusterDb::new();
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "frontend-0",
            1,
            0,
            0,
            Ipv4::new(10, 1, 1, 1),
        ))
        .unwrap();
        db.add_node(&NodeRecord::new(
            2,
            "aa:00:00:00:00:02",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        db.add_node(&NodeRecord::new(
            3,
            "aa:00:00:00:00:03",
            "compute-0-1",
            2,
            0,
            1,
            Ipv4::new(10, 255, 255, 253),
        ))
        .unwrap();
        let compute = db.compute_nodes().unwrap();
        assert_eq!(compute.len(), 2);
        assert!(compute.iter().all(|n| n.name.starts_with("compute-")));
    }

    #[test]
    fn globals_round_trip() {
        let mut db = ClusterDb::new();
        assert_eq!(db.global("Kickstart_PublicHostname").unwrap(), None);
        db.set_global("Kickstart_PublicHostname", "frontend.sdsc.edu").unwrap();
        assert_eq!(
            db.global("Kickstart_PublicHostname").unwrap().as_deref(),
            Some("frontend.sdsc.edu")
        );
        db.set_global("Kickstart_PublicHostname", "other.edu").unwrap();
        assert_eq!(db.global("Kickstart_PublicHostname").unwrap().as_deref(), Some("other.edu"));
    }

    #[test]
    fn next_id_and_max_rank() {
        let mut db = ClusterDb::new();
        assert_eq!(db.next_node_id().unwrap(), 1);
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        assert_eq!(db.next_node_id().unwrap(), 2);
        assert_eq!(db.max_rank(2, 0).unwrap(), Some(0));
        assert_eq!(db.max_rank(2, 1).unwrap(), None);
    }

    #[test]
    fn revision_tracks_writes_not_reads() {
        let mut db = ClusterDb::new();
        let r0 = db.revision();
        let _ = db.nodes().unwrap();
        let _ = db.memberships().unwrap();
        let _ = db.global("Kickstart_PublicHostname").unwrap();
        let _ = db.query_names("select name from nodes").unwrap();
        assert_eq!(db.revision(), r0, "reads must not invalidate caches");

        db.set_global("k", "v").unwrap();
        let r1 = db.revision();
        assert!(r1 > r0);
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        let r2 = db.revision();
        assert!(r2 > r1);
        // Raw &mut SQL access may write anything: bumped conservatively.
        let _ = db.sql();
        assert!(db.revision() > r2);
    }

    #[test]
    fn node_by_ip_resolves_and_rejects() {
        let mut db = ClusterDb::new();
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        assert_eq!(db.node_by_ip("10.255.255.254").unwrap().name, "compute-0-0");
        assert!(matches!(db.node_by_ip("10.9.9.9"), Err(DbError::NoSuchNode(_))));
        assert_eq!(db.appliance_root(2).unwrap().as_deref(), Some("compute"));
        assert_eq!(db.appliance_root(4).unwrap(), None);
    }

    #[test]
    fn node_by_mac_is_a_read() {
        let mut db = ClusterDb::new();
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        let r = db.revision();
        assert_eq!(db.node_by_mac("aa:00:00:00:00:01").unwrap().unwrap().name, "compute-0-0");
        assert_eq!(db.node_by_mac("aa:00:00:00:00:99").unwrap(), None);
        assert_eq!(db.revision(), r, "MAC probes must not invalidate caches");
    }

    #[test]
    fn kickstart_targets_resolve_and_skip_non_kickstartable() {
        let mut db = ClusterDb::new();
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "frontend-0",
            1,
            0,
            0,
            Ipv4::new(10, 1, 1, 1),
        ))
        .unwrap();
        db.add_node(&NodeRecord::new(
            2,
            "aa:00:00:00:00:02",
            "compute-0-0",
            2,
            0,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        // Membership 4 (Ethernet Switches) has no graph root.
        db.add_node(&NodeRecord::new(
            3,
            "aa:00:00:00:00:03",
            "network-0-0",
            4,
            0,
            0,
            Ipv4::new(10, 255, 1, 1),
        ))
        .unwrap();
        let targets = db.kickstart_targets().unwrap();
        let summary: Vec<(&str, &str, &str)> = targets
            .iter()
            .map(|t| (t.name.as_str(), t.root.as_str(), t.membership.as_str()))
            .collect();
        assert_eq!(
            summary,
            vec![("compute-0-0", "compute", "Compute"), ("frontend-0", "frontend", "Frontend"),]
        );
        assert_eq!(targets[0].ip, "10.255.255.254");
    }

    #[test]
    fn raw_sql_query_interface() {
        let mut db = ClusterDb::new();
        db.add_node(&NodeRecord::new(
            1,
            "aa:00:00:00:00:01",
            "compute-1-0",
            2,
            1,
            0,
            Ipv4::new(10, 255, 255, 254),
        ))
        .unwrap();
        db.add_node(&NodeRecord::new(
            2,
            "aa:00:00:00:00:02",
            "compute-2-0",
            2,
            2,
            0,
            Ipv4::new(10, 255, 255, 253),
        ))
        .unwrap();
        // §6.4: cluster-kill --query="select name from nodes where rack=1".
        let names = db.query_names("select name from nodes where rack=1").unwrap();
        assert_eq!(names, vec!["compute-1-0"]);
    }
}
