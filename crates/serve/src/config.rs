//! Frontend configuration: pool shape, admission thresholds, and the
//! deterministic service-cost model.

/// Virtual-time service costs, in simulated microseconds.
///
/// The frontend charges each dispatched request a deterministic cost
/// depending on what the backend actually did: a kickstart request
/// served from a cached appliance skeleton costs a localization pass; a
/// miss pays the full graph traversal; a report query costs execution
/// against a cached plan or planning plus execution. The defaults are
/// calibrated from the release-build microbenchmarks of the respective
/// subsystems (skeleton build ≈ milliseconds, localization and indexed
/// execution ≈ tens of microseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Kickstart request, skeleton cache hit (localize only).
    pub ks_hit_us: u64,
    /// Kickstart request, skeleton cache miss (graph traversal).
    pub ks_miss_us: u64,
    /// Report query, plan-cache hit.
    pub report_hit_us: u64,
    /// Report query, plan-cache miss (parse + plan + execute).
    pub report_plan_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel { ks_hit_us: 60, ks_miss_us: 2_500, report_hit_us: 120, report_plan_us: 900 }
    }
}

/// The serving frontend's shape and admission policy.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Worker shards. A shard is the unit that can stall as a whole
    /// (one process / one machine in the deployment analogy).
    pub shards: usize,
    /// Workers per shard; total pool = `shards * workers_per_shard`.
    pub workers_per_shard: usize,
    /// Hard bound on the accept queue (both classes combined). The
    /// bounded-queue invariant asserts the live depth never exceeds it.
    pub queue_cap: usize,
    /// Admission high-water mark: a new arrival finding this many
    /// requests already queued is shed with a retry-after hint.
    /// Clamped to `queue_cap`.
    pub high_water: usize,
    /// The retry-after hint attached to shed responses, µs.
    pub retry_after_us: u64,
    /// Anti-starvation aging: after this many consecutive install
    /// dispatches while a report waits, the next dispatch must take the
    /// report.
    pub report_every: u64,
    /// Keep response bodies in the request log (differential tests);
    /// off for big sweeps — bodies are hashed into the fingerprint and
    /// dropped.
    pub keep_bodies: bool,
    /// The virtual-time service-cost model.
    pub costs: CostModel,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 8,
            workers_per_shard: 4,
            queue_cap: 1024,
            high_water: 768,
            retry_after_us: 2_000,
            report_every: 8,
            keep_bodies: false,
            costs: CostModel::default(),
        }
    }
}

impl ServeConfig {
    /// Total worker pool size.
    pub fn total_workers(&self) -> usize {
        self.shards.max(1) * self.workers_per_shard.max(1)
    }

    /// A copy with degenerate values clamped into the legal range
    /// (at least one shard/worker, `1 <= high_water <= queue_cap`).
    pub fn normalized(&self) -> ServeConfig {
        let mut c = self.clone();
        c.shards = c.shards.max(1);
        c.workers_per_shard = c.workers_per_shard.max(1);
        c.queue_cap = c.queue_cap.max(1);
        c.high_water = c.high_water.clamp(1, c.queue_cap);
        c.report_every = c.report_every.max(1);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_clamps_degenerate_shapes() {
        let c = ServeConfig {
            shards: 0,
            workers_per_shard: 0,
            queue_cap: 0,
            high_water: 99,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!(c.shards, 1);
        assert_eq!(c.workers_per_shard, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.high_water, 1, "high water must not exceed the hard cap");
        assert_eq!(c.total_workers(), 1);
    }
}
