//! Seeded workload generation: arrival models, fault schedules, and the
//! plan generator behind the 500-seed invariant sweep.
//!
//! The vocabulary deliberately mirrors the chaos harness in
//! `rocks-netsim`: a [`ServePlan`] is a pure function of its seed, every
//! random choice is drawn from one `StdRng`, and the generated shapes
//! are bounded so a full sweep stays cheap in debug builds (tier-1 CI
//! runs the sweep unoptimized).

use crate::backend::ModelBackend;
use crate::config::ServeConfig;
use crate::frontend::{run_serve, ReqLog, ServeReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocks_trace::Tracer;

/// How requests arrive at the frontend.
#[derive(Clone, Debug, PartialEq)]
pub enum Arrivals {
    /// Open loop: Poisson arrivals at `rate_rps` requests per second
    /// (virtual time). Shed requests optionally come back after the
    /// retry-after hint, as real installers do.
    Open {
        /// Offered load, requests per simulated second.
        rate_rps: f64,
        /// Whether shed requests retry (bounded at 8 attempts each).
        retry_shed: bool,
    },
    /// Closed loop: `clients` callers, each issuing one request, waiting
    /// for the response (or retry-after), thinking, then issuing again.
    Closed {
        /// Number of concurrent clients.
        clients: usize,
        /// Think time between a response and the next request, µs.
        think_us: u64,
    },
}

/// A scheduled disturbance, reusing the chaos-harness fault vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum ServeFault {
    /// Arrival-rate burst: open-loop λ is multiplied by `factor` inside
    /// the window (a rack of nodes power-cycling into reinstall).
    Burst {
        /// Window start, µs.
        at_us: u64,
        /// Window length, µs.
        dur_us: u64,
        /// Rate multiplier inside the window.
        factor: f64,
    },
    /// One worker shard freezes: its in-flight requests finish late by
    /// `dur_us` and it accepts no dispatches until the window ends.
    ShardStall {
        /// Which shard (taken modulo the configured shard count).
        shard: usize,
        /// Stall start, µs.
        at_us: u64,
        /// Stall length, µs.
        dur_us: u64,
    },
    /// Cache-invalidation storm: a `rocks-dist` rebuild lands mid-load
    /// and every cached skeleton goes stale at once.
    CacheStorm {
        /// When the rebuild lands, µs.
        at_us: u64,
    },
}

/// One complete workload: arrival model, horizon, class mix, faults.
#[derive(Clone, Debug, PartialEq)]
pub struct Workload {
    /// Seed for every random draw the frontend makes (arrival gaps,
    /// class choice, key choice, retry jitter).
    pub seed: u64,
    /// The arrival model.
    pub arrivals: Arrivals,
    /// No new requests are created at or after this virtual time; the
    /// run then drains.
    pub horizon_us: u64,
    /// Per-mille of arrivals that are report queries (the rest are
    /// kickstart requests).
    pub report_permille: u32,
    /// Scheduled disturbances.
    pub faults: Vec<ServeFault>,
}

impl Workload {
    /// The open-loop arrival-rate multiplier at time `t` (product of
    /// every burst window covering `t`; 1.0 outside all windows).
    pub fn rate_multiplier(&self, t: u64) -> f64 {
        let mut m = 1.0;
        for f in &self.faults {
            if let ServeFault::Burst { at_us, dur_us, factor } = f {
                if t >= *at_us && t < at_us.saturating_add(*dur_us) {
                    m *= factor;
                }
            }
        }
        m
    }

    /// A copy with every [`ServeFault::ShardStall`] removed. Stalls are
    /// addressed to a *shard*, so they are the one fault that breaks
    /// invariance under re-arranging workers into shards; the
    /// determinism proptests sweep stall-free plans.
    pub fn stall_free(&self) -> Workload {
        let mut w = self.clone();
        w.faults.retain(|f| !matches!(f, ServeFault::ShardStall { .. }));
        w
    }
}

/// A seeded (config, workload, backend-shape) triple: everything needed
/// to run one deterministic serving episode in timing-model mode.
#[derive(Clone, Debug, PartialEq)]
pub struct ServePlan {
    /// The generating seed.
    pub seed: u64,
    /// Frontend shape.
    pub cfg: ServeConfig,
    /// The workload.
    pub workload: Workload,
    /// Distinct kickstart targets in the model backend.
    pub n_targets: usize,
    /// Distinct appliance roots (targets share skeletons per root).
    pub n_roots: usize,
    /// Distinct report queries.
    pub n_queries: usize,
}

impl ServePlan {
    /// Generate a bounded plan from `seed`. Expected arrivals per plan
    /// are kept in the low thousands so a 500-seed sweep finishes
    /// quickly even in debug builds.
    pub fn generate(seed: u64) -> ServePlan {
        let mut rng =
            StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
        let shards = [1usize, 2, 4, 8][rng.gen_range(0..4usize)];
        let workers_per_shard = rng.gen_range(1usize..=4);
        let queue_cap = [64usize, 128, 256, 512][rng.gen_range(0..4usize)];
        let cfg = ServeConfig {
            shards,
            workers_per_shard,
            queue_cap,
            high_water: (queue_cap * 3 / 4).max(1),
            retry_after_us: rng.gen_range(500u64..=4_000),
            report_every: rng.gen_range(2u64..=16),
            ..ServeConfig::default()
        };

        let open = rng.gen_bool(0.6);
        let target_arrivals = rng.gen_range(1_000u64..=6_000);
        let (arrivals, horizon_us) = if open {
            let rate_rps = rng.gen_range(20_000.0..250_000.0f64);
            let horizon = ((target_arrivals as f64 / rate_rps) * 1e6) as u64;
            (
                Arrivals::Open { rate_rps, retry_shed: rng.gen_bool(0.5) },
                horizon.clamp(10_000, 300_000),
            )
        } else {
            let clients = rng.gen_range(4usize..=64);
            let think_us = rng.gen_range(50u64..=2_000);
            (Arrivals::Closed { clients, think_us }, rng.gen_range(20_000u64..=120_000))
        };

        let report_permille = rng.gen_range(0u32..=400);
        let n_faults = rng.gen_range(0usize..=3);
        let mut faults = Vec::with_capacity(n_faults);
        for _ in 0..n_faults {
            let at_us = rng.gen_range(0..horizon_us / 2);
            match rng.gen_range(0u32..3) {
                0 => faults.push(ServeFault::Burst {
                    at_us,
                    dur_us: rng.gen_range(horizon_us / 10..=horizon_us / 3),
                    factor: rng.gen_range(2.0..=10.0f64),
                }),
                1 => faults.push(ServeFault::ShardStall {
                    shard: rng.gen_range(0usize..8),
                    at_us,
                    dur_us: rng.gen_range(horizon_us / 20..=horizon_us / 4),
                }),
                _ => faults.push(ServeFault::CacheStorm { at_us }),
            }
        }

        let workload = Workload { seed, arrivals, horizon_us, report_permille, faults };
        ServePlan {
            seed,
            cfg,
            workload,
            n_targets: rng.gen_range(16usize..=256),
            n_roots: rng.gen_range(1usize..=4),
            n_queries: rng.gen_range(2usize..=8),
        }
    }

    /// The plan's model backend, cold.
    pub fn model_backend(&self) -> ModelBackend {
        ModelBackend::new(self.n_targets, self.n_roots, self.n_queries)
    }

    /// Run the plan in timing-model mode with tracing off.
    pub fn run_model(&self) -> (ServeReport, Vec<ReqLog>) {
        let mut backend = self.model_backend();
        run_serve(&self.cfg, &self.workload, &mut backend, &Tracer::disabled())
    }
}

/// Aggregate outcome of a multi-seed sweep (see [`run_serve_sweep`]).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SweepSummary {
    /// Seeds run.
    pub seeds: u64,
    /// Total requests that arrived across all runs.
    pub total_arrivals: u64,
    /// Total completed.
    pub total_completed: u64,
    /// Total shed.
    pub total_shed: u64,
    /// Every invariant violation hit, tagged by seed. Empty on a clean
    /// sweep — the CI gate greps for exactly that.
    pub violations: Vec<(u64, String)>,
}

/// Run seeds `seed0 .. seed0 + n` through [`ServePlan::generate`] in
/// model mode and fold the reports. The frontend's built-in invariant
/// checks (conservation, bounded queue, no starvation, full drain) are
/// collected per seed.
pub fn run_serve_sweep(seed0: u64, n: u64) -> SweepSummary {
    let mut out = SweepSummary { seeds: n, ..SweepSummary::default() };
    for seed in seed0..seed0 + n {
        let (report, _) = ServePlan::generate(seed).run_model();
        out.total_arrivals += report.arrivals;
        out.total_completed += report.completed;
        out.total_shed += report.shed;
        for v in &report.violations {
            out.violations.push((seed, v.clone()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed() {
        for seed in [0u64, 1, 17, 999_983] {
            assert_eq!(ServePlan::generate(seed), ServePlan::generate(seed));
        }
        assert_ne!(ServePlan::generate(3), ServePlan::generate(4));
    }

    #[test]
    fn burst_multiplier_is_windowed_and_compounds() {
        let w = Workload {
            seed: 0,
            arrivals: Arrivals::Open { rate_rps: 1e5, retry_shed: false },
            horizon_us: 100,
            report_permille: 0,
            faults: vec![
                ServeFault::Burst { at_us: 10, dur_us: 20, factor: 4.0 },
                ServeFault::Burst { at_us: 20, dur_us: 20, factor: 2.0 },
            ],
        };
        assert_eq!(w.rate_multiplier(5), 1.0);
        assert_eq!(w.rate_multiplier(10), 4.0);
        assert_eq!(w.rate_multiplier(25), 8.0, "overlapping windows compound");
        assert_eq!(w.rate_multiplier(35), 2.0);
        assert_eq!(w.rate_multiplier(40), 1.0, "window end is exclusive");
    }

    #[test]
    fn stall_free_strips_only_stalls() {
        let mut p = ServePlan::generate(42);
        p.workload.faults = vec![
            ServeFault::Burst { at_us: 1, dur_us: 2, factor: 3.0 },
            ServeFault::ShardStall { shard: 0, at_us: 5, dur_us: 5 },
            ServeFault::CacheStorm { at_us: 9 },
        ];
        let stripped = p.workload.stall_free();
        assert_eq!(stripped.faults.len(), 2);
        assert!(stripped.faults.iter().all(|f| !matches!(f, ServeFault::ShardStall { .. })));
    }
}
