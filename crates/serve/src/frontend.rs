//! The serving frontend: bounded admission queue, prioritized dispatch
//! to a sharded worker pool, and drain-time invariant checks — all on a
//! discrete-event virtual clock.
//!
//! # Determinism
//!
//! The engine is a single-threaded event loop over a binary heap keyed
//! by `(virtual time, push sequence)`. Every random draw (arrival gaps,
//! request class, key, retry jitter) happens in event-processing order
//! from one seeded RNG, and service times come from the deterministic
//! [`CostModel`], so a run is a pure function of
//! `(config, workload, backend state)`.
//!
//! Workers are addressed by *global index*; dispatch always picks the
//! lowest free index whose shard is not stalled, and a worker's shard is
//! `index / workers_per_shard`. With the total pool size held constant,
//! re-arranging workers into shards changes only the per-shard
//! *attribution* of completions, never the schedule — so 1×8, 2×4 and
//! 8×1 arrangements produce bit-identical reports (modulo the per-shard
//! breakdown; see [`ServeReport::shard_agnostic`]). The one exception is
//! [`ServeFault::ShardStall`], which addresses a shard by number and so
//! is excluded from the arrangement-invariance property
//! (see [`Workload::stall_free`]).
//!
//! # Admission and priorities
//!
//! A new arrival that finds `high_water` requests already queued is shed
//! with a retry-after hint; the queue therefore never exceeds the hard
//! `queue_cap`. Install traffic outranks reports, but after
//! `report_every` consecutive install dispatches while a report waits,
//! the next dispatch must take the report — the starvation bound the
//! invariant suite asserts.

use crate::backend::ServeBackend;
use crate::config::{CostModel, ServeConfig};
use crate::loadgen::{Arrivals, ServeFault, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rocks_trace::{Histogram, Registry, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Latency-histogram upper bounds, µs. Shared by every per-shard
/// registry so merges are exact bucket-wise adds.
pub const LATENCY_BOUNDS_US: &[u64] = &[
    50, 75, 100, 150, 200, 300, 400, 600, 800, 1_000, 1_500, 2_000, 3_000, 4_000, 6_000, 8_000,
    12_000, 20_000, 50_000, 100_000, 300_000, 1_000_000,
];

/// Queue-depth histogram upper bounds (entries at admission time).
pub const QUEUE_BOUNDS: &[u64] = &[0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1_024, 2_048, 4_096];

/// Terminal state of one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Still queued or in flight (never present after drain).
    Pending,
    /// Served to completion.
    Completed,
    /// Rejected at admission with a retry-after hint.
    Shed,
}

/// The per-request log entry the frontend keeps for every arrival
/// (including shed ones and every retry attempt, each of which is its
/// own entry).
#[derive(Clone, Debug, PartialEq)]
pub struct ReqLog {
    /// Arrival order, 0-based.
    pub id: u64,
    /// Install-class (kickstart) vs report-class (SQL query).
    pub install: bool,
    /// Backend key (target index / query index, reduced modulo pool).
    pub key: usize,
    /// Issuing closed-loop client, if any.
    pub client: Option<usize>,
    /// Retry attempt number (0 = first try).
    pub attempt: u32,
    /// Arrival time, µs.
    pub arrival_us: u64,
    /// Dispatch time, µs (None for shed requests).
    pub dispatch_us: Option<u64>,
    /// Completion time, µs (None for shed requests).
    pub complete_us: Option<u64>,
    /// Terminal state.
    pub outcome: Outcome,
    /// Whether the backend served it from cache.
    pub hit: bool,
    /// FNV-1a of the response body (0 when the backend produced none).
    /// Present even when bodies are not kept, so differential checks
    /// can compare content without the memory cost.
    pub body_fnv: u64,
    /// The response body, when `ServeConfig::keep_bodies` is set.
    pub body: Option<String>,
}

/// Quantile summary of one merged latency histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Samples.
    pub count: u64,
    /// Median, µs (bucket upper bound).
    pub p50_us: u64,
    /// 95th percentile, µs.
    pub p95_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Exact maximum, µs.
    pub max_us: u64,
}

impl LatencySummary {
    fn from_hist(h: &Histogram) -> LatencySummary {
        LatencySummary {
            count: h.count(),
            p50_us: h.p50().unwrap_or(0),
            p95_us: h.p95().unwrap_or(0),
            p99_us: h.p99().unwrap_or(0),
            max_us: h.max().unwrap_or(0),
        }
    }
}

/// What one serving run produced. All fields are integers so reports
/// compare with `==` in determinism tests.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeReport {
    /// Requests that arrived (every retry is a new arrival).
    pub arrivals: u64,
    /// Arrivals admitted to the queue.
    pub accepted: u64,
    /// Admitted requests served to completion.
    pub completed: u64,
    /// Arrivals rejected at admission.
    pub shed: u64,
    /// Retry attempts scheduled after sheds.
    pub retries: u64,
    /// Completed install-class requests.
    pub install_completed: u64,
    /// Completed report-class requests.
    pub report_completed: u64,
    /// Dispatches that missed the relevant cache.
    pub backend_misses: u64,
    /// Largest queue depth observed at any admission.
    pub queue_peak: u64,
    /// Longest run of install dispatches while a report waited.
    pub max_consecutive_installs: u64,
    /// Virtual time of the last event (full drain), µs.
    pub sim_us: u64,
    /// All-request latency.
    pub latency: LatencySummary,
    /// Install-class latency.
    pub install_latency: LatencySummary,
    /// Report-class latency.
    pub report_latency: LatencySummary,
    /// Completions attributed to each shard.
    pub per_shard_completed: Vec<u64>,
    /// Order-independent FNV fold over every request's terminal record
    /// (id, class, key, outcome, hit, body hash).
    pub fingerprint: u64,
    /// Invariant violations detected at drain. Empty on a correct run.
    pub violations: Vec<String>,
}

impl ServeReport {
    /// Completed requests per simulated second.
    pub fn rps(&self) -> f64 {
        if self.sim_us == 0 {
            0.0
        } else {
            self.completed as f64 * 1e6 / self.sim_us as f64
        }
    }

    /// Fraction of arrivals shed.
    pub fn shed_rate(&self) -> f64 {
        if self.arrivals == 0 {
            0.0
        } else {
            self.shed as f64 / self.arrivals as f64
        }
    }

    /// A copy with the per-shard attribution cleared — the part of the
    /// report that legitimately varies when the same worker pool is
    /// re-arranged into a different shard count.
    pub fn shard_agnostic(&self) -> ServeReport {
        let mut r = self.clone();
        r.per_shard_completed = Vec::new();
        r
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over a whole byte string (used for response bodies).
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv_bytes(FNV_OFFSET, bytes)
}

fn req_hash(r: &ReqLog) -> u64 {
    let mut h = fnv_bytes(FNV_OFFSET, &r.id.to_le_bytes());
    h = fnv_bytes(
        h,
        &[r.install as u8, matches!(r.outcome, Outcome::Completed) as u8, r.hit as u8],
    );
    h = fnv_bytes(h, &(r.key as u64).to_le_bytes());
    fnv_bytes(h, &r.body_fnv.to_le_bytes())
}

fn cost_of(c: &CostModel, install: bool, hit: bool) -> u64 {
    let us = match (install, hit) {
        (true, true) => c.ks_hit_us,
        (true, false) => c.ks_miss_us,
        (false, true) => c.report_hit_us,
        (false, false) => c.report_plan_us,
    };
    us.max(1)
}

/// Heap events. Variant payloads are all arrangement-invariant (worker
/// indices are global), which is what makes shard re-arrangement a pure
/// relabeling.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Apply workload fault `i`.
    Fault(usize),
    /// Worker finished (stale if its generation moved on).
    Complete { worker: usize, gen: u64 },
    /// A stalled shard came back; try dispatching.
    Resume,
    /// A shed open-loop request retries with its original class/key.
    Retry { install: bool, key: usize, attempt: u32 },
    /// Next open-loop arrival.
    OpenArrival,
    /// Closed-loop client issues its next request.
    ClientIssue { client: usize },
}

struct Engine<'a> {
    cfg: ServeConfig,
    wl: &'a Workload,
    backend: &'a mut dyn ServeBackend,
    tracer: &'a Tracer,
    rng: StdRng,
    heap: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    seq: u64,
    reqs: Vec<ReqLog>,
    install_q: VecDeque<usize>,
    report_q: VecDeque<usize>,
    busy: Vec<bool>,
    gens: Vec<u64>,
    worker_req: Vec<usize>,
    complete_at: Vec<u64>,
    stalled_until: Vec<u64>,
    arrivals: u64,
    accepted: u64,
    completed: u64,
    shed: u64,
    retries: u64,
    install_completed: u64,
    report_completed: u64,
    misses: u64,
    queue_peak: u64,
    consecutive_installs: u64,
    max_consecutive: u64,
    per_shard_completed: Vec<u64>,
    fingerprint: u64,
    shard_regs: Vec<Registry>,
    qdepth: Histogram,
    sim_us: u64,
    next_tick: u64,
    tick_step: u64,
    ticks_left: u32,
}

impl Engine<'_> {
    fn shard_of(&self, w: usize) -> usize {
        w / self.cfg.workers_per_shard
    }

    fn push(&mut self, t: u64, ev: Ev) {
        self.seq += 1;
        self.heap.push(Reverse((t, self.seq, ev)));
    }

    fn queued(&self) -> usize {
        self.install_q.len() + self.report_q.len()
    }

    fn retry_delay(&self) -> u64 {
        self.cfg.retry_after_us.max(1)
    }

    /// One request arrives. `forced` carries the class/key of a retried
    /// request; fresh arrivals draw both from the RNG (in event order,
    /// so the draw sequence is arrangement-invariant).
    fn arrive(
        &mut self,
        t: u64,
        client: Option<usize>,
        forced: Option<(bool, usize)>,
        attempt: u32,
    ) {
        self.arrivals += 1;
        let (install, key) = match forced {
            Some(fk) => fk,
            None => {
                let report = self.rng.gen_range(0u32..1000) < self.wl.report_permille.min(1000);
                let key = if report {
                    self.rng.gen_range(0..self.backend.n_queries().max(1))
                } else {
                    self.rng.gen_range(0..self.backend.n_targets().max(1))
                };
                (!report, key)
            }
        };
        let id = self.reqs.len() as u64;
        let mut req = ReqLog {
            id,
            install,
            key,
            client,
            attempt,
            arrival_us: t,
            dispatch_us: None,
            complete_us: None,
            outcome: Outcome::Pending,
            hit: false,
            body_fnv: 0,
            body: None,
        };

        if self.queued() >= self.cfg.high_water {
            req.outcome = Outcome::Shed;
            self.shed += 1;
            self.fingerprint = self.fingerprint.wrapping_add(req_hash(&req));
            self.reqs.push(req);
            match client {
                Some(c) => {
                    // Closed-loop caller honors the retry-after hint and
                    // tries again (the issue handler re-checks the horizon).
                    self.retries += 1;
                    let delay = self.retry_delay();
                    self.push(t + delay, Ev::ClientIssue { client: c });
                }
                None => {
                    let retry_shed =
                        matches!(self.wl.arrivals, Arrivals::Open { retry_shed: true, .. });
                    if retry_shed && attempt < 8 {
                        self.retries += 1;
                        let delay = self.retry_delay();
                        let jitter = self.rng.gen_range(0..delay / 4 + 1);
                        self.push(
                            t + delay + jitter,
                            Ev::Retry { install, key, attempt: attempt + 1 },
                        );
                    }
                }
            }
            return;
        }

        self.accepted += 1;
        let idx = self.reqs.len();
        self.reqs.push(req);
        if install {
            self.install_q.push_back(idx);
        } else {
            self.report_q.push_back(idx);
        }
        let depth = self.queued() as u64;
        self.queue_peak = self.queue_peak.max(depth);
        self.qdepth.record(depth);
        self.dispatch(t);
    }

    /// Drain the queues onto free workers: lowest free global index
    /// first, installs ahead of reports except when the aging bound
    /// forces a report through.
    fn dispatch(&mut self, t: u64) {
        loop {
            if self.install_q.is_empty() && self.report_q.is_empty() {
                return;
            }
            let total = self.cfg.total_workers();
            let Some(w) =
                (0..total).find(|&w| !self.busy[w] && self.stalled_until[self.shard_of(w)] <= t)
            else {
                return;
            };
            let take_report = if self.report_q.is_empty() {
                false
            } else if self.install_q.is_empty() {
                true
            } else {
                self.consecutive_installs >= self.cfg.report_every
            };
            let ri = if take_report {
                self.consecutive_installs = 0;
                self.report_q.pop_front().expect("report queue checked non-empty")
            } else {
                let ri = self.install_q.pop_front().expect("install queue checked non-empty");
                if self.report_q.is_empty() {
                    self.consecutive_installs = 0;
                } else {
                    self.consecutive_installs += 1;
                    self.max_consecutive = self.max_consecutive.max(self.consecutive_installs);
                }
                ri
            };
            let (install, key) = (self.reqs[ri].install, self.reqs[ri].key);
            let res = if install { self.backend.install(key) } else { self.backend.report(key) };
            if !res.hit {
                self.misses += 1;
            }
            let cost = cost_of(&self.cfg.costs, install, res.hit);
            let req = &mut self.reqs[ri];
            req.dispatch_us = Some(t);
            req.hit = res.hit;
            req.body_fnv = res.body.as_deref().map_or(0, |b| fnv64(b.as_bytes()));
            if self.cfg.keep_bodies {
                req.body = res.body;
            }
            self.busy[w] = true;
            self.worker_req[w] = ri;
            self.complete_at[w] = t + cost;
            let gen = self.gens[w];
            self.push(t + cost, Ev::Complete { worker: w, gen });
        }
    }

    fn on_complete(&mut self, t: u64, w: usize, gen: u64) {
        if gen != self.gens[w] {
            return; // superseded by a stall reschedule
        }
        self.busy[w] = false;
        let ri = self.worker_req[w];
        let (install, client, lat, hash) = {
            let req = &mut self.reqs[ri];
            req.complete_us = Some(t);
            req.outcome = Outcome::Completed;
            (req.install, req.client, t - req.arrival_us, req_hash(req))
        };
        self.completed += 1;
        if install {
            self.install_completed += 1;
        } else {
            self.report_completed += 1;
        }
        self.fingerprint = self.fingerprint.wrapping_add(hash);
        let s = self.shard_of(w);
        self.per_shard_completed[s] += 1;
        let reg = &self.shard_regs[s];
        reg.histogram("serve.latency_us", LATENCY_BOUNDS_US).record(lat);
        let class_hist =
            if install { "serve.latency_install_us" } else { "serve.latency_report_us" };
        reg.histogram(class_hist, LATENCY_BOUNDS_US).record(lat);
        if let Some(c) = client {
            if let Arrivals::Closed { think_us, .. } = self.wl.arrivals {
                self.push(t + think_us.max(1), Ev::ClientIssue { client: c });
            }
        }
        self.dispatch(t);
    }

    fn on_fault(&mut self, t: u64, i: usize) {
        match self.wl.faults[i] {
            // Bursts act through the arrival-rate multiplier; no event
            // is ever scheduled for them.
            ServeFault::Burst { .. } => {}
            ServeFault::ShardStall { shard, dur_us, .. } => {
                let s = shard % self.cfg.shards;
                self.tracer.mark("serve.fault.stall", s as u64);
                let end = t + dur_us;
                self.stalled_until[s] = self.stalled_until[s].max(end);
                let lo = s * self.cfg.workers_per_shard;
                let hi = lo + self.cfg.workers_per_shard;
                for w in lo..hi {
                    if self.busy[w] {
                        // In-flight work on the frozen shard finishes
                        // late; the old completion event goes stale.
                        self.gens[w] += 1;
                        self.complete_at[w] += dur_us;
                        let gen = self.gens[w];
                        let at = self.complete_at[w];
                        self.push(at, Ev::Complete { worker: w, gen });
                    }
                }
                self.push(end, Ev::Resume);
            }
            ServeFault::CacheStorm { .. } => {
                self.tracer.mark("serve.fault.storm", 0);
                self.backend.invalidate();
            }
        }
    }

    fn finish(mut self) -> (ServeReport, Vec<ReqLog>) {
        let mut violations = Vec::new();
        if self.arrivals != self.accepted + self.shed {
            violations.push(format!(
                "conservation: arrivals {} != accepted {} + shed {}",
                self.arrivals, self.accepted, self.shed
            ));
        }
        let in_flight = self.busy.iter().filter(|b| **b).count();
        if self.queued() + in_flight > 0 {
            violations.push(format!(
                "drain: {} queued and {} in flight after the event heap emptied",
                self.queued(),
                in_flight
            ));
        }
        if self.accepted != self.completed {
            violations.push(format!(
                "conservation: accepted {} != completed {} at drain",
                self.accepted, self.completed
            ));
        }
        if self.queue_peak > self.cfg.queue_cap as u64 {
            violations.push(format!(
                "bounded queue: peak depth {} exceeded cap {}",
                self.queue_peak, self.cfg.queue_cap
            ));
        }
        if self.max_consecutive > self.cfg.report_every {
            violations.push(format!(
                "starvation: {} consecutive installs passed a waiting report (bound {})",
                self.max_consecutive, self.cfg.report_every
            ));
        }

        // Merge per-shard latency registries — the exact bucket-wise
        // path `Registry::merge` provides for same-bounds histograms.
        let merged = Registry::new();
        for r in &self.shard_regs {
            merged.merge(r);
        }
        let latency =
            LatencySummary::from_hist(&merged.histogram("serve.latency_us", LATENCY_BOUNDS_US));
        let install_latency = LatencySummary::from_hist(
            &merged.histogram("serve.latency_install_us", LATENCY_BOUNDS_US),
        );
        let report_latency = LatencySummary::from_hist(
            &merged.histogram("serve.latency_report_us", LATENCY_BOUNDS_US),
        );

        if let Some(reg) = self.tracer.registry() {
            reg.counter("serve.arrivals").add(self.arrivals);
            reg.counter("serve.accepted").add(self.accepted);
            reg.counter("serve.completed").add(self.completed);
            reg.counter("serve.shed").add(self.shed);
            reg.counter("serve.retries").add(self.retries);
            reg.counter("serve.backend_misses").add(self.misses);
            reg.merge(&merged);
        }

        let report = ServeReport {
            arrivals: self.arrivals,
            accepted: self.accepted,
            completed: self.completed,
            shed: self.shed,
            retries: self.retries,
            install_completed: self.install_completed,
            report_completed: self.report_completed,
            backend_misses: self.misses,
            queue_peak: self.queue_peak,
            max_consecutive_installs: self.max_consecutive,
            sim_us: self.sim_us,
            latency,
            install_latency,
            report_latency,
            per_shard_completed: std::mem::take(&mut self.per_shard_completed),
            fingerprint: self.fingerprint,
            violations,
        };
        (report, self.reqs)
    }
}

/// Run one serving episode to full drain and return the report plus the
/// complete request log.
///
/// The tracer's virtual clock is driven with simulation time; counters
/// and merged latency histograms land in its registry when it has one.
pub fn run_serve(
    cfg: &ServeConfig,
    workload: &Workload,
    backend: &mut dyn ServeBackend,
    tracer: &Tracer,
) -> (ServeReport, Vec<ReqLog>) {
    let cfg = cfg.normalized();
    let total = cfg.total_workers();
    let qdepth = tracer
        .registry()
        .map(|r| r.histogram("serve.queue_depth", QUEUE_BOUNDS))
        .unwrap_or_else(|| Registry::new().histogram("serve.queue_depth", QUEUE_BOUNDS));
    let tick_step = (workload.horizon_us / 8).max(1);
    let mut engine = Engine {
        wl: workload,
        backend,
        tracer,
        rng: StdRng::seed_from_u64(workload.seed ^ 0x5e7e_5e7e_5e7e_5e7e),
        heap: BinaryHeap::new(),
        seq: 0,
        reqs: Vec::new(),
        install_q: VecDeque::new(),
        report_q: VecDeque::new(),
        busy: vec![false; total],
        gens: vec![0; total],
        worker_req: vec![0; total],
        complete_at: vec![0; total],
        stalled_until: vec![0; cfg.shards],
        arrivals: 0,
        accepted: 0,
        completed: 0,
        shed: 0,
        retries: 0,
        install_completed: 0,
        report_completed: 0,
        misses: 0,
        queue_peak: 0,
        consecutive_installs: 0,
        max_consecutive: 0,
        per_shard_completed: vec![0; cfg.shards],
        fingerprint: 0,
        shard_regs: (0..cfg.shards).map(|_| Registry::new()).collect(),
        qdepth,
        sim_us: 0,
        next_tick: tick_step,
        tick_step,
        ticks_left: 8,
        cfg,
    };

    let _run = tracer.span("serve.run");
    for (i, f) in workload.faults.iter().enumerate() {
        match f {
            ServeFault::Burst { .. } => {} // handled via rate_multiplier
            ServeFault::ShardStall { at_us, .. } | ServeFault::CacheStorm { at_us } => {
                engine.push(*at_us, Ev::Fault(i));
            }
        }
    }
    match workload.arrivals {
        Arrivals::Open { .. } => engine.push(0, Ev::OpenArrival),
        Arrivals::Closed { clients, .. } => {
            for c in 0..clients.max(1) {
                engine.push(0, Ev::ClientIssue { client: c });
            }
        }
    }

    while let Some(Reverse((t, _, ev))) = engine.heap.pop() {
        engine.sim_us = engine.sim_us.max(t);
        tracer.set_time(t);
        while tracer.records_events() && engine.ticks_left > 0 && t >= engine.next_tick {
            tracer.mark("serve.tick", engine.completed);
            engine.next_tick += engine.tick_step;
            engine.ticks_left -= 1;
        }
        match ev {
            Ev::OpenArrival => {
                if t >= workload.horizon_us {
                    continue;
                }
                engine.arrive(t, None, None, 0);
                if let Arrivals::Open { rate_rps, .. } = workload.arrivals {
                    let lambda_us = (rate_rps * workload.rate_multiplier(t) / 1e6).max(1e-9);
                    let u: f64 = engine.rng.gen();
                    let gap = (-(1.0 - u).ln() / lambda_us).max(1.0) as u64;
                    engine.push(t + gap, Ev::OpenArrival);
                }
            }
            Ev::ClientIssue { client } => {
                if t >= workload.horizon_us {
                    continue;
                }
                engine.arrive(t, Some(client), None, 0);
            }
            Ev::Retry { install, key, attempt } => {
                if t >= workload.horizon_us {
                    continue;
                }
                engine.arrive(t, None, Some((install, key)), attempt);
            }
            Ev::Complete { worker, gen } => engine.on_complete(t, worker, gen),
            Ev::Fault(i) => engine.on_fault(t, i),
            Ev::Resume => engine.dispatch(t),
        }
    }

    engine.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ModelBackend;

    fn closed(seed: u64, clients: usize) -> Workload {
        Workload {
            seed,
            arrivals: Arrivals::Closed { clients, think_us: 200 },
            horizon_us: 30_000,
            report_permille: 200,
            faults: Vec::new(),
        }
    }

    #[test]
    fn closed_loop_run_conserves_and_drains() {
        let cfg = ServeConfig { shards: 2, workers_per_shard: 2, ..ServeConfig::default() };
        let mut backend = ModelBackend::new(32, 2, 4);
        let (report, log) = run_serve(&cfg, &closed(7, 16), &mut backend, &Tracer::disabled());
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert!(report.completed > 0);
        assert_eq!(report.arrivals, report.accepted + report.shed);
        assert_eq!(report.accepted, report.completed);
        assert_eq!(report.install_completed + report.report_completed, report.completed);
        assert_eq!(log.len() as u64, report.arrivals);
        assert!(log.iter().all(|r| r.outcome != Outcome::Pending));
        assert_eq!(report.per_shard_completed.iter().sum::<u64>(), report.completed);
    }

    #[test]
    fn identical_runs_are_bit_identical() {
        let cfg = ServeConfig::default();
        let wl = closed(11, 24);
        let (a, la) = run_serve(&cfg, &wl, &mut ModelBackend::new(64, 3, 5), &Tracer::disabled());
        let (b, lb) = run_serve(&cfg, &wl, &mut ModelBackend::new(64, 3, 5), &Tracer::disabled());
        assert_eq!(a, b);
        assert_eq!(la, lb);
    }

    #[test]
    fn shard_arrangement_is_a_pure_relabeling() {
        let wl = Workload {
            seed: 23,
            arrivals: Arrivals::Open { rate_rps: 120_000.0, retry_shed: true },
            horizon_us: 40_000,
            report_permille: 250,
            faults: vec![ServeFault::Burst { at_us: 8_000, dur_us: 6_000, factor: 6.0 }],
        };
        let mut reports = Vec::new();
        for (shards, wps) in [(1usize, 8usize), (2, 4), (8, 1)] {
            let cfg = ServeConfig { shards, workers_per_shard: wps, ..ServeConfig::default() };
            let (r, _) =
                run_serve(&cfg, &wl, &mut ModelBackend::new(64, 2, 4), &Tracer::disabled());
            assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
            assert_eq!(r.per_shard_completed.iter().sum::<u64>(), r.completed);
            reports.push(r.shard_agnostic());
        }
        assert_eq!(reports[0], reports[1], "1x8 vs 2x4 must match");
        assert_eq!(reports[0], reports[2], "1x8 vs 8x1 must match");
    }

    #[test]
    fn overload_sheds_with_bounded_queue() {
        let cfg = ServeConfig {
            shards: 1,
            workers_per_shard: 1,
            queue_cap: 8,
            high_water: 6,
            ..ServeConfig::default()
        };
        let wl = Workload {
            seed: 3,
            arrivals: Arrivals::Open { rate_rps: 300_000.0, retry_shed: false },
            horizon_us: 20_000,
            report_permille: 0,
            faults: Vec::new(),
        };
        let (report, _) =
            run_serve(&cfg, &wl, &mut ModelBackend::new(16, 1, 2), &Tracer::disabled());
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert!(report.shed > 0, "1 worker at 300k rps must shed");
        assert!(report.queue_peak <= 6, "peak {} exceeded high water", report.queue_peak);
        assert!(report.shed_rate() > 0.5);
    }

    #[test]
    fn reports_never_starve_under_install_pressure() {
        let cfg = ServeConfig {
            shards: 1,
            workers_per_shard: 2,
            report_every: 4,
            ..ServeConfig::default()
        };
        let wl = Workload {
            seed: 9,
            arrivals: Arrivals::Open { rate_rps: 150_000.0, retry_shed: false },
            horizon_us: 40_000,
            report_permille: 100,
            faults: Vec::new(),
        };
        let (report, log) =
            run_serve(&cfg, &wl, &mut ModelBackend::new(32, 1, 3), &Tracer::disabled());
        assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
        assert!(report.report_completed > 0);
        assert!(report.max_consecutive_installs <= 4);
        // Every completed report actually got through in bounded time.
        assert!(log
            .iter()
            .filter(|r| !r.install && r.outcome == Outcome::Completed)
            .all(|r| r.complete_us.is_some()));
    }

    #[test]
    fn shard_stall_delays_but_conserves() {
        let cfg = ServeConfig { shards: 2, workers_per_shard: 2, ..ServeConfig::default() };
        let wl = Workload {
            seed: 5,
            arrivals: Arrivals::Closed { clients: 12, think_us: 100 },
            horizon_us: 30_000,
            report_permille: 150,
            faults: vec![ServeFault::ShardStall { shard: 0, at_us: 5_000, dur_us: 8_000 }],
        };
        let (stalled, _) =
            run_serve(&cfg, &wl, &mut ModelBackend::new(32, 2, 4), &Tracer::disabled());
        assert!(stalled.violations.is_empty(), "violations: {:?}", stalled.violations);
        let (clean, _) = run_serve(
            &cfg,
            &wl.stall_free(),
            &mut ModelBackend::new(32, 2, 4),
            &Tracer::disabled(),
        );
        assert!(
            stalled.latency.max_us >= clean.latency.max_us,
            "a stall cannot shrink worst-case latency"
        );
    }

    #[test]
    fn cache_storm_forces_rebuilds() {
        let cfg = ServeConfig { shards: 2, workers_per_shard: 2, ..ServeConfig::default() };
        let base = Workload {
            seed: 13,
            arrivals: Arrivals::Closed { clients: 8, think_us: 100 },
            horizon_us: 30_000,
            report_permille: 0,
            faults: Vec::new(),
        };
        let (cold, _) =
            run_serve(&cfg, &base, &mut ModelBackend::new(32, 2, 4), &Tracer::disabled());
        let mut stormy = base.clone();
        stormy.faults = vec![ServeFault::CacheStorm { at_us: 15_000 }];
        let (storm, _) =
            run_serve(&cfg, &stormy, &mut ModelBackend::new(32, 2, 4), &Tracer::disabled());
        assert!(
            storm.backend_misses > cold.backend_misses,
            "storm {} vs cold {}: invalidation must force extra rebuilds",
            storm.backend_misses,
            cold.backend_misses
        );
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv64(b""), FNV_OFFSET);
        assert_eq!(fnv64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
