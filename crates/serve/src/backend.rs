//! What a dispatched request actually does.
//!
//! The frontend is generic over a [`ServeBackend`] so the same
//! admission/scheduling machinery can drive two execution modes:
//!
//! - [`RealBackend`] executes every request against the live
//!   [`GenerationService`] / [`rocks_sql::Database`] paths, producing
//!   real response bodies (the differential suite proves them
//!   byte-identical to direct calls) and exercising the skeleton and
//!   plan caches for real.
//! - [`ModelBackend`] mirrors only the *cache behaviour* (which request
//!   is a hit, which pays a build) without doing the work — the
//!   timing-model mode the 500-seed invariant sweep runs in. Because the
//!   frontend charges virtual-time costs from the same hit/miss signal,
//!   a model run and a real run of the same workload produce identical
//!   schedules (asserted by `model_matches_real_backend_timing` in the
//!   invariant suite).
//!
//! [`GenerationService`]: rocks_kickstart::GenerationService

use rocks_db::{ClusterDb, DbError, KickstartTarget};
use rocks_kickstart::GenerationService;
use rocks_rpm::Arch;
use std::collections::HashSet;

/// What serving one request produced.
#[derive(Debug, Clone)]
pub struct BackendResult {
    /// Whether the relevant cache (skeleton or plan) already held the
    /// expensive half of the work. Drives the frontend's cost model.
    pub hit: bool,
    /// The rendered response, when the backend materializes one.
    pub body: Option<String>,
}

/// Executes dispatched requests. `key` indexes the backend's own
/// request space (kickstart targets / report query pool) and is reduced
/// modulo its size, so load generators can draw keys freely.
pub trait ServeBackend {
    /// Serve one kickstart (install-class) request.
    fn install(&mut self, key: usize) -> BackendResult;
    /// Serve one report (query-class) request.
    fn report(&mut self, key: usize) -> BackendResult;
    /// Cache-invalidation storm: drop the warm skeleton state, as a
    /// `rocks-dist` rebuild mid-load would.
    fn invalidate(&mut self);
    /// Number of distinct kickstart targets.
    fn n_targets(&self) -> usize;
    /// Number of distinct report queries.
    fn n_queries(&self) -> usize;
}

/// The report-query pool a cluster frontend actually serves: node
/// listings, membership joins, rack inventories — the queries behind
/// `insert-ethers --list`, `cluster-fork` target selection, and the
/// monitoring pages.
pub fn default_report_queries() -> Vec<String> {
    vec![
        "select name, ip from nodes where membership = 3".into(),
        "select name, mac from nodes where rack = 0".into(),
        "select nodes.name, memberships.name from nodes, memberships \
         where nodes.membership = memberships.id"
            .into(),
        "select name from nodes where rank = 0".into(),
        "select id, name from memberships where compute = 'yes'".into(),
        "select name, value from app_globals where name = 'Kickstart_PublicHostname'".into(),
    ]
}

/// The live backend: the shared generation service plus the cluster
/// database, exactly what the paper's CGI touches per request.
pub struct RealBackend<'a> {
    svc: &'a GenerationService,
    db: &'a ClusterDb,
    arch: Arch,
    targets: Vec<KickstartTarget>,
    queries: Vec<String>,
}

impl<'a> RealBackend<'a> {
    /// Resolve the kickstartable node set up front (the same bulk path
    /// `generate_all` uses) and attach the default report pool.
    pub fn new(
        svc: &'a GenerationService,
        db: &'a ClusterDb,
        arch: Arch,
    ) -> Result<RealBackend<'a>, DbError> {
        let targets = db.kickstart_targets()?;
        Ok(RealBackend { svc, db, arch, targets, queries: default_report_queries() })
    }

    /// The resolved kickstart targets, in `generate_all` order.
    pub fn targets(&self) -> &[KickstartTarget] {
        &self.targets
    }

    /// Root ids per target (first-appearance numbering) — the mapping a
    /// [`ModelBackend`] needs to mirror this cluster's cache behaviour.
    pub fn target_roots(&self) -> Vec<usize> {
        let mut roots: Vec<&str> = Vec::new();
        self.targets
            .iter()
            .map(|t| {
                if let Some(i) = roots.iter().position(|r| *r == t.root) {
                    i
                } else {
                    roots.push(&t.root);
                    roots.len() - 1
                }
            })
            .collect()
    }
}

impl ServeBackend for RealBackend<'_> {
    fn install(&mut self, key: usize) -> BackendResult {
        let target = &self.targets[key % self.targets.len()];
        // Probe before generating: the probe answers "would this request
        // find a warm skeleton", which is what the cost model charges.
        let hit = self.svc.probe_cached(self.db, &target.root, self.arch);
        let ks = self
            .svc
            .generate_for_request(self.db, &target.ip, self.arch)
            .expect("kickstart generation for a resolved target cannot fail");
        BackendResult { hit, body: Some(ks.render()) }
    }

    fn report(&mut self, key: usize) -> BackendResult {
        let sql = &self.queries[key % self.queries.len()];
        let hit = self.db.sql_ref().plan_cached(sql);
        let result = self.db.sql_ref().query_ref(sql).expect("report query is valid");
        BackendResult { hit, body: Some(result.render_ascii()) }
    }

    fn invalidate(&mut self) {
        // A dist rebuild bumps the epoch: every cached skeleton is stale
        // and the next request per appliance pays the traversal again.
        self.svc.notify_dist_rebuilt();
    }

    fn n_targets(&self) -> usize {
        self.targets.len()
    }

    fn n_queries(&self) -> usize {
        self.queries.len()
    }
}

/// Timing-model backend: tracks warm state only.
#[derive(Debug, Clone)]
pub struct ModelBackend {
    /// Root id per target (targets sharing a root share a skeleton).
    target_roots: Vec<usize>,
    n_queries: usize,
    warm_roots: HashSet<usize>,
    warm_queries: HashSet<usize>,
}

impl ModelBackend {
    /// `n_targets` targets spread round-robin over `n_roots` appliances,
    /// `n_queries` distinct report texts.
    pub fn new(n_targets: usize, n_roots: usize, n_queries: usize) -> ModelBackend {
        let n_roots = n_roots.max(1);
        ModelBackend::with_roots((0..n_targets.max(1)).map(|i| i % n_roots).collect(), n_queries)
    }

    /// Explicit target→root mapping (mirror a real cluster's, via
    /// [`RealBackend::target_roots`]).
    pub fn with_roots(target_roots: Vec<usize>, n_queries: usize) -> ModelBackend {
        ModelBackend {
            target_roots,
            n_queries: n_queries.max(1),
            warm_roots: HashSet::new(),
            warm_queries: HashSet::new(),
        }
    }
}

impl ServeBackend for ModelBackend {
    fn install(&mut self, key: usize) -> BackendResult {
        let root = self.target_roots[key % self.target_roots.len()];
        let hit = !self.warm_roots.insert(root);
        BackendResult { hit, body: None }
    }

    fn report(&mut self, key: usize) -> BackendResult {
        let q = key % self.n_queries;
        let hit = !self.warm_queries.insert(q);
        BackendResult { hit, body: None }
    }

    fn invalidate(&mut self) {
        // Mirrors `notify_dist_rebuilt`: skeletons go cold, cached SQL
        // plans are untouched (the plan cache keys on schema + stats
        // epoch, not the dist epoch).
        self.warm_roots.clear();
    }

    fn n_targets(&self) -> usize {
        self.target_roots.len()
    }

    fn n_queries(&self) -> usize {
        self.n_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_backend_first_touch_misses_then_hits() {
        let mut b = ModelBackend::new(8, 2, 3);
        assert!(!b.install(0).hit, "first touch of root 0 is a miss");
        assert!(!b.install(1).hit, "first touch of root 1 is a miss");
        assert!(b.install(2).hit, "target 2 shares root 0");
        assert!(b.install(1).hit);
        assert!(!b.report(0).hit);
        assert!(b.report(3).hit, "query keys reduce modulo the pool");
    }

    #[test]
    fn model_invalidate_chills_skeletons_not_plans() {
        let mut b = ModelBackend::new(4, 1, 2);
        b.install(0);
        b.report(0);
        b.invalidate();
        assert!(!b.install(0).hit, "storm must force a skeleton rebuild");
        assert!(b.report(0).hit, "plan cache survives a dist rebuild");
    }
}
