//! rocks-serve: the kickstart CGI behind a real request-serving layer.
//!
//! The paper's kickstart CGI (§6.1) is the one component every node hits
//! on every (re)install, and the large-cluster follow-on work (CERN's
//! 1000-node experience, Brookhaven's scalability study) identifies the
//! install/config server as *the* choke point. This crate puts the
//! reproduction's [`GenerationService`] and SQL report path behind a
//! simulated-time serving frontend and measures it:
//!
//! - **Admission** ([`frontend`]): one bounded accept queue feeding a
//!   pool of worker shards. Past a high-water mark new arrivals are shed
//!   with a `retry-after` hint (backpressure); the queue's hard capacity
//!   is never exceeded, by construction.
//! - **Priorities**: install traffic (nodes mid-reinstall, blocked on
//!   their kickstart file) outranks report queries, but an aging rule
//!   bounds how many consecutive install dispatches may pass a waiting
//!   report — the low-priority class cannot starve.
//! - **Virtual time**: the whole frontend runs on the rocks-trace
//!   virtual clock. Service times come from a deterministic cost model
//!   (cache hit vs skeleton rebuild, plan-cache hit vs planning), so a
//!   run is a pure function of `(config, workload, seed)` — bit-for-bit
//!   repeatable, and *invariant under how workers are arranged into
//!   shards* when the total pool size is held constant.
//! - **Real responses** ([`backend::RealBackend`]): dispatched requests
//!   drive the actual [`GenerationService::generate_for_request`] and
//!   [`Database::query_ref`] paths, so the frontend's responses are
//!   byte-identical to direct calls (checked by the differential suite)
//!   and the skeleton / plan caches see realistic churn.
//! - **Load generation** ([`loadgen`]): open-loop (Poisson arrivals at a
//!   target rate) and closed-loop (N clients with think time) models,
//!   plus seeded fault schedules reusing the chaos-harness vocabulary:
//!   arrival bursts, worker-shard stalls, cache-invalidation storms.
//!
//! Latency histograms live in per-shard [`rocks_trace::Registry`]s and
//! are merged at drain — exactly the worker-pool aggregation path the
//! trace crate was built for. `reproduce serve` turns the result into
//! `BENCH_serve.json`; an SLO floor (≥100k simulated requests/s at
//! 8 shards, p99 under the floor) is CI-gated.
//!
//! [`GenerationService`]: rocks_kickstart::GenerationService
//! [`GenerationService::generate_for_request`]: rocks_kickstart::GenerationService::generate_for_request
//! [`Database::query_ref`]: rocks_sql::Database::query_ref

pub mod backend;
pub mod config;
pub mod frontend;
pub mod loadgen;

pub use backend::{default_report_queries, BackendResult, ModelBackend, RealBackend, ServeBackend};
pub use config::{CostModel, ServeConfig};
pub use frontend::{fnv64, run_serve, LatencySummary, Outcome, ReqLog, ServeReport};
pub use loadgen::{run_serve_sweep, Arrivals, ServeFault, ServePlan, SweepSummary, Workload};
