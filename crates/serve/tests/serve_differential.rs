//! Differential suite: the serving frontend is a scheduler, not a
//! rewriter. Every response it hands back must be byte-identical to
//! calling the backing service directly, and the timing-model backend
//! must reproduce the real backend's schedule exactly.

use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::ClusterDb;
use rocks_kickstart::profiles::default_profiles;
use rocks_kickstart::{GenerationService, KickstartGenerator};
use rocks_rpm::Arch;
use rocks_serve::{
    default_report_queries, fnv64, run_serve, Arrivals, ModelBackend, Outcome, RealBackend,
    ServeBackend, ServeConfig, ServeFault, Workload,
};
use rocks_trace::Tracer;

fn cluster(computes: usize) -> ClusterDb {
    let mut db = ClusterDb::new();
    register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
    let mut s = InsertEthers::start(&mut db, "Compute", 0).unwrap();
    for i in 0..computes {
        s.observe(&DhcpRequest { mac: format!("00:50:8b:e0:{:02x}:{:02x}", i / 256, i % 256) })
            .unwrap();
    }
    db
}

fn service() -> GenerationService {
    GenerationService::new(KickstartGenerator::new(
        default_profiles(),
        "10.1.1.1",
        "install/rocks-dist",
    ))
}

fn mixed_workload(seed: u64) -> Workload {
    Workload {
        seed,
        arrivals: Arrivals::Closed { clients: 12, think_us: 150 },
        horizon_us: 25_000,
        report_permille: 350,
        faults: vec![ServeFault::CacheStorm { at_us: 12_000 }],
    }
}

/// Every body the frontend returned equals a direct call against the
/// same (post-run) service and database — the frontend adds scheduling,
/// never content.
#[test]
fn frontend_responses_match_direct_calls_byte_for_byte() {
    let db = cluster(6);
    let svc = service();
    let cfg = ServeConfig {
        shards: 2,
        workers_per_shard: 2,
        keep_bodies: true,
        ..ServeConfig::default()
    };
    let mut backend = RealBackend::new(&svc, &db, Arch::I686).unwrap();
    let targets = backend.targets().to_vec();
    let queries = default_report_queries();

    let (report, log) = run_serve(&cfg, &mixed_workload(41), &mut backend, &Tracer::disabled());
    assert!(report.violations.is_empty(), "violations: {:?}", report.violations);
    assert!(report.install_completed > 0 && report.report_completed > 0);

    let mut checked_installs = 0u64;
    let mut checked_reports = 0u64;
    for r in log.iter().filter(|r| r.outcome == Outcome::Completed) {
        let body = r.body.as_deref().expect("keep_bodies run must keep bodies");
        assert_eq!(r.body_fnv, fnv64(body.as_bytes()), "body hash drifted for request {}", r.id);
        if r.install {
            let target = &targets[r.key % targets.len()];
            let direct = svc.generate_for_request(&db, &target.ip, Arch::I686).unwrap();
            assert_eq!(body, direct.render(), "kickstart body diverged for {}", target.name);
            checked_installs += 1;
        } else {
            let sql = &queries[r.key % queries.len()];
            let direct = db.sql_ref().query_ref(sql).unwrap();
            assert_eq!(body, direct.render_ascii(), "report body diverged for {sql}");
            checked_reports += 1;
        }
    }
    assert_eq!(checked_installs, report.install_completed);
    assert_eq!(checked_reports, report.report_completed);
}

/// The model backend mirrors the real backend's cache behaviour, so the
/// two produce the *same schedule*: every timing-derived field of the
/// report agrees (fingerprints legitimately differ — the model renders
/// no bodies).
#[test]
fn model_matches_real_backend_timing() {
    let cfg = ServeConfig { shards: 4, workers_per_shard: 2, ..ServeConfig::default() };
    for seed in [3u64, 19, 64] {
        // Fresh database per seed: the plan cache lives in the db, so a
        // shared one would carry warmth between runs the model can't see.
        let db = cluster(8);
        let wl = Workload {
            seed,
            arrivals: Arrivals::Open { rate_rps: 90_000.0, retry_shed: true },
            horizon_us: 30_000,
            report_permille: 300,
            faults: vec![ServeFault::CacheStorm { at_us: 15_000 }],
        };

        let svc = service();
        let mut real = RealBackend::new(&svc, &db, Arch::I686).unwrap();
        let mut model = ModelBackend::with_roots(real.target_roots(), real.n_queries());
        let (mut real_report, real_log) = run_serve(&cfg, &wl, &mut real, &Tracer::disabled());
        let (mut model_report, model_log) = run_serve(&cfg, &wl, &mut model, &Tracer::disabled());

        assert!(real_report.violations.is_empty(), "violations: {:?}", real_report.violations);
        // Bodies (and therefore fingerprints) are the one legitimate
        // difference; neutralize them and require exact agreement.
        real_report.fingerprint = 0;
        model_report.fingerprint = 0;
        assert_eq!(real_report, model_report, "seed {seed}: schedules diverged");

        assert_eq!(real_log.len(), model_log.len());
        for (a, b) in real_log.iter().zip(model_log.iter()) {
            assert_eq!(
                (a.id, a.install, a.key, a.arrival_us, a.dispatch_us, a.complete_us, a.hit),
                (b.id, b.install, b.key, b.arrival_us, b.dispatch_us, b.complete_us, b.hit),
                "seed {seed}: request {} timeline diverged",
                a.id
            );
        }
    }
}

/// A dist-rebuild storm mid-run forces the real skeleton cache cold:
/// misses rise relative to the same run without the storm, and the
/// post-storm responses still match direct generation.
#[test]
fn cache_storm_behaves_like_a_real_dist_rebuild() {
    let cfg = ServeConfig { shards: 2, workers_per_shard: 2, ..ServeConfig::default() };
    let calm = Workload { faults: Vec::new(), ..mixed_workload(9) };
    let stormy = mixed_workload(9);

    // Independent db per run: the plan cache is part of the database,
    // and the comparison needs both runs to start equally cold.
    let calm_db = cluster(4);
    let calm_svc = service();
    let mut calm_backend = RealBackend::new(&calm_svc, &calm_db, Arch::I686).unwrap();
    let (calm_report, _) = run_serve(&cfg, &calm, &mut calm_backend, &Tracer::disabled());

    let storm_db = cluster(4);
    let storm_svc = service();
    let mut storm_backend = RealBackend::new(&storm_svc, &storm_db, Arch::I686).unwrap();
    let (storm_report, _) = run_serve(&cfg, &stormy, &mut storm_backend, &Tracer::disabled());

    assert!(
        storm_report.backend_misses > calm_report.backend_misses,
        "storm {} vs calm {}: the rebuild must force skeleton misses",
        storm_report.backend_misses,
        calm_report.backend_misses
    );
    // The service observed the storm as a dist-epoch invalidation.
    assert!(storm_svc.stats().invalidations() > 0);
}
