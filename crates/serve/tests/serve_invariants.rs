//! The serving frontend's invariant suite: a 500-seed generated-plan
//! sweep plus property tests for the determinism guarantees.
//!
//! Invariants (checked by the engine at drain, asserted here to be
//! violation-free across the whole corpus):
//!
//! - **conservation** — every arrival is accepted or shed, and every
//!   accepted request completes by drain (nothing queued or in flight
//!   once the event heap empties);
//! - **bounded queue** — observed queue depth never exceeds the
//!   configured hard cap (admission sheds at the high-water mark);
//! - **no starvation** — at most `report_every` consecutive install
//!   dispatches ever pass a waiting report;
//! - **determinism** — identical (config, workload, backend) runs are
//!   bit-identical, and with the total worker pool held constant the
//!   1×8 / 2×4 / 8×1 shard arrangements produce identical reports
//!   (stall-free workloads; stalls address shards by number).

use proptest::prelude::*;
use rocks_serve::{
    run_serve, run_serve_sweep, Arrivals, ServeConfig, ServeFault, ServePlan, Workload,
};
use rocks_trace::Tracer;

#[test]
fn five_hundred_seed_sweep_has_zero_violations() {
    let summary = run_serve_sweep(0, 500);
    assert_eq!(summary.seeds, 500);
    assert!(
        summary.violations.is_empty(),
        "invariant violations: {:?}",
        &summary.violations[..summary.violations.len().min(10)]
    );
    assert_eq!(
        summary.total_arrivals,
        summary.total_completed + summary.total_shed,
        "sweep-level conservation"
    );
    assert!(summary.total_completed > 100_000, "sweep must exercise real volume");
}

#[test]
fn sweep_corpus_covers_the_interesting_space() {
    // The generated corpus must actually exercise every mechanism the
    // invariants protect; a sweep of trivial plans would prove nothing.
    let mut open = 0u32;
    let mut closed = 0u32;
    let mut bursts = 0u32;
    let mut stalls = 0u32;
    let mut storms = 0u32;
    let mut with_shed = 0u32;
    let mut with_retries = 0u32;
    let mut with_reports = 0u32;
    let mut with_misses = 0u32;
    for seed in 0..120 {
        let plan = ServePlan::generate(seed);
        match plan.workload.arrivals {
            Arrivals::Open { .. } => open += 1,
            Arrivals::Closed { .. } => closed += 1,
        }
        for f in &plan.workload.faults {
            match f {
                ServeFault::Burst { .. } => bursts += 1,
                ServeFault::ShardStall { .. } => stalls += 1,
                ServeFault::CacheStorm { .. } => storms += 1,
            }
        }
        let (report, _) = plan.run_model();
        if report.shed > 0 {
            with_shed += 1;
        }
        if report.retries > 0 {
            with_retries += 1;
        }
        if report.report_completed > 0 {
            with_reports += 1;
        }
        if report.backend_misses > 0 {
            with_misses += 1;
        }
    }
    for (what, n) in [
        ("open-loop plans", open),
        ("closed-loop plans", closed),
        ("bursts", bursts),
        ("shard stalls", stalls),
        ("cache storms", storms),
        ("runs that shed", with_shed),
        ("runs with retries", with_retries),
        ("runs completing reports", with_reports),
        ("runs with cache misses", with_misses),
    ] {
        assert!(n > 0, "corpus never produced {what}");
    }
}

#[test]
fn queue_peak_respects_both_watermark_and_cap() {
    for seed in 0..60 {
        let plan = ServePlan::generate(seed);
        let (report, _) = plan.run_model();
        assert!(
            report.queue_peak <= plan.cfg.high_water as u64,
            "seed {seed}: peak {} above high water {}",
            report.queue_peak,
            plan.cfg.high_water
        );
        assert!(report.queue_peak <= plan.cfg.queue_cap as u64);
    }
}

#[test]
fn request_logs_drain_completely() {
    use rocks_serve::Outcome;
    for seed in [2u64, 31, 77, 150] {
        let plan = ServePlan::generate(seed);
        let (report, log) = plan.run_model();
        assert_eq!(log.len() as u64, report.arrivals);
        assert!(log.iter().all(|r| r.outcome != Outcome::Pending), "seed {seed} left work");
        let completed = log.iter().filter(|r| r.outcome == Outcome::Completed).count() as u64;
        let shed = log.iter().filter(|r| r.outcome == Outcome::Shed).count() as u64;
        assert_eq!(completed, report.completed);
        assert_eq!(shed, report.shed);
        // Completed requests have a full, ordered timeline.
        for r in log.iter().filter(|r| r.outcome == Outcome::Completed) {
            let d = r.dispatch_us.expect("completed request must have dispatched");
            let c = r.complete_us.expect("completed request must have a completion time");
            assert!(r.arrival_us <= d && d <= c, "timeline out of order for request {}", r.id);
        }
    }
}

fn arrangements_of_eight() -> [(usize, usize); 3] {
    [(1, 8), (2, 4), (8, 1)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Re-running the same plan is bit-identical, report and log.
    #[test]
    fn reruns_are_bit_identical(seed in 0u64..1_000_000) {
        let plan = ServePlan::generate(seed);
        let (r1, l1) = plan.run_model();
        let (r2, l2) = plan.run_model();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(l1, l2);
    }

    /// With eight workers total, how they are grouped into shards is a
    /// pure relabeling: 1×8, 2×4 and 8×1 agree bit-for-bit on every
    /// shard-agnostic field (stall-free workloads).
    #[test]
    fn shard_arrangement_determinism(seed in 0u64..1_000_000) {
        let plan = ServePlan::generate(seed);
        let wl = plan.workload.stall_free();
        let mut reports = Vec::new();
        for (shards, wps) in arrangements_of_eight() {
            let cfg = ServeConfig {
                shards,
                workers_per_shard: wps,
                ..plan.cfg.clone()
            };
            let mut backend = plan.model_backend();
            let (r, _) = run_serve(&cfg, &wl, &mut backend, &Tracer::disabled());
            prop_assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
            prop_assert_eq!(
                r.per_shard_completed.iter().sum::<u64>(),
                r.completed,
                "shard attribution must partition completions"
            );
            reports.push(r.shard_agnostic());
        }
        prop_assert_eq!(&reports[0], &reports[1], "1x8 vs 2x4 diverged (seed {})", seed);
        prop_assert_eq!(&reports[0], &reports[2], "1x8 vs 8x1 diverged (seed {})", seed);
    }

    /// The starvation bound holds for arbitrary aging windows, including
    /// the aggressive ones the plan generator never picks.
    #[test]
    fn aging_bound_holds(seed in 0u64..100_000, report_every in 1u64..20) {
        let cfg = ServeConfig {
            shards: 2,
            workers_per_shard: 1,
            report_every,
            ..ServeConfig::default()
        };
        let wl = Workload {
            seed,
            arrivals: Arrivals::Open { rate_rps: 120_000.0, retry_shed: false },
            horizon_us: 25_000,
            report_permille: 150,
            faults: Vec::new(),
        };
        let plan = ServePlan::generate(seed);
        let mut backend = plan.model_backend();
        let (r, _) = run_serve(&cfg, &wl, &mut backend, &Tracer::disabled());
        prop_assert!(r.violations.is_empty(), "violations: {:?}", r.violations);
        prop_assert!(
            r.max_consecutive_installs <= report_every,
            "aging bound {} exceeded: {}",
            report_every,
            r.max_consecutive_installs
        );
    }
}
