//! The node-side eKV broadcaster.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A telnet-compatible broadcaster: every line published is written to
/// every connected client. Clients that disconnect are dropped silently
/// (the installer must never block on a dead watcher).
///
/// The channel is bidirectional: lines a watcher types come back through
/// [`EkvServer::read_input`] — the paper's "we've also inserted code that
/// allows users to interact with the installation through the same xterm
/// window" (§6.3).
pub struct EkvServer {
    addr: SocketAddr,
    clients: Arc<Mutex<Vec<TcpStream>>>,
    /// Lines published before any client connects are replayed to new
    /// connections, so `shoot-node` never misses early boot output.
    backlog: Arc<Mutex<Vec<String>>>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    input_rx: Receiver<String>,
}

impl EkvServer {
    /// Bind on an ephemeral localhost port and start accepting watchers.
    pub fn start() -> std::io::Result<EkvServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let clients: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let backlog: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let (input_tx, input_rx) = unbounded::<String>();

        let accept_clients = Arc::clone(&clients);
        let accept_backlog = Arc::clone(&backlog);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((mut stream, _)) => {
                        // Replay the backlog so late watchers see history.
                        // Hold the backlog lock until the client is
                        // registered: publish() takes the same lock first,
                        // so no line can land in the gap between replay
                        // and registration (it would otherwise be lost to
                        // this watcher).
                        let history = accept_backlog.lock();
                        let mut ok = true;
                        for line in history.iter() {
                            if writeln!(stream, "{line}").is_err() {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            let _ = stream.flush();
                            // A reader thread per watcher forwards typed
                            // input back to the installer.
                            if let Ok(read_half) = stream.try_clone() {
                                let tx = input_tx.clone();
                                std::thread::spawn(move || {
                                    let reader = BufReader::new(read_half);
                                    for line in reader.lines() {
                                        match line {
                                            Ok(text) => {
                                                if tx.send(text).is_err() {
                                                    break;
                                                }
                                            }
                                            Err(_) => break,
                                        }
                                    }
                                });
                            }
                            accept_clients.lock().push(stream);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(EkvServer {
            addr,
            clients,
            backlog,
            shutdown,
            accept_thread: Some(accept_thread),
            input_rx,
        })
    }

    /// One line of watcher input, if any arrived (non-blocking) — the
    /// installer polls this between screens.
    pub fn read_input(&self) -> Option<String> {
        self.input_rx.try_recv().ok()
    }

    /// Block up to `timeout` for one line of watcher input.
    pub fn wait_input(&self, timeout: std::time::Duration) -> Option<String> {
        self.input_rx.recv_timeout(timeout).ok()
    }

    /// The address watchers connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Publish one line of installer output to all watchers.
    pub fn publish(&self, line: &str) {
        self.backlog.lock().push(line.to_string());
        let mut clients = self.clients.lock();
        clients
            .retain_mut(|stream| writeln!(stream, "{line}").and_then(|_| stream.flush()).is_ok());
    }

    /// Number of currently-connected watchers.
    pub fn watcher_count(&self) -> usize {
        self.clients.lock().len()
    }

    /// Stop accepting and drop all watchers.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.clients.lock().clear();
    }
}

impl Drop for EkvServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// An in-process feed with identical semantics (publish/subscribe with
/// backlog replay) for tests and for wiring the simulator's node logs to
/// a monitor without sockets.
#[derive(Clone, Default)]
pub struct LocalFeed {
    inner: Arc<Mutex<LocalFeedInner>>,
}

#[derive(Default)]
struct LocalFeedInner {
    backlog: Vec<String>,
    subscribers: Vec<Sender<String>>,
}

impl LocalFeed {
    /// New empty feed.
    pub fn new() -> LocalFeed {
        LocalFeed::default()
    }

    /// Publish a line to all subscribers (and the backlog).
    pub fn publish(&self, line: &str) {
        let mut inner = self.inner.lock();
        inner.backlog.push(line.to_string());
        inner.subscribers.retain(|tx| tx.send(line.to_string()).is_ok());
    }

    /// Subscribe; the returned receiver first sees the whole backlog.
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = unbounded();
        let mut inner = self.inner.lock();
        for line in &inner.backlog {
            let _ = tx.send(line.clone());
        }
        inner.subscribers.push(tx);
        rx
    }

    /// Lines published so far.
    pub fn backlog(&self) -> Vec<String> {
        self.inner.lock().backlog.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::time::Duration;

    fn connect(addr: SocketAddr) -> BufReader<TcpStream> {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        BufReader::new(stream)
    }

    fn wait_for_watchers(server: &EkvServer, n: usize) {
        for _ in 0..500 {
            if server.watcher_count() >= n {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("watcher never registered");
    }

    #[test]
    fn tcp_watcher_receives_published_lines() {
        let server = EkvServer::start().unwrap();
        let mut reader = connect(server.addr());
        wait_for_watchers(&server, 1);
        server.publish("Installing dev-3.0.6-5 (340k) [38/162]");
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "Installing dev-3.0.6-5 (340k) [38/162]");
    }

    #[test]
    fn late_watcher_gets_backlog_replay() {
        let server = EkvServer::start().unwrap();
        server.publish("line one");
        server.publish("line two");
        let mut reader = connect(server.addr());
        let mut a = String::new();
        let mut b = String::new();
        reader.read_line(&mut a).unwrap();
        reader.read_line(&mut b).unwrap();
        assert_eq!(a.trim_end(), "line one");
        assert_eq!(b.trim_end(), "line two");
    }

    #[test]
    fn multiple_watchers_all_receive() {
        let server = EkvServer::start().unwrap();
        let mut r1 = connect(server.addr());
        let mut r2 = connect(server.addr());
        wait_for_watchers(&server, 2);
        server.publish("broadcast");
        for reader in [&mut r1, &mut r2] {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "broadcast");
        }
    }

    #[test]
    fn disconnected_watcher_is_dropped() {
        let server = EkvServer::start().unwrap();
        {
            let _reader = connect(server.addr());
            wait_for_watchers(&server, 1);
        } // reader dropped: TCP closed
          // Publishing twice flushes out the dead client.
        server.publish("a");
        server.publish("b");
        server.publish("c");
        assert_eq!(server.watcher_count(), 0);
    }

    #[test]
    fn local_feed_replays_and_streams() {
        let feed = LocalFeed::new();
        feed.publish("early");
        let rx = feed.subscribe();
        feed.publish("late");
        assert_eq!(rx.recv().unwrap(), "early");
        assert_eq!(rx.recv().unwrap(), "late");
        assert_eq!(feed.backlog().len(), 2);
    }

    #[test]
    fn watcher_input_reaches_installer() {
        // §6.3: interaction flows back through the same connection.
        let server = EkvServer::start().unwrap();
        let stream = TcpStream::connect(server.addr()).unwrap();
        wait_for_watchers(&server, 1);
        let mut write_half = stream.try_clone().unwrap();
        writeln!(write_half, "ok").unwrap();
        writeln!(write_half, "format-disk yes").unwrap();
        write_half.flush().unwrap();
        assert_eq!(server.wait_input(Duration::from_secs(5)).as_deref(), Some("ok"));
        assert_eq!(server.wait_input(Duration::from_secs(5)).as_deref(), Some("format-disk yes"));
        assert_eq!(server.read_input(), None);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = EkvServer::start().unwrap();
        server.publish("x");
        server.shutdown();
        server.shutdown();
    }
}
