//! Rendering the Figure 7 installation screen.
//!
//! Figure 7 shows Red Hat's "Package Installation" panel — current
//! package name, size, summary, and a Total/Completed/Remaining table of
//! packages, bytes, and time — redirected over Ethernet into the
//! shoot-node xterm. [`InstallScreen`] reconstructs that panel from
//! progress events so `reproduce fig7` can print the same screen.

/// Progress snapshot driving the panel.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PanelState {
    /// Current package name-version-release, e.g. `dev-3.0.6-5`.
    pub package: String,
    /// Current package size in bytes.
    pub size_bytes: u64,
    /// One-line package summary.
    pub summary: String,
    /// Total packages in the install.
    pub total_packages: usize,
    /// Packages already installed.
    pub completed_packages: usize,
    /// Total bytes in the install.
    pub total_bytes: u64,
    /// Bytes already installed.
    pub completed_bytes: u64,
    /// Seconds elapsed so far.
    pub elapsed_seconds: f64,
}

/// A renderer accumulating per-package progress events.
#[derive(Debug, Clone, Default)]
pub struct InstallScreen {
    state: PanelState,
}

impl InstallScreen {
    /// Start a screen for an install of `total_packages` / `total_bytes`.
    pub fn new(total_packages: usize, total_bytes: u64) -> InstallScreen {
        InstallScreen { state: PanelState { total_packages, total_bytes, ..Default::default() } }
    }

    /// Record that `package` (with `size_bytes`, described by `summary`)
    /// is now installing at `elapsed_seconds`.
    pub fn begin_package(
        &mut self,
        package: &str,
        size_bytes: u64,
        summary: &str,
        elapsed_seconds: f64,
    ) {
        self.state.package = package.to_string();
        self.state.size_bytes = size_bytes;
        self.state.summary = summary.to_string();
        self.state.elapsed_seconds = elapsed_seconds;
    }

    /// Record that the current package finished.
    pub fn finish_package(&mut self, elapsed_seconds: f64) {
        self.state.completed_packages += 1;
        self.state.completed_bytes += self.state.size_bytes;
        self.state.elapsed_seconds = elapsed_seconds;
    }

    /// Current state.
    pub fn state(&self) -> &PanelState {
        &self.state
    }

    /// Render the Figure 7 panel as fixed-width text.
    pub fn render(&self) -> String {
        let s = &self.state;
        let remaining_packages = s.total_packages.saturating_sub(s.completed_packages);
        let remaining_bytes = s.total_bytes.saturating_sub(s.completed_bytes);
        let fmt_mb = |b: u64| format!("{}M", b / (1024 * 1024));
        let fmt_time = |secs: f64| {
            let secs = secs.max(0.0) as u64;
            format!("{}:{:02}.{:02}", secs / 3600, (secs / 60) % 60, secs % 60)
        };
        // Estimate remaining time from observed byte rate.
        let rate = if s.elapsed_seconds > 0.0 {
            s.completed_bytes as f64 / s.elapsed_seconds
        } else {
            0.0
        };
        let remaining_time = if rate > 0.0 { remaining_bytes as f64 / rate } else { 0.0 };

        // Compose rows, then pad every row to one width so the telnet
        // panel renders as a clean box.
        const INNER: usize = 58;
        let rows = vec![
            format!(" Name   : {}", truncate(&s.package, INNER - 11)),
            format!(" Size   : {}k", s.size_bytes / 1024),
            format!(" Summary: {}", truncate(&s.summary, INNER - 11)),
            String::new(),
            "             Packages      Bytes       Time".to_string(),
            format!(
                " Total    : {:>8} {:>10} {:>10}",
                s.total_packages,
                fmt_mb(s.total_bytes),
                fmt_time(s.elapsed_seconds + remaining_time),
            ),
            format!(
                " Completed: {:>8} {:>10} {:>10}",
                s.completed_packages,
                fmt_mb(s.completed_bytes),
                fmt_time(s.elapsed_seconds),
            ),
            format!(
                " Remaining: {:>8} {:>10} {:>10}",
                remaining_packages,
                fmt_mb(remaining_bytes),
                fmt_time(remaining_time),
            ),
        ];
        let title = " Package Installation ";
        let dash_total = INNER.saturating_sub(title.len());
        let mut out = format!(
            "+{}{}{}+\n",
            "-".repeat(dash_total / 2),
            title,
            "-".repeat(dash_total - dash_total / 2)
        );
        for row in rows {
            out.push_str(&format!("|{:<INNER$}|\n", truncate(&row, INNER)));
        }
        out.push_str(&format!("+{}+\n", "-".repeat(INNER)));
        out
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}...", &s[..n.saturating_sub(3)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_figure7_fields() {
        let mut screen = InstallScreen::new(162, 386 * 1024 * 1024);
        for _ in 0..37 {
            screen.begin_package("x", 2 * 1024 * 1024, "filler", 0.0);
            screen.finish_package(80.0);
        }
        screen.begin_package(
            "dev-3.0.6-5",
            340 * 1024,
            "The most commonly-used entries in the /dev directory.",
            83.0,
        );
        let text = screen.render();
        assert!(text.contains("Package Installation"));
        assert!(text.contains("dev-3.0.6-5"));
        assert!(text.contains("340k"));
        assert!(text.contains("Total    :      162"));
        assert!(text.contains("Completed:       37"));
        assert!(text.contains("Remaining:      125"));
        // All lines are the same width (a clean telnet panel).
        let widths: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{widths:?}");
    }

    #[test]
    fn byte_accounting_in_panel() {
        let mut screen = InstallScreen::new(2, 10 * 1024 * 1024);
        screen.begin_package("a-1-1", 4 * 1024 * 1024, "a", 0.0);
        screen.finish_package(4.0);
        let s = screen.state();
        assert_eq!(s.completed_bytes, 4 * 1024 * 1024);
        assert_eq!(s.completed_packages, 1);
        let text = screen.render();
        assert!(text.contains("Remaining:        1"));
    }

    #[test]
    fn long_summary_is_truncated() {
        let mut screen = InstallScreen::new(1, 1024);
        screen.begin_package("p", 1024, &"long ".repeat(30), 0.0);
        let text = screen.render();
        assert!(text.contains("..."));
        let widths: Vec<usize> = text.lines().map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]));
    }
}
