//! The watcher side: what `shoot-node`'s xterm runs.

use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Connect to a node's eKV port and invoke `on_line` for every line until
/// `until` returns true, the peer closes, or `timeout` elapses with no
/// traffic. Returns the number of lines observed.
pub fn watch_lines(
    addr: SocketAddr,
    timeout: Duration,
    mut on_line: impl FnMut(&str),
    mut until: impl FnMut(&str) -> bool,
) -> std::io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(timeout))?;
    let mut reader = BufReader::new(stream);
    let mut count = 0usize;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // peer closed (node rebooted into the OS)
            Ok(_) => {
                let text = line.trim_end();
                count += 1;
                on_line(text);
                if until(text) {
                    break;
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::EkvServer;

    #[test]
    fn watch_until_completion_marker() {
        let server = EkvServer::start().unwrap();
        server.publish("formatting /");
        server.publish("installing glibc [1/3]");
        server.publish("install complete");
        server.publish("after-marker noise");

        let mut seen = Vec::new();
        let count = watch_lines(
            server.addr(),
            Duration::from_secs(5),
            |line| seen.push(line.to_string()),
            |line| line.contains("install complete"),
        )
        .unwrap();
        assert_eq!(count, 3);
        assert_eq!(seen.last().unwrap(), "install complete");
    }

    #[test]
    fn timeout_returns_cleanly_when_quiet() {
        let server = EkvServer::start().unwrap();
        server.publish("only line");
        let count =
            watch_lines(server.addr(), Duration::from_millis(100), |_| {}, |_| false).unwrap();
        assert_eq!(count, 1);
    }
}
