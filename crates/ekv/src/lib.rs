#![warn(missing_docs)]

//! eKV — Ethernet Keyboard and Video (paper §6.3).
//!
//! "This is accomplished by slightly modifying Red Hat's Kickstart
//! installation program, anaconda, to capture standard output and present
//! it on a telnet-compatible port." `shoot-node` then "pops open an xterm
//! window which displays the status of the Red Hat Kickstart
//! installation" (Figure 7).
//!
//! This crate implements the wire path for real:
//!
//! * [`server::EkvServer`] — the installing node's side: a TCP listener
//!   on a telnet-compatible port that broadcasts captured installer
//!   output to every connected watcher,
//! * [`client`] — the shoot-node side: connect and stream lines,
//! * [`screen`] — renders the Figure 7 status panel from install
//!   progress,
//! * an in-process [`server::LocalFeed`] transport for deterministic
//!   tests and simulator integration.

pub mod client;
pub mod screen;
pub mod server;

pub use client::watch_lines;
pub use screen::{InstallScreen, PanelState};
pub use server::{EkvServer, LocalFeed};
