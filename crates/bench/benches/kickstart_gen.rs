//! §6.1: on-the-fly Kickstart generation — the CGI path every installing
//! node hits. The paper's flow (SQL lookups + graph traversal + render)
//! must be fast enough to feed 32 simultaneous installers; the caching
//! generation service must beat it by a wide margin on mass reinstalls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::ClusterDb;
use rocks_kickstart::{profiles, GenerationService, KickstartGenerator};
use rocks_rpm::Arch;

fn generator() -> KickstartGenerator {
    KickstartGenerator::new(profiles::default_profiles(), "10.1.1.1", "install/rocks-dist")
}

fn cluster_db(computes: usize) -> ClusterDb {
    let mut db = ClusterDb::new();
    register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
    let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
    for i in 0..computes {
        session
            .observe(&DhcpRequest { mac: format!("00:50:8b:e0:{:02x}:{:02x}", i / 256, i % 256) })
            .unwrap();
    }
    db
}

fn bench_kickstart(c: &mut Criterion) {
    let generator = generator();
    let db = cluster_db(32);

    c.bench_function("parse_default_profiles", |b| b.iter(profiles::default_profiles));

    c.bench_function("generate_compute_appliance", |b| {
        b.iter(|| generator.generate_for_appliance("compute", Arch::I686).unwrap())
    });

    c.bench_function("cgi_request_flow", |b| {
        b.iter(|| generator.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap())
    });

    c.bench_function("cgi_request_flow_cached", |b| {
        let service = GenerationService::new(self::generator());
        b.iter(|| service.generate_for_request(&db, "10.255.255.254", Arch::I686).unwrap())
    });

    c.bench_function("render_kickstart_text", |b| {
        let ks = generator.generate_for_appliance("compute", Arch::I686).unwrap();
        b.iter(|| ks.render())
    });
}

/// The acceptance experiment: a 128-node single-appliance cluster,
/// generated cold (the paper's per-request CGI path) versus through the
/// caching service, sequentially and on a worker pool.
fn bench_mass_generation(c: &mut Criterion) {
    let db = cluster_db(128);
    let generator = generator();
    let targets: Vec<String> =
        db.compute_nodes().unwrap().iter().map(|n| n.ip.to_string()).collect();
    assert_eq!(targets.len(), 128);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "mass_generation_128: host has {cores} core(s) — parallel variants only \
         outrun cached_sequential when cores > 1 (thread spawn is pure overhead \
         on a single-core host)"
    );

    let mut group = c.benchmark_group("mass_generation_128");
    group.sample_size(10);

    group.bench_function("cold_sequential", |b| {
        b.iter(|| {
            let profiles: Vec<_> = targets
                .iter()
                .map(|ip| generator.generate_for_request(&db, ip, Arch::I686).unwrap())
                .collect();
            profiles.len()
        })
    });

    group.bench_function("cached_sequential", |b| {
        let service = GenerationService::new(self::generator());
        b.iter(|| service.generate_all(&db, Arch::I686, 1).unwrap().len())
    });

    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("cached_parallel", threads),
            &threads,
            |b, &threads| {
                let service = GenerationService::new(self::generator());
                b.iter(|| service.generate_all(&db, Arch::I686, threads).unwrap().len())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_kickstart, bench_mass_generation);
criterion_main!(benches);
