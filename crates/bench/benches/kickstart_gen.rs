//! §6.1: on-the-fly Kickstart generation — the CGI path every installing
//! node hits. The paper's flow (SQL lookups + graph traversal + render)
//! must be fast enough to feed 32 simultaneous installers.

use criterion::{criterion_group, criterion_main, Criterion};
use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::ClusterDb;
use rocks_kickstart::{profiles, KickstartGenerator};
use rocks_rpm::Arch;

fn setup() -> (KickstartGenerator, ClusterDb) {
    let generator =
        KickstartGenerator::new(profiles::default_profiles(), "10.1.1.1", "install/rocks-dist");
    let mut db = ClusterDb::new();
    register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
    let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
    for i in 0..32 {
        session.observe(&DhcpRequest { mac: format!("00:50:8b:e0:00:{i:02x}") }).unwrap();
    }
    (generator, db)
}

fn bench_kickstart(c: &mut Criterion) {
    let (generator, mut db) = setup();

    c.bench_function("parse_default_profiles", |b| {
        b.iter(profiles::default_profiles)
    });

    c.bench_function("generate_compute_appliance", |b| {
        b.iter(|| generator.generate_for_appliance("compute", Arch::I686).unwrap())
    });

    c.bench_function("cgi_request_flow", |b| {
        b.iter(|| {
            generator
                .generate_for_request(&mut db, "10.255.255.254", Arch::I686)
                .unwrap()
        })
    });

    c.bench_function("render_kickstart_text", |b| {
        let ks = generator.generate_for_appliance("compute", Arch::I686).unwrap();
        b.iter(|| ks.render())
    });
}

criterion_group!(benches, bench_kickstart);
criterion_main!(benches);
