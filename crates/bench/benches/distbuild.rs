//! Figures 5 and 6: rocks-dist build performance — the §6.2.3 claim that
//! a child distribution is "lightweight (on the order of 25MB) and can be
//! built in under a minute" (our builds are in-memory, so the interesting
//! measurements are structure and real build cost).

use criterion::{criterion_group, criterion_main, Criterion};
use rocks_dist::hierarchy::{build_chain, Level};
use rocks_dist::{builder, BuildConfig, Distribution};
use rocks_rpm::synth;

fn bench_dist_build(c: &mut Criterion) {
    let stock = Distribution::stock("redhat-7.2", synth::redhat72(1));
    let community = synth::community();
    let local = synth::rocks_local();

    // Report the Figure 5/§6.2.3 numbers once.
    let (_, report) = builder::build(BuildConfig {
        name: "rocks-2.2.1".into(),
        parent: Some(&stock),
        contrib: vec![&community],
        local: vec![&local],
        ..Default::default()
    })
    .unwrap();
    println!(
        "distbuild: {} links, {} files, {:.1} MB materialized (paper: ~25 MB, mostly links)",
        report.links,
        report.files,
        report.materialized_bytes as f64 / (1024.0 * 1024.0)
    );

    c.bench_function("rocks_dist_build", |b| {
        b.iter(|| {
            builder::build(BuildConfig {
                name: "rocks-2.2.1".into(),
                parent: Some(&stock),
                contrib: vec![&community],
                local: vec![&local],
                ..Default::default()
            })
        })
    });

    c.bench_function("hierarchy_4_levels", |b| {
        b.iter(|| {
            let mut campus = rocks_rpm::Repository::new("campus");
            campus.insert(rocks_rpm::Package::builder("campus-tools", "1.0-1").build());
            build_chain(
                &stock,
                &[
                    Level {
                        name: "rocks".into(),
                        contrib: vec![synth::community()],
                        local: vec![synth::rocks_local()],
                        ..Default::default()
                    },
                    Level::with_contrib("campus", campus),
                ],
            )
        })
    });
}

criterion_group!(benches, bench_dist_build);
criterion_main!(benches);
