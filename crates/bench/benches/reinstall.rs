//! Table I: concurrent reinstallation. Each benchmark runs the full
//! discrete-event simulation for one concurrency level and reports the
//! virtual result through Criterion's measurement of the simulation
//! itself (the virtual minutes are printed once per level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_netsim::{ClusterSim, SimConfig};

fn bench_reinstall(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_reinstall");
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        // Print the virtual-time result once, so bench logs double as the
        // Table I reproduction.
        let mut sim = ClusterSim::new(SimConfig::paper_testbed(1), n);
        let result = sim.run_reinstall();
        println!(
            "table1: {n:>2} nodes -> {:.1} virtual minutes ({} completed)",
            result.total_minutes(),
            result.completed()
        );

        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = ClusterSim::new(SimConfig::paper_testbed(1).bundled(24), n);
                let result = sim.run_reinstall();
                assert_eq!(result.completed(), n);
                result.total_minutes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reinstall);
criterion_main!(benches);
