//! Table I: concurrent reinstallation. Each benchmark runs the full
//! discrete-event simulation for one concurrency level and reports the
//! virtual result through Criterion's measurement of the simulation
//! itself (the virtual minutes are printed once per level).
//!
//! Two groups, mirroring the kickstart_gen layout: the paper-scale
//! Table I sweep (1..32 nodes, default sampling) and the large-n scale
//! sweep (512..8192 nodes on the heap + class-aggregated scheduler),
//! where each iteration is expensive enough that the sample count drops
//! to Criterion's minimum.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_netsim::{ClusterSim, SimConfig};

fn bench_reinstall(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_reinstall");
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        // Print the virtual-time result once, so bench logs double as the
        // Table I reproduction.
        let mut sim = ClusterSim::new(SimConfig::paper_testbed(1), n);
        let result = sim.run_reinstall();
        println!(
            "table1: {n:>2} nodes -> {:.1} virtual minutes ({} completed)",
            result.total_minutes(),
            result.completed()
        );

        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = ClusterSim::new(SimConfig::paper_testbed(1).bundled(24), n);
                let result = sim.run_reinstall();
                assert_eq!(result.completed(), n);
                result.total_minutes()
            })
        });
    }
    group.finish();
}

fn bench_reinstall_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("reinstall_scale");
    // A single 8192-node reinstall simulates hours of virtual time;
    // shrink the sample count instead of letting Criterion run its
    // default 100 iterations per level.
    group.sample_size(10);
    for &n in &[512usize, 2048, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = ClusterSim::new(SimConfig::paper_testbed(1).bundled(12), n);
                let result = sim.run_reinstall();
                assert_eq!(result.completed(), n);
                result.total_minutes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reinstall, bench_reinstall_scale);
criterion_main!(benches);
