//! §6.3 micro-benchmark plus the Gigabit and replication projections,
//! and the end-to-end reinstall pipeline (Kickstart generation service
//! feeding the simulated HTTP install server).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_kickstart::{profiles, GenerationService, KickstartGenerator};
use rocks_netsim::cluster::{max_full_speed_concurrency, serial_download_benchmark};
use rocks_netsim::reinstall::{mass_reinstall, provision_cluster};
use rocks_netsim::SimConfig;
use rocks_rpm::Arch;

fn bench_serial_download(c: &mut Criterion) {
    let cfg = SimConfig::paper_testbed(1);
    println!(
        "micro: serial download sources {:.1} MB/s (paper: 7-8)",
        serial_download_benchmark(&cfg)
    );
    c.bench_function("serial_download_micro", |b| b.iter(|| serial_download_benchmark(&cfg)));
}

fn bench_full_speed_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_speed_concurrency");
    group.sample_size(10);
    let fast = max_full_speed_concurrency(&|s| SimConfig::paper_testbed(s).bundled(12), 0.05, 256);
    let gige = max_full_speed_concurrency(&|s| SimConfig::gige(s).bundled(12), 0.05, 256);
    println!(
        "full-speed: fast-ethernet {fast} nodes, gige {gige} nodes ({:.1}x; paper 7.0-9.5x)",
        gige as f64 / fast as f64
    );
    for (name, make) in [
        ("fast_ethernet", (|s| SimConfig::paper_testbed(s).bundled(12)) as fn(u64) -> SimConfig),
        ("gige", (|s| SimConfig::gige(s).bundled(12)) as fn(u64) -> SimConfig),
        ("replicated_x2", (|s| SimConfig::replicated(2, s).bundled(12)) as fn(u64) -> SimConfig),
        ("replicated_x4", (|s| SimConfig::replicated(4, s).bundled(12)) as fn(u64) -> SimConfig),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &make, |b, make| {
            b.iter(|| max_full_speed_concurrency(&|s| make(s), 0.05, 256))
        });
    }
    group.finish();
}

/// Table I, end to end: the frontend generates every node's profile
/// through the shared service (worker pool), then the simulated HTTP
/// server feeds the reinstall storm. The generation side rides the
/// skeleton cache, so the sweep stresses the localization + simulation
/// path rather than repeated graph traversals.
fn bench_mass_reinstall_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("mass_reinstall_pipeline");
    group.sample_size(10);
    for nodes in [32usize, 128] {
        let db = provision_cluster(nodes);
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &db, |b, db| {
            let service = GenerationService::new(KickstartGenerator::new(
                profiles::default_profiles(),
                "10.1.1.1",
                "install/rocks-dist",
            ));
            b.iter(|| {
                let report = mass_reinstall(
                    SimConfig::paper_testbed(1).bundled(12),
                    db,
                    &service,
                    Arch::I686,
                    8,
                )
                .unwrap();
                assert_eq!(report.result.completed(), nodes);
                report.result.total_seconds
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_serial_download,
    bench_full_speed_search,
    bench_mass_reinstall_pipeline
);
criterion_main!(benches);
