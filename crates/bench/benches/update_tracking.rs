//! §6.2.1: the cost of tracking vendor updates (Red Hat 6.2's year of
//! 124 updates), and the speed of folding an update stream into a
//! distribution with newest-wins resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_rpm::{synth, Repository, UpdateStream};

fn bench_update_tracking(c: &mut Criterion) {
    let base = synth::redhat72(1);
    println!("{}", rocks_bench::update_tracking());

    c.bench_function("generate_paper_update_stream", |b| {
        b.iter(|| UpdateStream::paper_stream(&base, 42))
    });

    let mut group = c.benchmark_group("apply_updates");
    for &days in &[30u32, 90, 365] {
        group.bench_with_input(BenchmarkId::from_parameter(days), &days, |b, &days| {
            let stream = UpdateStream::paper_stream(&base, 42);
            b.iter(|| {
                let mut repo = Repository::new("mirror");
                repo.merge(&base);
                stream.apply_through(&mut repo, days)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update_tracking);
criterion_main!(benches);
