//! §1/§3 ablation: reinstall versus cfengine-style verify-and-repair as
//! drift grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_core::consistency::*;

fn bench_consistency(c: &mut Criterion) {
    println!("{}", rocks_bench::ablation());
    let model = VerifyModel::default();
    let mut group = c.benchmark_group("known_good_state");
    for &n in &[1usize, 10, 100] {
        let drifts = synth_drift("node", n, 70, 25);
        group.bench_with_input(BenchmarkId::new("reinstall", n), &drifts, |b, drifts| {
            b.iter(|| bring_to_known_state(Strategy::Reinstall, drifts, &model))
        });
        group.bench_with_input(BenchmarkId::new("verify", n), &drifts, |b, drifts| {
            b.iter(|| bring_to_known_state(Strategy::VerifyRepair, drifts, &model))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_consistency);
criterion_main!(benches);
