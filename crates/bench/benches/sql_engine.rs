//! §6.4: the cluster database. Report-generation queries and the paper's
//! multi-table join run against clusters of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_bench::{planner_database, planner_point_query, PLANNER_JOIN_QUERY};
use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::{reports, ClusterDb};

fn cluster_db(n: usize) -> ClusterDb {
    let mut db = ClusterDb::new();
    register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
    let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
    for i in 0..n {
        session
            .observe(&DhcpRequest { mac: format!("00:50:8b:{:02x}:{:02x}:01", i / 256, i % 256) })
            .unwrap();
    }
    db
}

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_db");
    for &n in &[32usize, 128, 512] {
        let db = cluster_db(n);
        group.bench_with_input(BenchmarkId::new("compute_join", n), &n, |b, _| {
            b.iter(|| {
                db.query_names(
                    "select nodes.name from nodes,memberships where \
                     nodes.membership = memberships.id and memberships.name = 'Compute'",
                )
                .unwrap()
            })
        });
        let mut db2 = cluster_db(n);
        group.bench_with_input(BenchmarkId::new("generate_reports", n), &n, |b, _| {
            b.iter(|| reports::generate_all(&mut db2).unwrap())
        });
    }
    group.finish();

    let mut db = cluster_db(64);
    c.bench_function("insert_ethers_one_node", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let mut session = InsertEthers::start(&mut db, "Compute", 1).unwrap();
            session
                .observe(&DhcpRequest {
                    mac: format!(
                        "00:aa:{:02x}:{:02x}:{:02x}:02",
                        i >> 16,
                        (i >> 8) & 0xff,
                        i & 0xff
                    ),
                })
                .unwrap()
        })
    });
}

/// The PR-2 tentpole comparison: the planner's indexed point lookups and
/// hash joins against the forced full-scan path, on a 10k-node database.
/// `query_ref` is warmed first so the steady-state numbers reflect the
/// cached-plan fast path the generation service and insert-ethers hit.
fn bench_planner(c: &mut Criterion) {
    let rows = 10_000usize;
    let db = planner_database(rows);
    let point = planner_point_query(rows);
    db.query_ref(&point).unwrap();
    db.query_ref(PLANNER_JOIN_QUERY).unwrap();

    let mut group = c.benchmark_group("sql_planner");
    group.bench_with_input(BenchmarkId::new("point_scan", rows), &rows, |b, _| {
        b.iter(|| db.query_ref_scan(&point).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("point_indexed", rows), &rows, |b, _| {
        b.iter(|| db.query_ref(&point).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("join_scan", rows), &rows, |b, _| {
        b.iter(|| db.query_ref_scan(PLANNER_JOIN_QUERY).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("join_indexed", rows), &rows, |b, _| {
        b.iter(|| db.query_ref(PLANNER_JOIN_QUERY).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sql, bench_planner);
criterion_main!(benches);
