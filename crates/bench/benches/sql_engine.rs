//! §6.4: the cluster database. Report-generation queries and the paper's
//! multi-table join run against clusters of increasing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rocks_db::insert_ethers::{register_frontend, DhcpRequest, InsertEthers};
use rocks_db::{reports, ClusterDb};

fn cluster_db(n: usize) -> ClusterDb {
    let mut db = ClusterDb::new();
    register_frontend(&mut db, "00:30:c1:d8:ac:80", "frontend-0").unwrap();
    let mut session = InsertEthers::start(&mut db, "Compute", 0).unwrap();
    for i in 0..n {
        session
            .observe(&DhcpRequest { mac: format!("00:50:8b:{:02x}:{:02x}:01", i / 256, i % 256) })
            .unwrap();
    }
    db
}

fn bench_sql(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_db");
    for &n in &[32usize, 128, 512] {
        let db = cluster_db(n);
        group.bench_with_input(BenchmarkId::new("compute_join", n), &n, |b, _| {
            b.iter(|| {
                db.query_names(
                    "select nodes.name from nodes,memberships where \
                     nodes.membership = memberships.id and memberships.name = 'Compute'",
                )
                .unwrap()
            })
        });
        let mut db2 = cluster_db(n);
        group.bench_with_input(BenchmarkId::new("generate_reports", n), &n, |b, _| {
            b.iter(|| reports::generate_all(&mut db2).unwrap())
        });
    }
    group.finish();

    let mut db = cluster_db(64);
    c.bench_function("insert_ethers_one_node", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i += 1;
            let mut session = InsertEthers::start(&mut db, "Compute", 1).unwrap();
            session
                .observe(&DhcpRequest {
                    mac: format!(
                        "00:aa:{:02x}:{:02x}:{:02x}:02",
                        i >> 16,
                        (i >> 8) & 0xff,
                        i & 0xff
                    ),
                })
                .unwrap()
        })
    });
}

criterion_group!(benches, bench_sql);
criterion_main!(benches);
